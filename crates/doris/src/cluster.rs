//! The coordinator, compute nodes, the fragmented SPMD executor (Figure 3),
//! and the coordinator-driven recovery loop.
//!
//! Recovery model: every failure surfaces as a typed
//! [`sirius_core::SiriusError`]. The coordinator classifies it and walks a
//! degradation ladder:
//!
//! 1. **Retry with backoff** — transient faults
//!    ([`SiriusError::is_retryable`]) re-dispatch the whole query on a fresh
//!    collective epoch, up to [`ClusterConfig::max_retries`] times with
//!    exponentially growing simulated backoff.
//! 2. **Re-schedule / shrink world** — a dead node (heartbeat lapse or
//!    injected crash) is removed, the cluster is rebuilt over the survivors,
//!    every table is re-partitioned from coordinator-side durable storage,
//!    and the query re-dispatches.
//! 3. **CPU fallback** — below [`ClusterConfig::quorum`] the coordinator
//!    gives up on the fleet and runs the query on a single-node CPU engine
//!    over the full (unpartitioned) tables.
//!
//! Failed attempts cancel all in-flight fragments through the shared
//! [`CancelToken`] and drain every node's exchange temp-table registry, so
//! retries never leak registry entries or observe stale collectives.

use crate::heartbeat::HeartbeatMonitor;
use crate::planner::{distribute_with, DistributeOptions, PartitionScheme};
use crate::{DorisError, Result};
use parking_lot::{Mutex, RwLock};
use sirius_columnar::{Array, Table};
use sirius_core::exchange::{partition_by_hash, ExchangeService};
use sirius_core::metrics::RecoveryStats;
use sirius_core::{SiriusEngine, SiriusError};
use sirius_exec_cpu::{Catalog, CpuEngine, EngineProfile};
use sirius_hw::{
    catalog as hw, CostCategory, Device, FaultInjector, FaultPlan, FaultSite, Link, TimeBreakdown,
    TraceConfig, TraceSink,
};
use sirius_nccl::{CancelToken, NcclCluster};
use sirius_plan::{ExchangeKind, Rel};
use sirius_sql::{plan_sql, BinderCatalog, JoinOrderPolicy};
use sirius_trace::metrics::MetricsRegistry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Coordinator-side simulated cost of one re-scheduling pass: tearing down
/// the old fragment set, re-partitioning the dead node's shards, and
/// re-dispatching onto the survivors.
const RESCHEDULE_PENALTY: Duration = Duration::from_millis(20);

/// What executes fragments on each compute node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeEngineKind {
    /// Vanilla Doris: the node's CPU engine and native exchange.
    DorisCpu,
    /// Distributed ClickHouse baseline: ClickHouse engine profile and
    /// FROM-order planning on every node (§4.3's third contender).
    ClickHouseCpu,
    /// Sirius-accelerated (Figure 3b): local GPU engines + the Sirius
    /// exchange service.
    SiriusGpu,
}

/// Cluster-wide policy knobs: failure detection, retry, and degradation.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Heartbeat liveness timeout (simulated detection latency). Default
    /// 3 s — a node that cannot answer the coordinator's dispatch-time
    /// probe within this window is treated as dead.
    pub heartbeat_timeout: Duration,
    /// Maximum full-query retries for transient (retryable) faults.
    pub max_retries: u32,
    /// Initial retry backoff; doubles per retry (charged as simulated
    /// coordinator time).
    pub retry_backoff: Duration,
    /// Minimum surviving GPU/CPU compute nodes to keep executing
    /// distributed. Below this the coordinator degrades to CPU fallback
    /// (or fails, if that is disabled).
    pub quorum: usize,
    /// Whether quorum loss degrades to the single-node CPU engine instead
    /// of failing the query.
    pub allow_cpu_fallback: bool,
    /// Deterministic fault plan to inject (tests/chaos runs).
    pub fault_plan: Option<FaultPlan>,
}

impl ClusterConfig {
    /// Default policy for a `world`-node cluster: 3 s heartbeat timeout,
    /// 3 retries from 10 ms backoff, majority quorum, CPU fallback on.
    pub fn for_world(world: usize) -> Self {
        Self {
            heartbeat_timeout: Duration::from_secs(3),
            max_retries: 3,
            retry_backoff: Duration::from_millis(10),
            quorum: world.div_ceil(2).max(1),
            allow_cpu_fallback: true,
            fault_plan: None,
        }
    }

    /// Replace the fault plan (builder style).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

struct NodeState {
    /// Stable node id: the rank this node had in the original cluster.
    /// Fault sites, heartbeats, and error attribution all use this, so a
    /// world shrink never re-targets another node's faults.
    id: usize,
    catalog: Catalog,
    cpu: Option<CpuEngine>,
    gpu: Option<SiriusEngine>,
    device: Device,
    exchange: ExchangeService,
    temp_counter: usize,
    fault: FaultInjector,
    heartbeats: HeartbeatMonitor,
    cancel: CancelToken,
    /// Temp tables registered by the in-flight fragment; drained on both
    /// success and failure so aborted attempts cannot leak registry entries.
    live_temps: Vec<String>,
}

impl NodeState {
    fn engine_exec(&self, plan: &Rel) -> sirius_core::Result<Table> {
        if let Some(gpu) = &self.gpu {
            // GPU engines poll their own DeviceLaunch fault site.
            return gpu.execute(plan);
        }
        if self
            .fault
            .fire(FaultSite::DeviceLaunch { node: self.id })
            .is_some()
        {
            return Err(SiriusError::TransientDevice(format!(
                "injected launch failure on node {}",
                self.id
            )));
        }
        match &self.cpu {
            Some(cpu) => cpu
                .execute(plan, &self.catalog)
                .map_err(|e| SiriusError::Kernel(e.to_string())),
            None => Err(SiriusError::Unsupported(
                "node has neither a CPU nor a GPU engine".into(),
            )),
        }
    }

    /// Execute a distributed plan: fragments split at Exchange nodes,
    /// exchanged intermediates registered as temporary tables (§3.2.4).
    /// Any failure cancels the cluster-wide token so sibling fragments
    /// blocked in collectives abort promptly. Temp cleanup is the caller's
    /// job via [`Self::release_temps`] — it must run on every path.
    fn execute_fragmented(&mut self, plan: &Rel) -> sirius_core::Result<Table> {
        if self
            .fault
            .fire(FaultSite::FragmentStart { node: self.id })
            .is_some()
        {
            self.heartbeats.mark_down(self.id);
            self.cancel.cancel();
            return Err(SiriusError::NodeDown(self.id));
        }
        // A node executing a fragment is demonstrably alive.
        self.heartbeats.beat(self.id);
        let result = self
            .rewrite(plan)
            .and_then(|rewritten| self.engine_exec(&rewritten));
        if result.is_err() {
            self.cancel.cancel();
        }
        result
    }

    /// Deregister (and device-evict) every temp table the last fragment
    /// registered. Returns how many were reaped.
    fn release_temps(&mut self) -> u64 {
        let names = std::mem::take(&mut self.live_temps);
        let mut reaped = 0;
        for name in names {
            if self.exchange.deregister_temp(&name) {
                reaped += 1;
            }
            if let Some(gpu) = &self.gpu {
                gpu.buffer_manager().evict(&name);
            }
        }
        // Anything registered outside the live list (defensive): drain too.
        reaped += self.exchange.drain_temps().len() as u64;
        reaped
    }

    /// Replace every exchange in `plan` (innermost first, joins
    /// left-then-right — the shared rewrite's fixed order keeps collective
    /// sequence numbers aligned across nodes) with a temp-table read of the
    /// exchanged fragment result.
    fn rewrite(&mut self, plan: &Rel) -> sirius_core::Result<Rel> {
        sirius_plan::visit::try_rewrite(plan, &mut |rebuilt| match rebuilt {
            Rel::Exchange { input, kind } => self.materialize_exchange(&input, &kind),
            other => Ok(other),
        })
    }

    /// Execute the (already rewritten) fragment below an exchange, run the
    /// collective, and register the result as a temp table.
    fn materialize_exchange(
        &mut self,
        inner: &Rel,
        kind: &ExchangeKind,
    ) -> sirius_core::Result<Rel> {
        let local = self.engine_exec(inner)?;
        if self
            .fault
            .fire(FaultSite::FragmentMid { node: self.id })
            .is_some()
        {
            // Crash at the exchange boundary: the node goes silent.
            // Peers blocked on its contribution wake via the cancel
            // token instead of timing out.
            self.heartbeats.mark_down(self.id);
            self.cancel.cancel();
            return Err(SiriusError::NodeDown(self.id));
        }
        let key_cols: Vec<Array> = match kind {
            ExchangeKind::Shuffle { keys } => keys
                .iter()
                .map(|k| sirius_exec_cpu::eval::evaluate(k, &local))
                .collect::<std::result::Result<_, _>>()
                .map_err(|e| SiriusError::Kernel(e.to_string()))?,
            _ => vec![],
        };
        let out = self.exchange.exchange(kind, local, &key_cols)?;
        let name = format!("__exch_{}_{}", self.id, self.temp_counter);
        self.temp_counter += 1;
        self.exchange.register_temp(&name, out.clone());
        self.catalog.register(name.clone(), out.clone());
        if let Some(gpu) = &self.gpu {
            gpu.cache_resident(&name, &out);
        }
        self.live_temps.push(name.clone());
        Ok(Rel::Read {
            table: name,
            schema: out.schema().clone(),
            projection: None,
        })
    }
}

/// The result of one distributed query, with the Table 2 attribution.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The result table (gathered on node 0).
    pub table: Table,
    /// Coordinator time: planning, fragment dispatch, result return, plus
    /// any recovery overhead (backoff waits, re-scheduling).
    pub coordinator: Duration,
    /// Per-node simulated breakdowns covering *all* attempts of this query:
    /// device time burned by failed/retried attempts is folded into the
    /// stable node that burned it (appended at the tail if that node died).
    pub per_node: Vec<TimeBreakdown>,
    /// Failure/retry/degradation counters for this query.
    pub recovery: RecoveryStats,
}

impl QueryOutcome {
    /// Compute time: the slowest node's non-exchange operator time.
    pub fn compute(&self) -> Duration {
        self.per_node
            .iter()
            .map(|b| b.total() - b.get(CostCategory::Exchange) - b.get(CostCategory::Other))
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Exchange time: the slowest node's wire time.
    pub fn exchange(&self) -> Duration {
        self.per_node
            .iter()
            .map(|b| b.get(CostCategory::Exchange))
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Everything else: coordination plus node-side misc.
    pub fn other(&self) -> Duration {
        self.coordinator
            + self
                .per_node
                .iter()
                .map(|b| b.get(CostCategory::Other))
                .max()
                .unwrap_or(Duration::ZERO)
    }

    /// End-to-end simulated time.
    pub fn total(&self) -> Duration {
        self.compute() + self.exchange() + self.other()
    }
}

/// The live node set: rebuilt wholesale when the world shrinks.
struct NodeSet {
    nodes: Vec<Mutex<NodeState>>,
    /// Current rank → stable node id.
    assignment: Vec<usize>,
    cancel: CancelToken,
}

/// The distributed warehouse: a coordinator plus `world` compute nodes.
pub struct DorisCluster {
    state: RwLock<NodeSet>,
    /// Coordinator-side durable copies of every registered table (the
    /// shared-storage analog) — the source for re-partitioning after a
    /// node death and for the CPU-fallback catalog.
    storage: Mutex<Vec<(String, Table)>>,
    binder: BinderCatalog,
    scheme: PartitionScheme,
    heartbeats: HeartbeatMonitor,
    kind: NodeEngineKind,
    config: ClusterConfig,
    fault: FaultInjector,
    epoch: AtomicU64,
    /// Coordinator-side lifecycle trace (retry/reschedule/fallback instants).
    trace: TraceSink,
    /// Prometheus-style coordinator counters.
    metrics: MetricsRegistry,
    /// Monotone simulated-time source for lifecycle instants: advanced by
    /// the same coordinator overheads (`backoff`, reschedule penalty) that
    /// feed `QueryOutcome::coordinator`.
    lifecycle_ns: AtomicU64,
}

impl DorisCluster {
    /// Build a cluster of `world` nodes (the paper's setup: 4 nodes, each a
    /// Xeon Gold host with one A100, InfiniBand 4×NDR between nodes).
    pub fn new(world: usize, kind: NodeEngineKind) -> Self {
        Self::with_scheme(world, kind, PartitionScheme::tpch_default())
    }

    /// Cluster with an explicit partition scheme and default policy.
    pub fn with_scheme(world: usize, kind: NodeEngineKind, scheme: PartitionScheme) -> Self {
        Self::with_config(world, kind, scheme, ClusterConfig::for_world(world))
    }

    /// Cluster with explicit partition scheme and recovery policy.
    pub fn with_config(
        world: usize,
        kind: NodeEngineKind,
        scheme: PartitionScheme,
        config: ClusterConfig,
    ) -> Self {
        let heartbeats = HeartbeatMonitor::new(world, config.heartbeat_timeout);
        let fault = match &config.fault_plan {
            Some(plan) => FaultInjector::new(plan.clone()),
            None => FaultInjector::disabled(),
        };
        let assignment: Vec<usize> = (0..world).collect();
        let state = build_node_set(kind, &assignment, &heartbeats, &fault);
        Self {
            state: RwLock::new(state),
            storage: Mutex::new(Vec::new()),
            binder: BinderCatalog::new(),
            scheme,
            heartbeats,
            kind,
            config,
            fault,
            epoch: AtomicU64::new(0),
            trace: TraceSink::off(),
            metrics: coordinator_metrics(),
            lifecycle_ns: AtomicU64::new(0),
        }
    }

    /// Enable (or disable) coordinator lifecycle tracing. Retry, reschedule,
    /// and CPU-fallback decisions become instant events on the trace,
    /// timestamped on the simulated coordinator clock.
    pub fn with_trace(mut self, config: TraceConfig) -> Self {
        self.trace = config.sink();
        self
    }

    /// The coordinator's lifecycle trace sink.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Coordinator counters (queries, retries, reschedules, faults,
    /// fallbacks) in Prometheus registry form; render with
    /// [`MetricsRegistry::render`].
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Cumulative device breakdowns of the current node set, keyed by stable
    /// node id. Rebuilds (world shrinks) start fresh ledgers, so deltas
    /// across a shrink are not meaningful.
    pub fn node_breakdowns(&self) -> Vec<(usize, TimeBreakdown)> {
        let state = self.state.read();
        state
            .nodes
            .iter()
            .map(|n| {
                let n = n.lock();
                (n.id, n.device.breakdown())
            })
            .collect()
    }

    /// Snapshot of cumulative per-link interconnect traffic as
    /// `((src, dst), bytes, messages)` triples, keyed by stable node id.
    /// Dictionary-encoded exchanges ship each dictionary once per link and
    /// codes thereafter, which these counters make visible.
    pub fn link_traffic(&self) -> Vec<((usize, usize), u64, u64)> {
        let state = self.state.read();
        state
            .nodes
            .first()
            .map(|n| n.lock().exchange.link_traffic().snapshot())
            .unwrap_or_default()
    }

    /// Roll one query's recovery counters into the coordinator registry.
    fn note_query_metrics(&self, recovery: &RecoveryStats) {
        let m = &self.metrics;
        m.counter_add("doris_queries_total", &[], 1);
        m.counter_add("doris_retries_total", &[], recovery.retries);
        m.counter_add("doris_reschedules_total", &[], recovery.reschedules);
        m.counter_add("doris_world_shrinks_total", &[], recovery.world_shrinks);
        m.counter_add("doris_faults_injected_total", &[], recovery.faults_injected);
        m.counter_add("doris_cpu_fallbacks_total", &[], recovery.cpu_fallbacks);
        m.counter_add("doris_temps_reaped_total", &[], recovery.temps_reaped);
        m.gauge_set("doris_world_size", &[], self.world() as f64);
        // Cumulative interconnect traffic, one gauge sample per live link.
        // (Counters are shared cluster-wide, so gauges — not counter_add —
        // keep repeated queries from double-counting.)
        let state = self.state.read();
        if let Some(node) = state.nodes.first() {
            for ((src, dst), bytes, msgs) in node.lock().exchange.link_traffic().snapshot() {
                let (src, dst) = (src.to_string(), dst.to_string());
                let labels: &[(&str, &str)] = &[("src", &src), ("dst", &dst)];
                m.gauge_set("doris_link_bytes", labels, bytes as f64);
                m.gauge_set("doris_link_messages", labels, msgs as f64);
            }
        }
    }

    /// Stamp a coordinator lifecycle instant, first advancing the simulated
    /// lifecycle clock by the overhead the decision costs (`advance`).
    fn lifecycle_event(&self, label: &'static str, advance: Duration) {
        if !self.trace.enabled() {
            return;
        }
        let ts = self
            .lifecycle_ns
            .fetch_add(advance.as_nanos() as u64, Ordering::SeqCst)
            + advance.as_nanos() as u64;
        self.trace.instant("lifecycle", label, ts);
    }

    /// Current cluster size (shrinks as nodes die).
    pub fn world(&self) -> usize {
        self.state.read().nodes.len()
    }

    /// Node engine kind.
    pub fn kind(&self) -> NodeEngineKind {
        self.kind
    }

    /// The recovery policy this cluster runs under.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The heartbeat monitor (tests inject failures through it). Indexed by
    /// stable node id.
    pub fn heartbeats(&self) -> &HeartbeatMonitor {
        &self.heartbeats
    }

    /// The fault injector driving this cluster's chaos plan (disabled when
    /// no plan was configured).
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.fault
    }

    /// Total exchange temp tables currently registered across all nodes.
    /// Zero after every completed query — including failed and retried
    /// attempts — or the drain-on-cancel guard has a hole.
    pub fn temp_tables_live(&self) -> usize {
        self.state
            .read()
            .nodes
            .iter()
            .map(|n| n.lock().exchange.temp_count())
            .sum()
    }

    /// Register a table, partitioning it across the nodes per the scheme.
    /// A durable coordinator-side copy is retained for recovery.
    pub fn create_table(&mut self, name: impl Into<String>, table: Table) -> Result<()> {
        let name = name.into();
        self.binder.add_table(
            name.clone(),
            table.schema().clone(),
            table.num_rows() as u64,
        );
        {
            let mut storage = self.storage.lock();
            if let Some(slot) = storage.iter_mut().find(|(n, _)| *n == name) {
                slot.1 = table.clone();
            } else {
                storage.push((name.clone(), table.clone()));
            }
        }
        let state = self.state.read();
        load_table_into(&state, &self.scheme, &name, &table)
    }

    /// Clear all node ledgers (between the cold load and hot measurements).
    pub fn reset_ledgers(&self) {
        for n in &self.state.read().nodes {
            n.lock().device.reset();
        }
    }

    /// Plan, distribute, dispatch, and execute a SQL query, recovering from
    /// injected or detected faults per the cluster's [`ClusterConfig`].
    pub fn sql(&self, sql: &str) -> Result<QueryOutcome> {
        let policy = match self.kind {
            NodeEngineKind::ClickHouseCpu => JoinOrderPolicy::FromOrder,
            _ => JoinOrderPolicy::Optimized,
        };
        let plan = plan_sql(sql, &self.binder, policy).map_err(DorisError::Sql)?;
        self.execute_plan(&plan)
    }

    /// Distribute, dispatch, and execute an already-bound logical plan,
    /// recovering from injected or detected faults per the cluster's
    /// [`ClusterConfig`]. [`Self::sql`] is this plus the SQL frontend.
    pub fn execute_plan(&self, plan: &Rel) -> Result<QueryOutcome> {
        let opts = DistributeOptions {
            broadcast_join_build_sides: self.kind == NodeEngineKind::ClickHouseCpu,
        };
        let dplan = distribute_with(plan, &self.scheme, opts)?;
        let fragments = count_exchanges(&dplan) + 1;

        let mut recovery = RecoveryStats::default();
        let fault_base = self.fault.injected_count();
        let mut retries_left = self.config.max_retries;
        let mut backoff = self.config.retry_backoff;
        let mut extra = Duration::ZERO;
        // Device time burned by failed attempts, keyed by stable node id.
        // Folded into the successful attempt's per_node so the outcome
        // accounts for *all* attempts of this query.
        let mut failed_time: Vec<(usize, TimeBreakdown)> = Vec::new();

        // Dispatch-time liveness probe: nodes that can answer refresh their
        // heartbeat; crashed nodes stay silent and fail the check below.
        self.heartbeats.probe_live();

        loop {
            // 1. Failure detection + repair (degradation ladder rungs 2–3).
            let dead: Vec<usize> = {
                let state = self.state.read();
                state
                    .assignment
                    .iter()
                    .copied()
                    .filter(|&id| !self.heartbeats.is_alive(id))
                    .collect()
            };
            if !dead.is_empty() {
                let survivors: Vec<usize> = {
                    let state = self.state.read();
                    state
                        .assignment
                        .iter()
                        .copied()
                        .filter(|id| !dead.contains(id))
                        .collect()
                };
                if survivors.len() < self.config.quorum.max(1) {
                    recovery.faults_injected = self.fault.injected_count() - fault_base;
                    if self.config.allow_cpu_fallback {
                        recovery.cpu_fallbacks = 1;
                        self.lifecycle_event("cpu-fallback", Duration::ZERO);
                        let out = self.cpu_fallback(plan, extra, recovery);
                        if let Ok(out) = &out {
                            self.note_query_metrics(&out.recovery);
                        }
                        return out;
                    }
                    return Err(DorisError::NodeDown(dead[0]));
                }
                for &d in &dead {
                    self.fault.disarm_node(d);
                }
                self.rebuild(&survivors)?;
                recovery.reschedules += 1;
                recovery.world_shrinks += 1;
                extra += RESCHEDULE_PENALTY;
                self.lifecycle_event("reschedule", RESCHEDULE_PENALTY);
            }

            // 2. Dispatch one attempt.
            match self.dispatch_once(&dplan, &mut recovery) {
                Ok((table, mut per_node)) => {
                    let base = match self.kind {
                        // The paper's §4.3: Doris' optimizer + coordinator
                        // dominate Q1/Q6; Sirius reuses that coordinator,
                        // ClickHouse's is leaner.
                        NodeEngineKind::DorisCpu | NodeEngineKind::SiriusGpu => {
                            Duration::from_millis(35)
                        }
                        NodeEngineKind::ClickHouseCpu => Duration::from_millis(15),
                    };
                    let coordinator = base
                        + Duration::from_millis(5) * fragments as u32
                        + Duration::from_millis(2) * self.world() as u32
                        + extra;
                    recovery.faults_injected = self.fault.injected_count() - fault_base;
                    // Fold failed attempts' device time into the node that
                    // currently holds that stable id, so per_node covers
                    // every attempt — not just the one that succeeded.
                    if !failed_time.is_empty() {
                        let state = self.state.read();
                        for (id, delta) in failed_time.drain(..) {
                            match state.assignment.iter().position(|&a| a == id) {
                                Some(rank) => per_node[rank] = per_node[rank].merge(&delta),
                                // The node died after burning this time;
                                // keep the ledger entry rather than drop it.
                                None => per_node.push(delta),
                            }
                        }
                    }
                    self.note_query_metrics(&recovery);
                    return Ok(QueryOutcome {
                        table,
                        coordinator,
                        per_node,
                        recovery,
                    });
                }
                // 3. Classification (degradation ladder rung 1 or loop back).
                Err((node, e, attempt_time)) => {
                    for (id, delta) in attempt_time {
                        match failed_time.iter_mut().find(|(i, _)| *i == id) {
                            Some((_, acc)) => *acc = acc.merge(&delta),
                            None => failed_time.push((id, delta)),
                        }
                    }
                    match e {
                        SiriusError::NodeDown(n) if !self.heartbeats.is_alive(n) => {
                            // Top of loop removes the dead node and re-schedules.
                            continue;
                        }
                        e if e.is_retryable() && retries_left > 0 => {
                            retries_left -= 1;
                            recovery.retries += 1;
                            extra += backoff;
                            self.lifecycle_event("retry", backoff);
                            backoff = backoff.saturating_mul(2);
                            continue;
                        }
                        SiriusError::NodeDown(n) => return Err(DorisError::NodeDown(n)),
                        e => {
                            return Err(DorisError::Node {
                                node,
                                message: e.to_string(),
                            })
                        }
                    }
                }
            }
        }
    }

    /// One SPMD dispatch over the current node set. On failure returns the
    /// root-cause error, the stable id of the node that raised it, and the
    /// device time each node burned on the doomed attempt (stable id keyed,
    /// so the caller can charge it to the query); always drains temp
    /// registries and cancels stragglers first.
    #[allow(clippy::type_complexity)]
    fn dispatch_once(
        &self,
        dplan: &Rel,
        recovery: &mut RecoveryStats,
    ) -> std::result::Result<
        (Table, Vec<TimeBreakdown>),
        (usize, SiriusError, Vec<(usize, TimeBreakdown)>),
    > {
        let state = self.state.read();
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        state.cancel.reset();
        for node in &state.nodes {
            node.lock().exchange.begin_epoch(epoch);
        }
        let before: Vec<TimeBreakdown> = state
            .nodes
            .iter()
            .map(|n| n.lock().device.breakdown())
            .collect();

        // Dispatch the SPMD plan to every node; each thread always runs the
        // temp-release guard, success or failure.
        let results: Vec<(usize, sirius_core::Result<Table>, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = state
                .nodes
                .iter()
                .map(|node| {
                    scope.spawn(move || {
                        let mut n = node.lock();
                        let res = n.execute_fragmented(dplan);
                        let reaped = n.release_temps();
                        (n.id, res, reaped)
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(rank, h)| {
                    h.join().unwrap_or_else(|_| {
                        state.cancel.cancel();
                        (
                            state.assignment.get(rank).copied().unwrap_or(rank),
                            Err(SiriusError::Kernel("node thread panicked".into())),
                            0,
                        )
                    })
                })
                .collect()
        });

        // Root-cause selection: a node death outranks transient errors,
        // which outrank cancellation fallout.
        let mut root: Option<(usize, SiriusError)> = None;
        let mut table = None;
        let mut reaped_total = 0;
        for (id, res, reaped) in results {
            reaped_total += reaped;
            match res {
                Ok(t) => {
                    if Some(id) == state.assignment.first().copied() {
                        table = Some(t);
                    }
                }
                Err(e) => {
                    if matches!(e, SiriusError::Cancelled(_)) {
                        recovery.cancelled_fragments += 1;
                    }
                    let outranks = match (&root, &e) {
                        (None, _) => true,
                        (Some((_, SiriusError::NodeDown(_))), _) => false,
                        (Some(_), SiriusError::NodeDown(_)) => true,
                        (Some((_, SiriusError::Cancelled(_))), _) => true,
                        _ => false,
                    };
                    if outranks {
                        root = Some((id, e));
                    }
                }
            }
        }
        let attempt_time = |before: &[TimeBreakdown]| -> Vec<(usize, TimeBreakdown)> {
            state
                .nodes
                .iter()
                .zip(before)
                .map(|(n, b)| {
                    let n = n.lock();
                    (n.id, n.device.breakdown().since(b))
                })
                .collect()
        };
        if let Some((id, e)) = root {
            recovery.temps_reaped += reaped_total;
            return Err((id, e, attempt_time(&before)));
        }
        // Late materialization: node engines return result strings as
        // dictionary codes; decode once here, on the result node's device,
        // *before* the per-node snapshot so the decode kernel is charged to
        // this attempt.
        let table = match table {
            Some(t) if t.has_dict_columns() => {
                let device = state.nodes[0].lock().device.clone();
                match sirius_core::materialize_result(&device, &t) {
                    Ok(decoded) => Some(decoded),
                    Err(e) => {
                        return Err((
                            state.assignment.first().copied().unwrap_or(0),
                            e,
                            attempt_time(&before),
                        ))
                    }
                }
            }
            other => other,
        };
        let per_node: Vec<TimeBreakdown> = state
            .nodes
            .iter()
            .zip(&before)
            .map(|(n, b)| n.lock().device.breakdown().since(b))
            .collect();
        match table {
            Some(t) => Ok((t, per_node)),
            None => Err((
                state.assignment.first().copied().unwrap_or(0),
                SiriusError::Exchange("result rank produced no table".into()),
                attempt_time(&before),
            )),
        }
    }

    /// Rebuild the cluster over `survivors` (stable ids), re-partitioning
    /// every stored table onto the shrunken world.
    fn rebuild(&self, survivors: &[usize]) -> Result<()> {
        let new_state = build_node_set(self.kind, survivors, &self.heartbeats, &self.fault);
        {
            let storage = self.storage.lock();
            for (name, table) in storage.iter() {
                load_table_into(&new_state, &self.scheme, name, table)?;
            }
        }
        *self.state.write() = new_state;
        Ok(())
    }

    /// Degradation ladder rung 3: run the full (undistributed) plan on a
    /// single-node CPU engine over unpartitioned tables.
    fn cpu_fallback(
        &self,
        plan: &Rel,
        extra: Duration,
        recovery: RecoveryStats,
    ) -> Result<QueryOutcome> {
        let profile = match self.kind {
            NodeEngineKind::ClickHouseCpu => EngineProfile::clickhouse(),
            _ => EngineProfile::doris(),
        };
        let engine = CpuEngine::new(hw::xeon_gold_6526y(), profile);
        let mut catalog = Catalog::new();
        for (name, table) in self.storage.lock().iter() {
            catalog.register(name.clone(), table.clone());
        }
        let table = engine
            .execute(plan, &catalog)
            .map_err(|e| DorisError::Node {
                node: 0,
                message: format!("cpu fallback failed: {e}"),
            })?;
        // Base tables may carry dictionary-encoded strings; the fallback
        // result must be decoded like any other coordinator result.
        let table = sirius_core::materialize_result(engine.device(), &table).map_err(|e| {
            DorisError::Node {
                node: 0,
                message: format!("cpu fallback failed: {e}"),
            }
        })?;
        let coordinator = Duration::from_millis(35) + extra;
        Ok(QueryOutcome {
            table,
            coordinator,
            per_node: vec![engine.device().breakdown()],
            recovery,
        })
    }
}

/// Coordinator metrics registry with help text pre-registered.
fn coordinator_metrics() -> MetricsRegistry {
    let m = MetricsRegistry::new();
    m.describe(
        "doris_queries_total",
        "Queries completed by the coordinator.",
    );
    m.describe(
        "doris_retries_total",
        "Full-query retries after transient errors.",
    );
    m.describe(
        "doris_reschedules_total",
        "Fragment re-schedulings after node deaths.",
    );
    m.describe("doris_world_shrinks_total", "Cluster world-size shrinks.");
    m.describe(
        "doris_faults_injected_total",
        "Faults the injector fired during queries.",
    );
    m.describe(
        "doris_cpu_fallbacks_total",
        "Queries degraded to the single-node CPU engine.",
    );
    m.describe(
        "doris_temps_reaped_total",
        "Exchange temps reaped by drain-on-cancel.",
    );
    m.describe("doris_world_size", "Current cluster world size.");
    m.describe(
        "doris_link_bytes",
        "Cumulative interconnect bytes per link.",
    );
    m.describe(
        "doris_link_messages",
        "Cumulative interconnect messages per link.",
    );
    m
}

/// Build the per-node state for the given stable-id assignment: a fresh
/// NCCL cluster, engines per `kind`, and fault/heartbeat/cancel wiring.
fn build_node_set(
    kind: NodeEngineKind,
    assignment: &[usize],
    heartbeats: &HeartbeatMonitor,
    fault: &FaultInjector,
) -> NodeSet {
    let world = assignment.len();
    let mut comms = NcclCluster::new(world, hw::infiniband_4xndr());
    let cancel = comms.first().map(|c| c.cancel_token()).unwrap_or_default();
    for comm in &mut comms {
        comm.set_fault_injector(fault.clone(), assignment.to_vec());
    }
    let nodes = comms
        .into_iter()
        .zip(assignment.iter().copied())
        .map(|(comm, id)| {
            let (cpu, gpu, device) = match kind {
                NodeEngineKind::DorisCpu => {
                    let engine = CpuEngine::new(hw::xeon_gold_6526y(), EngineProfile::doris());
                    let device = engine.device().clone();
                    (Some(engine), None, device)
                }
                NodeEngineKind::ClickHouseCpu => {
                    let engine = CpuEngine::new(hw::xeon_gold_6526y(), EngineProfile::clickhouse());
                    let device = engine.device().clone();
                    (Some(engine), None, device)
                }
                NodeEngineKind::SiriusGpu => {
                    // Node fragments keep result strings dictionary-encoded:
                    // codes cross the wire, and the coordinator materializes
                    // payload bytes once after gathering (late materialization).
                    let engine = SiriusEngine::with_link(
                        hw::a100_40gb(),
                        Link::new(hw::pcie4_a100_attach()),
                        2,
                    )
                    .with_encoded_results(true)
                    .with_fault(fault.clone(), id);
                    let device = engine.device().clone();
                    (None, Some(engine), device)
                }
            };
            Mutex::new(NodeState {
                id,
                catalog: Catalog::new(),
                cpu,
                gpu,
                device: device.clone(),
                exchange: ExchangeService::new(comm, device),
                temp_counter: 0,
                fault: fault.clone(),
                heartbeats: heartbeats.clone(),
                cancel: cancel.clone(),
                live_temps: Vec::new(),
            })
        })
        .collect();
    NodeSet {
        nodes,
        assignment: assignment.to_vec(),
        cancel,
    }
}

/// Partition `table` per `scheme` and register the shards on every node.
fn load_table_into(
    state: &NodeSet,
    scheme: &PartitionScheme,
    name: &str,
    table: &Table,
) -> Result<()> {
    let world = state.nodes.len();
    let parts: Vec<Table> = match scheme.partition_column(name) {
        Some(Some(col)) => {
            let key = table
                .column_by_name(col)
                .map_err(|_| {
                    DorisError::Plan(format!("partition column {col} missing from table {name}"))
                })?
                .clone();
            partition_by_hash(table, &[key], world)
        }
        Some(None) => vec![table.clone(); world],
        None => {
            // Round-robin.
            let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); world];
            for i in 0..table.num_rows() {
                buckets[i % world].push(i);
            }
            buckets
                .into_iter()
                .map(|rows| table.gather(&rows))
                .collect()
        }
    };
    for (node, part) in state.nodes.iter().zip(parts) {
        let mut n = node.lock();
        if let Some(gpu) = &n.gpu {
            gpu.load_table(name.to_string(), &part);
        }
        n.catalog.register(name.to_string(), part);
    }
    Ok(())
}

fn count_exchanges(rel: &Rel) -> usize {
    let here = usize::from(matches!(rel, Rel::Exchange { .. }));
    here + rel
        .children()
        .iter()
        .map(|c| count_exchanges(c))
        .sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirius_columnar::{DataType, Field, Schema};

    fn cluster(kind: NodeEngineKind) -> DorisCluster {
        cluster_with(kind, ClusterConfig::for_world(3))
    }

    fn cluster_with(kind: NodeEngineKind, config: ClusterConfig) -> DorisCluster {
        let mut scheme = PartitionScheme::new();
        scheme.hash("t", "k");
        scheme.replicate("dim");
        let mut c = DorisCluster::with_config(3, kind, scheme, config);
        c.create_table(
            "t",
            Table::new(
                Schema::new(vec![
                    Field::new("k", DataType::Int64),
                    Field::new("g", DataType::Int64),
                    Field::new("v", DataType::Float64),
                ]),
                vec![
                    Array::from_i64((0..60).collect::<Vec<_>>()),
                    Array::from_i64((0..60).map(|i| i % 4).collect::<Vec<_>>()),
                    Array::from_f64((0..60).map(|i| i as f64).collect::<Vec<_>>()),
                ],
            ),
        )
        .unwrap();
        c.create_table(
            "dim",
            Table::new(
                Schema::new(vec![
                    Field::new("id", DataType::Int64),
                    Field::new("name", DataType::Utf8),
                ]),
                vec![
                    Array::from_i64([0, 1, 2, 3]),
                    Array::from_strs(["a", "b", "c", "d"]),
                ],
            ),
        )
        .unwrap();
        c.reset_ledgers();
        c
    }

    #[test]
    fn global_sum_matches_single_node() {
        for kind in [NodeEngineKind::DorisCpu, NodeEngineKind::SiriusGpu] {
            let c = cluster(kind);
            let out = c.sql("select sum(v) as s, count(*) as n from t").unwrap();
            assert_eq!(
                out.table.column(0).f64_value(0),
                Some((0..60).sum::<i64>() as f64)
            );
            assert_eq!(out.table.column(1).i64_value(0), Some(60));
            assert!(out.total() > Duration::ZERO);
            assert!(!out.recovery.any(), "fault-free run has clean counters");
        }
    }

    #[test]
    fn grouped_avg_decomposition_is_exact() {
        let c = cluster(NodeEngineKind::SiriusGpu);
        let out = c
            .sql("select g, avg(v) as a, count(*) as n from t group by g order by g")
            .unwrap();
        assert_eq!(out.table.num_rows(), 4);
        // group g: values g, g+4, ..., g+56 → avg = g + 28.
        for row in 0..4 {
            let g = out.table.column(0).i64_value(row).unwrap();
            let a = out.table.column(1).f64_value(row).unwrap();
            assert!((a - (g as f64 + 28.0)).abs() < 1e-9, "g={g} avg={a}");
            assert_eq!(out.table.column(2).i64_value(row), Some(15));
        }
    }

    #[test]
    fn distributed_join_with_replicated_dim() {
        let c = cluster(NodeEngineKind::DorisCpu);
        let out = c
            .sql("select name, count(*) as n from t, dim where g = id group by name order by name")
            .unwrap();
        assert_eq!(out.table.num_rows(), 4);
        assert_eq!(out.table.column(1).i64_value(0), Some(15));
    }

    #[test]
    fn shuffle_join_on_nonpartition_key() {
        // Self-join on g (not the partition key) forces shuffles.
        let c = cluster(NodeEngineKind::SiriusGpu);
        let out = c
            .sql("select count(*) as n from t a, t b where a.g = b.g")
            .unwrap();
        // 4 groups × 15 × 15.
        assert_eq!(out.table.column(0).i64_value(0), Some(4 * 15 * 15));
        assert!(
            out.exchange() > Duration::ZERO,
            "shuffles must hit the wire"
        );
    }

    #[test]
    fn dead_node_recovers_by_rescheduling() {
        let c = cluster(NodeEngineKind::DorisCpu);
        c.heartbeats().mark_down(2);
        let out = c.sql("select sum(v) as s, count(*) as n from t").unwrap();
        assert_eq!(
            out.table.column(0).f64_value(0),
            Some((0..60).sum::<i64>() as f64)
        );
        assert_eq!(out.recovery.reschedules, 1);
        assert_eq!(out.recovery.world_shrinks, 1);
        assert_eq!(c.world(), 2, "world shrank to the survivors");
        assert_eq!(c.temp_tables_live(), 0);
    }

    #[test]
    fn quorum_loss_degrades_to_cpu_fallback() {
        let c = cluster(NodeEngineKind::SiriusGpu);
        c.heartbeats().mark_down(1);
        c.heartbeats().mark_down(2);
        let out = c.sql("select sum(v) as s from t").unwrap();
        assert_eq!(
            out.table.column(0).f64_value(0),
            Some((0..60).sum::<i64>() as f64)
        );
        assert_eq!(out.recovery.cpu_fallbacks, 1);
        assert_eq!(c.temp_tables_live(), 0);
    }

    #[test]
    fn quorum_loss_without_fallback_is_clean_node_down() {
        let mut config = ClusterConfig::for_world(3);
        config.allow_cpu_fallback = false;
        let c = cluster_with(NodeEngineKind::DorisCpu, config);
        c.heartbeats().mark_down(1);
        c.heartbeats().mark_down(2);
        match c.sql("select sum(v) as s from t") {
            Err(DorisError::NodeDown(n)) => assert!(n == 1 || n == 2),
            other => panic!("expected NodeDown, got {other:?}"),
        }
    }

    #[test]
    fn transient_device_fault_is_retried() {
        let config = ClusterConfig::for_world(3)
            .with_fault_plan(FaultPlan::new(1).transient_device(1, 0, 2));
        let c = cluster_with(NodeEngineKind::SiriusGpu, config);
        let out = c.sql("select g, sum(v) as s from t group by g").unwrap();
        assert_eq!(out.table.num_rows(), 4);
        assert_eq!(out.recovery.retries, 2);
        assert!(out.recovery.faults_injected >= 2);
        assert_eq!(c.temp_tables_live(), 0);
        assert_eq!(c.world(), 3, "transient faults do not shrink the world");
    }

    #[test]
    fn mid_fragment_crash_recovers_and_reaps_temps() {
        let config = ClusterConfig::for_world(3).with_fault_plan(FaultPlan::new(2).crash_mid(2, 0));
        let c = cluster_with(NodeEngineKind::SiriusGpu, config);
        // Shuffle-heavy query so the crash lands mid-exchange with temps
        // registered on sibling nodes.
        let out = c
            .sql("select count(*) as n from t a, t b where a.g = b.g")
            .unwrap();
        assert_eq!(out.table.column(0).i64_value(0), Some(4 * 15 * 15));
        assert!(out.recovery.reschedules >= 1);
        assert_eq!(c.world(), 2);
        assert_eq!(c.temp_tables_live(), 0, "cancelled fragments leak no temps");
    }

    #[test]
    fn default_heartbeat_timeout_is_sane_and_overridable() {
        let c = cluster(NodeEngineKind::DorisCpu);
        assert_eq!(c.heartbeats().timeout(), Duration::from_secs(3));
        let mut config = ClusterConfig::for_world(3);
        config.heartbeat_timeout = Duration::from_millis(250);
        let c = cluster_with(NodeEngineKind::DorisCpu, config);
        assert_eq!(c.heartbeats().timeout(), Duration::from_millis(250));
    }

    #[test]
    fn breakdown_attribution_sums() {
        let c = cluster(NodeEngineKind::SiriusGpu);
        let out = c.sql("select g, sum(v) as s from t group by g").unwrap();
        assert_eq!(out.total(), out.compute() + out.exchange() + out.other());
        assert!(out.other() >= out.coordinator);
    }

    #[test]
    fn retried_attempts_charge_per_node_time() {
        // Every nanosecond the fleet burns — including the two doomed
        // attempts — must land in per_node: ledger deltas around the query
        // equal the reported breakdowns exactly.
        let config = ClusterConfig::for_world(3)
            .with_fault_plan(FaultPlan::new(1).transient_device(1, 0, 2));
        let c = cluster_with(NodeEngineKind::SiriusGpu, config).with_trace(TraceConfig::On);
        let before = c.node_breakdowns();
        let out = c.sql("select g, sum(v) as s from t group by g").unwrap();
        assert_eq!(out.recovery.retries, 2);
        assert_eq!(out.recovery.world_shrinks, 0);
        let after = c.node_breakdowns();
        assert_eq!(before.len(), after.len());
        assert_eq!(after.len(), out.per_node.len());
        for (rank, ((id_b, b), (id_a, a))) in before.iter().zip(after.iter()).enumerate() {
            assert_eq!(id_b, id_a);
            assert_eq!(
                a.since(b),
                out.per_node[rank],
                "node {id_a}: per_node must cover failed attempts too"
            );
        }

        // The coordinator stamped one lifecycle instant per retry, with a
        // strictly advancing simulated timestamp.
        let retries: Vec<_> = c
            .trace()
            .events()
            .into_iter()
            .filter(|e| e.cat == "lifecycle" && e.label == "retry")
            .collect();
        assert_eq!(retries.len(), 2);
        assert!(retries[0].ts < retries[1].ts, "backoff advances the clock");

        // And the registry saw the same counters.
        assert_eq!(c.metrics().counter_value("doris_queries_total", &[]), 1);
        assert_eq!(c.metrics().counter_value("doris_retries_total", &[]), 2);
        let text = c.metrics().render();
        assert!(text.contains("# TYPE doris_retries_total counter"));
        assert!(text.contains("doris_retries_total 2"));
    }

    #[test]
    fn reschedule_emits_lifecycle_instant() {
        let config = ClusterConfig::for_world(3).with_fault_plan(FaultPlan::new(2).crash_mid(2, 0));
        let c = cluster_with(NodeEngineKind::SiriusGpu, config).with_trace(TraceConfig::On);
        let out = c
            .sql("select count(*) as n from t a, t b where a.g = b.g")
            .unwrap();
        assert!(out.recovery.reschedules >= 1);
        let events = c.trace().events();
        let reschedules = events
            .iter()
            .filter(|e| e.cat == "lifecycle" && e.label == "reschedule")
            .count();
        assert_eq!(reschedules as u64, out.recovery.reschedules);
        assert_eq!(
            c.metrics().counter_value("doris_reschedules_total", &[]),
            out.recovery.reschedules
        );
    }
}
