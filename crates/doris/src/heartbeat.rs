//! Node liveness tracking (§3.2.1: the coordinator identifies active nodes
//! via heartbeat).

use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// Tracks the last heartbeat from each compute node.
pub struct HeartbeatMonitor {
    last_seen: Mutex<Vec<Option<Instant>>>,
    timeout: Duration,
}

impl HeartbeatMonitor {
    /// Monitor for `nodes` compute nodes with the given liveness timeout.
    pub fn new(nodes: usize, timeout: Duration) -> Self {
        Self {
            last_seen: Mutex::new(vec![Some(Instant::now()); nodes]),
            timeout,
        }
    }

    /// Record a heartbeat from `node`.
    pub fn beat(&self, node: usize) {
        if let Some(slot) = self.last_seen.lock().get_mut(node) {
            *slot = Some(Instant::now());
        }
    }

    /// Mark a node as permanently down (simulating failure in tests).
    pub fn mark_down(&self, node: usize) {
        if let Some(slot) = self.last_seen.lock().get_mut(node) {
            *slot = None;
        }
    }

    /// True if `node` heartbeated within the timeout.
    pub fn is_alive(&self, node: usize) -> bool {
        self.last_seen
            .lock()
            .get(node)
            .and_then(|s| *s)
            .map(|t| t.elapsed() <= self.timeout)
            .unwrap_or(false)
    }

    /// First dead node, if any.
    pub fn first_dead(&self) -> Option<usize> {
        let n = self.last_seen.lock().len();
        (0..n).find(|&i| !self.is_alive(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_alive_initially() {
        let m = HeartbeatMonitor::new(3, Duration::from_secs(10));
        assert!(m.is_alive(0));
        assert_eq!(m.first_dead(), None);
    }

    #[test]
    fn marked_down_node_detected() {
        let m = HeartbeatMonitor::new(3, Duration::from_secs(10));
        m.mark_down(1);
        assert!(!m.is_alive(1));
        assert_eq!(m.first_dead(), Some(1));
        m.beat(1);
        assert!(m.is_alive(1));
    }

    #[test]
    fn out_of_range_is_dead() {
        let m = HeartbeatMonitor::new(2, Duration::from_secs(10));
        assert!(!m.is_alive(9));
    }
}
