//! Node liveness tracking (§3.2.1: the coordinator identifies active nodes
//! via heartbeat).

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The monitor's staleness clock. Production uses wall time; tests inject a
/// manual clock so timeout assertions can't flake on a loaded runner.
#[derive(Clone)]
enum Clock {
    /// Wall time, measured from the monitor's creation.
    Wall(Instant),
    /// Manually advanced time (see [`ManualClock`]).
    Manual(Arc<Mutex<Duration>>),
}

impl Clock {
    fn now(&self) -> Duration {
        match self {
            Clock::Wall(origin) => origin.elapsed(),
            Clock::Manual(t) => *t.lock(),
        }
    }
}

/// Handle to a manually advanced heartbeat clock (tests only advance it;
/// nothing else moves it).
#[derive(Clone)]
pub struct ManualClock(Arc<Mutex<Duration>>);

impl ManualClock {
    /// Advance the clock by `d`.
    pub fn advance(&self, d: Duration) {
        *self.0.lock() += d;
    }
}

/// Tracks the last heartbeat from each compute node. Cloning shares the
/// underlying state: the coordinator and every node thread hold handles to
/// the same monitor, so a node that crashes mid-fragment can mark itself
/// down and the coordinator's recovery loop sees it immediately.
///
/// Node slots are indexed by *stable* node id (the rank a node had in the
/// original, full-size cluster), so liveness survives world shrinks.
///
/// [`mark_down`](Self::mark_down) is permanent: a downed node ignores
/// [`beat`](Self::beat) and [`probe_live`](Self::probe_live), and only an
/// explicit [`revive`](Self::revive) (operator intervention) brings it back.
#[derive(Clone)]
pub struct HeartbeatMonitor {
    last_seen: Arc<Mutex<Vec<Option<Duration>>>>,
    timeout: Duration,
    clock: Clock,
}

impl HeartbeatMonitor {
    /// Monitor for `nodes` compute nodes with the given liveness timeout,
    /// on the wall clock.
    pub fn new(nodes: usize, timeout: Duration) -> Self {
        Self::with_clock(nodes, timeout, Clock::Wall(Instant::now()))
    }

    /// Monitor on a manually advanced clock (deterministic timeout tests).
    pub fn new_manual(nodes: usize, timeout: Duration) -> (Self, ManualClock) {
        let t = Arc::new(Mutex::new(Duration::ZERO));
        let monitor = Self::with_clock(nodes, timeout, Clock::Manual(Arc::clone(&t)));
        (monitor, ManualClock(t))
    }

    fn with_clock(nodes: usize, timeout: Duration, clock: Clock) -> Self {
        let now = clock.now();
        Self {
            last_seen: Arc::new(Mutex::new(vec![Some(now); nodes])),
            timeout,
            clock,
        }
    }

    /// The configured liveness timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Record a heartbeat from `node`. A no-op on downed slots: a node that
    /// was [`mark_down`](Self::mark_down)ed is permanently dead and cannot
    /// heartbeat itself back — that takes [`revive`](Self::revive).
    pub fn beat(&self, node: usize) {
        let now = self.clock.now();
        if let Some(slot @ Some(_)) = self.last_seen.lock().get_mut(node) {
            *slot = Some(now);
        }
    }

    /// Refresh every node that is not explicitly down — the coordinator's
    /// synchronous liveness probe at dispatch time. A crashed node
    /// ([`mark_down`](Self::mark_down)) cannot answer the probe and stays
    /// dead; everyone else answers and resets their staleness clock.
    pub fn probe_live(&self) {
        let now = self.clock.now();
        for slot in self.last_seen.lock().iter_mut() {
            if slot.is_some() {
                *slot = Some(now);
            }
        }
    }

    /// Mark a node as permanently down (crash injection, or a node
    /// self-reporting a fatal fault).
    pub fn mark_down(&self, node: usize) {
        if let Some(slot) = self.last_seen.lock().get_mut(node) {
            *slot = None;
        }
    }

    /// Explicitly bring a downed (or stale) node back: the operator
    /// replaced/restarted it. The inverse of [`mark_down`](Self::mark_down)
    /// — and the *only* path that undoes it.
    pub fn revive(&self, node: usize) {
        let now = self.clock.now();
        if let Some(slot) = self.last_seen.lock().get_mut(node) {
            *slot = Some(now);
        }
    }

    /// True if `node` heartbeated within the timeout.
    pub fn is_alive(&self, node: usize) -> bool {
        let now = self.clock.now();
        self.last_seen
            .lock()
            .get(node)
            .and_then(|s| *s)
            .map(|t| now.saturating_sub(t) <= self.timeout)
            .unwrap_or(false)
    }

    /// First dead node, if any.
    pub fn first_dead(&self) -> Option<usize> {
        let n = self.last_seen.lock().len();
        (0..n).find(|&i| !self.is_alive(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_alive_initially() {
        let m = HeartbeatMonitor::new(3, Duration::from_secs(10));
        assert!(m.is_alive(0));
        assert_eq!(m.first_dead(), None);
    }

    #[test]
    fn marked_down_node_detected() {
        let m = HeartbeatMonitor::new(3, Duration::from_secs(10));
        m.mark_down(1);
        assert!(!m.is_alive(1));
        assert_eq!(m.first_dead(), Some(1));
        m.revive(1);
        assert!(m.is_alive(1));
    }

    #[test]
    fn beat_cannot_revive_a_downed_node() {
        // mark_down means *permanently* down: a heartbeat from a node the
        // coordinator declared dead must not resurrect it.
        let m = HeartbeatMonitor::new(2, Duration::from_secs(10));
        m.mark_down(0);
        m.beat(0);
        assert!(!m.is_alive(0), "beat revived a permanently-down node");
        assert_eq!(m.first_dead(), Some(0));
        m.revive(0);
        assert!(m.is_alive(0), "explicit revive brings it back");
        m.beat(0);
        assert!(m.is_alive(0), "beat refreshes a live node");
    }

    #[test]
    fn out_of_range_is_dead() {
        let m = HeartbeatMonitor::new(2, Duration::from_secs(10));
        assert!(!m.is_alive(9));
    }

    #[test]
    fn clones_share_state() {
        let m = HeartbeatMonitor::new(2, Duration::from_secs(10));
        let m2 = m.clone();
        m2.mark_down(0);
        assert!(!m.is_alive(0));
        assert_eq!(m.timeout(), Duration::from_secs(10));
    }

    #[test]
    fn probe_refreshes_only_live_nodes() {
        // Manual clock: advancing past the timeout is deterministic, no
        // sleeps, no flakes on slow runners.
        let (m, clock) = HeartbeatMonitor::new_manual(2, Duration::from_millis(1));
        m.mark_down(1);
        clock.advance(Duration::from_millis(5));
        assert!(!m.is_alive(0), "stale without probe");
        m.probe_live();
        assert!(m.is_alive(0), "probe refreshes the live node");
        assert!(!m.is_alive(1), "probe cannot revive a dead node");
    }

    #[test]
    fn stale_node_recovers_on_beat() {
        // Staleness (missed heartbeats) is not mark_down: the node is still
        // allowed to heartbeat its way back to life.
        let (m, clock) = HeartbeatMonitor::new_manual(1, Duration::from_millis(1));
        clock.advance(Duration::from_millis(5));
        assert!(!m.is_alive(0));
        m.beat(0);
        assert!(m.is_alive(0));
    }
}
