//! Node liveness tracking (§3.2.1: the coordinator identifies active nodes
//! via heartbeat).

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tracks the last heartbeat from each compute node. Cloning shares the
/// underlying state: the coordinator and every node thread hold handles to
/// the same monitor, so a node that crashes mid-fragment can mark itself
/// down and the coordinator's recovery loop sees it immediately.
///
/// Node slots are indexed by *stable* node id (the rank a node had in the
/// original, full-size cluster), so liveness survives world shrinks.
#[derive(Clone)]
pub struct HeartbeatMonitor {
    last_seen: Arc<Mutex<Vec<Option<Instant>>>>,
    timeout: Duration,
}

impl HeartbeatMonitor {
    /// Monitor for `nodes` compute nodes with the given liveness timeout.
    pub fn new(nodes: usize, timeout: Duration) -> Self {
        Self {
            last_seen: Arc::new(Mutex::new(vec![Some(Instant::now()); nodes])),
            timeout,
        }
    }

    /// The configured liveness timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Record a heartbeat from `node`.
    pub fn beat(&self, node: usize) {
        if let Some(slot) = self.last_seen.lock().get_mut(node) {
            *slot = Some(Instant::now());
        }
    }

    /// Refresh every node that is not explicitly down — the coordinator's
    /// synchronous liveness probe at dispatch time. A crashed node
    /// ([`mark_down`](Self::mark_down)) cannot answer the probe and stays
    /// dead; everyone else answers and resets their staleness clock.
    pub fn probe_live(&self) {
        for slot in self.last_seen.lock().iter_mut() {
            if slot.is_some() {
                *slot = Some(Instant::now());
            }
        }
    }

    /// Mark a node as permanently down (crash injection, or a node
    /// self-reporting a fatal fault).
    pub fn mark_down(&self, node: usize) {
        if let Some(slot) = self.last_seen.lock().get_mut(node) {
            *slot = None;
        }
    }

    /// True if `node` heartbeated within the timeout.
    pub fn is_alive(&self, node: usize) -> bool {
        self.last_seen
            .lock()
            .get(node)
            .and_then(|s| *s)
            .map(|t| t.elapsed() <= self.timeout)
            .unwrap_or(false)
    }

    /// First dead node, if any.
    pub fn first_dead(&self) -> Option<usize> {
        let n = self.last_seen.lock().len();
        (0..n).find(|&i| !self.is_alive(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_alive_initially() {
        let m = HeartbeatMonitor::new(3, Duration::from_secs(10));
        assert!(m.is_alive(0));
        assert_eq!(m.first_dead(), None);
    }

    #[test]
    fn marked_down_node_detected() {
        let m = HeartbeatMonitor::new(3, Duration::from_secs(10));
        m.mark_down(1);
        assert!(!m.is_alive(1));
        assert_eq!(m.first_dead(), Some(1));
        m.beat(1);
        assert!(m.is_alive(1));
    }

    #[test]
    fn out_of_range_is_dead() {
        let m = HeartbeatMonitor::new(2, Duration::from_secs(10));
        assert!(!m.is_alive(9));
    }

    #[test]
    fn clones_share_state() {
        let m = HeartbeatMonitor::new(2, Duration::from_secs(10));
        let m2 = m.clone();
        m2.mark_down(0);
        assert!(!m.is_alive(0));
        assert_eq!(m.timeout(), Duration::from_secs(10));
    }

    #[test]
    fn probe_refreshes_only_live_nodes() {
        let m = HeartbeatMonitor::new(2, Duration::from_millis(1));
        m.mark_down(1);
        std::thread::sleep(Duration::from_millis(5));
        assert!(!m.is_alive(0), "stale without probe");
        m.probe_live();
        assert!(m.is_alive(0), "probe refreshes the live node");
        assert!(!m.is_alive(1), "probe cannot revive a dead node");
    }
}
