//! The distributed planner: turns a single-node plan into an
//! exchange-annotated SPMD plan every node executes over its partition.
//!
//! Partitioning is tracked bottom-up; exchanges are inserted where an
//! operator's co-location requirement is not met:
//!
//! * joins shuffle un-co-partitioned sides by their join keys (replicated
//!   dimension tables join locally);
//! * grouped aggregation runs a local **partial** aggregate, shuffles the
//!   partials by group key, and finalizes (sum-of-sums, min-of-mins,
//!   avg = sum/count) — the reason Q1's exchange traffic is tiny in
//!   Table 2; `COUNT(DISTINCT)` can't be decomposed and shuffles raw rows;
//! * global aggregates partial-aggregate locally and merge one row per
//!   node to the coordinator's node;
//! * sorts and limits gather to node 0.

use crate::{DorisError, Result};
#[cfg(test)]
use sirius_plan::expr::SortExpr;
use sirius_plan::expr::{self, AggExpr};
use sirius_plan::visit::{self, Fold, Node};
use sirius_plan::{AggFunc, ExchangeKind, Expr, JoinKind, Rel};
use std::collections::HashMap;

/// How each base table is distributed across the cluster.
#[derive(Debug, Clone, Default)]
pub struct PartitionScheme {
    by: HashMap<String, Option<String>>,
}

impl PartitionScheme {
    /// Empty scheme (everything `Arbitrary`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Hash-partition `table` by `column`.
    pub fn hash(&mut self, table: impl Into<String>, column: impl Into<String>) {
        self.by.insert(table.into(), Some(column.into()));
    }

    /// Replicate `table` to every node (small dimension tables).
    pub fn replicate(&mut self, table: impl Into<String>) {
        self.by.insert(table.into(), None);
    }

    /// The scheme used by the TPC-H experiments: fact tables hash-partition
    /// on their primary keys (lineitem on `l_partkey`, matching the Doris
    /// plan the paper describes for Q3, which must shuffle both `orders`
    /// and `lineitem`); `nation` and `region` replicate.
    pub fn tpch_default() -> Self {
        let mut s = Self::new();
        s.hash("customer", "c_custkey");
        s.hash("orders", "o_orderkey");
        s.hash("lineitem", "l_partkey");
        s.hash("part", "p_partkey");
        s.hash("partsupp", "ps_partkey");
        s.hash("supplier", "s_suppkey");
        s.replicate("nation");
        s.replicate("region");
        s
    }

    /// Partition column for `table` (`None` = replicated, missing =
    /// arbitrary).
    pub fn partition_column(&self, table: &str) -> Option<&Option<String>> {
        self.by.get(table)
    }
}

/// Data placement of a relation's output across nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum Partitioning {
    /// Hash-partitioned by these output expressions.
    Hash(Vec<Expr>),
    /// Full copy on every node.
    Replicated,
    /// Entirely on node 0; empty elsewhere.
    Singleton,
    /// Split across nodes with no known key.
    Arbitrary,
}

/// Planner options capturing host-specific distributed behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistributeOptions {
    /// Replicate every join's build side to all nodes instead of
    /// co-partitioning — how ClickHouse's distributed JOIN works, and the
    /// reason it collapses on Q3 in the paper's Table 2.
    pub broadcast_join_build_sides: bool,
}

/// Distribute a single-node plan. The result is an SPMD plan: every node
/// executes it against its local partitions, exchanges where annotated,
/// and the full result lands on node 0 (the plan always ends `Singleton`).
pub fn distribute(plan: &Rel, scheme: &PartitionScheme) -> Result<Rel> {
    distribute_with(plan, scheme, DistributeOptions::default())
}

/// [`distribute`] with explicit options.
pub fn distribute_with(
    plan: &Rel,
    scheme: &PartitionScheme,
    opts: DistributeOptions,
) -> Result<Rel> {
    let (mut rel, part) = visit::fold(&mut Distributor { scheme, opts }, plan)?;
    if part != Partitioning::Singleton && part != Partitioning::Replicated {
        rel = Rel::Exchange {
            input: Box::new(rel),
            kind: ExchangeKind::Merge,
        };
    }
    Ok(rel)
}

fn shuffle(rel: Rel, keys: Vec<Expr>) -> Rel {
    Rel::Exchange {
        input: Box::new(rel),
        kind: ExchangeKind::Shuffle { keys },
    }
}

fn merge(rel: Rel) -> Rel {
    Rel::Exchange {
        input: Box::new(rel),
        kind: ExchangeKind::Merge,
    }
}

/// The distribution pass as a [`Fold`] over the shared plan walk: children
/// arrive already distributed with their [`Partitioning`], and each
/// operator decides what exchange (if any) its inputs still need.
struct Distributor<'a> {
    scheme: &'a PartitionScheme,
    opts: DistributeOptions,
}

impl Fold for Distributor<'_> {
    type Output = (Rel, Partitioning);
    type Error = DorisError;

    fn fold(
        &mut self,
        _node: Node,
        plan: &Rel,
        children: Vec<(Rel, Partitioning)>,
    ) -> Result<(Rel, Partitioning)> {
        let scheme = self.scheme;
        let opts = self.opts;
        let mut children = children.into_iter();
        let mut input = move || match children.next() {
            Some(c) => c,
            None => unreachable!("one folded child per input"),
        };
        match plan {
            Rel::Read {
                table,
                schema,
                projection,
            } => {
                let part = match scheme.partition_column(table) {
                    Some(Some(col)) => {
                        // Where does the partition column land after projection?
                        let base_idx = schema.index_of(col);
                        let out_idx = match (base_idx, projection) {
                            (Some(b), Some(p)) => p.iter().position(|&i| i == b),
                            (Some(b), None) => Some(b),
                            (None, _) => None,
                        };
                        match out_idx {
                            Some(i) => Partitioning::Hash(vec![expr::col(i)]),
                            None => Partitioning::Arbitrary,
                        }
                    }
                    Some(None) => Partitioning::Replicated,
                    None => Partitioning::Arbitrary,
                };
                Ok((plan.clone(), part))
            }
            Rel::Filter { predicate, .. } => {
                let (child, part) = input();
                Ok((
                    Rel::Filter {
                        input: Box::new(child),
                        predicate: predicate.clone(),
                    },
                    part,
                ))
            }
            Rel::Project { exprs, .. } => {
                let (child, part) = input();
                let part = match part {
                    Partitioning::Hash(keys) => {
                        // Keys survive only if each is re-exported as a plain
                        // column.
                        let remapped: Option<Vec<Expr>> = keys
                            .iter()
                            .map(|k| exprs.iter().position(|(e, _)| e == k).map(expr::col))
                            .collect();
                        remapped
                            .map(Partitioning::Hash)
                            .unwrap_or(Partitioning::Arbitrary)
                    }
                    other => other,
                };
                Ok((
                    Rel::Project {
                        input: Box::new(child),
                        exprs: exprs.clone(),
                    },
                    part,
                ))
            }
            Rel::Join {
                kind,
                left_keys,
                right_keys,
                residual,
                ..
            } => {
                let (mut l, lpart) = input();
                let (mut r, rpart) = input();
                // Keyless joins (scalar subqueries): replicate the right side.
                if left_keys.is_empty() {
                    if rpart != Partitioning::Replicated && rpart != Partitioning::Singleton {
                        r = Rel::Exchange {
                            input: Box::new(r),
                            kind: ExchangeKind::Broadcast,
                        };
                    }
                    // A Singleton right against distributed left must also be
                    // replicated to reach every node's rows.
                    if rpart == Partitioning::Singleton {
                        r = Rel::Exchange {
                            input: Box::new(r),
                            kind: ExchangeKind::Broadcast,
                        };
                    }
                    let out = Rel::Join {
                        left: Box::new(l),
                        right: Box::new(r),
                        kind: *kind,
                        left_keys: vec![],
                        right_keys: vec![],
                        residual: residual.clone(),
                    };
                    return Ok((out, lpart));
                }
                // Keyed joins. A replicated right side joins locally under any
                // join kind (each left row lives on exactly one node and sees
                // the full right input). A replicated *left* side joins locally
                // only for Inner joins — Semi/Anti/Left would emit each left
                // row once per node. Otherwise both sides must be
                // hash-partitioned on exactly the join keys.
                let rebuild = |l: Rel, r: Rel| Rel::Join {
                    left: Box::new(l),
                    right: Box::new(r),
                    kind: *kind,
                    left_keys: left_keys.clone(),
                    right_keys: right_keys.clone(),
                    residual: residual.clone(),
                };
                if rpart == Partitioning::Replicated {
                    let out_part = if lpart == Partitioning::Replicated {
                        Partitioning::Replicated
                    } else {
                        lpart
                    };
                    return Ok((rebuild(l, r), out_part));
                }
                if opts.broadcast_join_build_sides {
                    // ClickHouse-style distributed join: ship the whole build
                    // side everywhere and keep the probe side in place.
                    let r = Rel::Exchange {
                        input: Box::new(r),
                        kind: ExchangeKind::Broadcast,
                    };
                    return Ok((rebuild(l, r), lpart));
                }
                if lpart == Partitioning::Replicated && *kind == JoinKind::Inner {
                    // Row multiplicity comes from the distributed right side.
                    return Ok((rebuild(l, r), Partitioning::Arbitrary));
                }
                if lpart != Partitioning::Hash(left_keys.clone()) {
                    l = shuffle(l, left_keys.clone());
                }
                if rpart != Partitioning::Hash(right_keys.clone()) {
                    r = shuffle(r, right_keys.clone());
                }
                Ok((rebuild(l, r), Partitioning::Hash(left_keys.clone())))
            }
            Rel::Aggregate {
                group_by,
                aggregates,
                ..
            } => {
                let (child, part) = input();
                distribute_aggregate(child, part, group_by, aggregates)
            }
            Rel::Sort { keys, .. } => {
                let (child, part) = input();
                let child = if part == Partitioning::Singleton {
                    child
                } else {
                    merge(child)
                };
                Ok((
                    Rel::Sort {
                        input: Box::new(child),
                        keys: keys.clone(),
                    },
                    Partitioning::Singleton,
                ))
            }
            Rel::Limit { offset, fetch, .. } => {
                let (child, part) = input();
                let child = if part == Partitioning::Singleton {
                    child
                } else {
                    merge(child)
                };
                Ok((
                    Rel::Limit {
                        input: Box::new(child),
                        offset: *offset,
                        fetch: *fetch,
                    },
                    Partitioning::Singleton,
                ))
            }
            Rel::Distinct { .. } => {
                let (child, part) = input();
                let width = child
                    .schema()
                    .map_err(|e| DorisError::Plan(e.to_string()))?
                    .len();
                let keys: Vec<Expr> = (0..width).map(expr::col).collect();
                let child = match part {
                    Partitioning::Singleton | Partitioning::Replicated => child,
                    _ => shuffle(child, keys.clone()),
                };
                Ok((
                    Rel::Distinct {
                        input: Box::new(child),
                    },
                    Partitioning::Arbitrary,
                ))
            }
            Rel::Exchange { .. } => Err(DorisError::Plan("plan is already distributed".into())),
        }
    }
}

/// Two-phase aggregation with partial-aggregate decomposition.
fn distribute_aggregate(
    child: Rel,
    part: Partitioning,
    group_by: &[Expr],
    aggregates: &[AggExpr],
) -> Result<(Rel, Partitioning)> {
    // Already local: everything on one node or replicated inputs.
    if part == Partitioning::Singleton {
        let out = Rel::Aggregate {
            input: Box::new(child),
            group_by: group_by.to_vec(),
            aggregates: aggregates.to_vec(),
        };
        return Ok((out, Partitioning::Singleton));
    }
    // Grouped, already co-partitioned on the keys: aggregate locally.
    if !group_by.is_empty() && part == Partitioning::Hash(group_by.to_vec()) {
        let out = Rel::Aggregate {
            input: Box::new(child),
            group_by: group_by.to_vec(),
            aggregates: aggregates.to_vec(),
        };
        return Ok((
            out,
            Partitioning::Hash((0..group_by.len()).map(expr::col).collect()),
        ));
    }

    let decomposable = aggregates.iter().all(|a| a.func != AggFunc::CountDistinct);
    if !decomposable {
        // Shuffle raw rows by group key (or merge for global) + full agg.
        let moved = if group_by.is_empty() {
            merge(child)
        } else {
            shuffle(child, group_by.to_vec())
        };
        let out = Rel::Aggregate {
            input: Box::new(moved),
            group_by: group_by.to_vec(),
            aggregates: aggregates.to_vec(),
        };
        let part = if group_by.is_empty() {
            Partitioning::Singleton
        } else {
            Partitioning::Hash((0..group_by.len()).map(expr::col).collect())
        };
        return Ok((out, part));
    }

    // Phase 1: local partials. avg decomposes into (sum, count); count
    // variants become counts summed later.
    let mut partials: Vec<AggExpr> = Vec::new();
    // For each original aggregate: the partial column indices feeding it.
    let mut feeds: Vec<(AggFunc, Vec<usize>)> = Vec::new();
    for a in aggregates {
        match a.func {
            AggFunc::Avg => {
                let s = partials.len();
                partials.push(AggExpr {
                    func: AggFunc::Sum,
                    input: a.input.clone(),
                    name: format!("{}_psum", a.name),
                });
                partials.push(AggExpr {
                    func: AggFunc::Count,
                    input: a.input.clone(),
                    name: format!("{}_pcnt", a.name),
                });
                feeds.push((AggFunc::Avg, vec![s, s + 1]));
            }
            AggFunc::Count | AggFunc::CountStar => {
                let s = partials.len();
                partials.push(AggExpr {
                    func: a.func,
                    input: a.input.clone(),
                    name: format!("{}_pcnt", a.name),
                });
                feeds.push((AggFunc::Count, vec![s]));
            }
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                let s = partials.len();
                partials.push(AggExpr {
                    func: a.func,
                    input: a.input.clone(),
                    name: format!("{}_p", a.name),
                });
                feeds.push((a.func, vec![s]));
            }
            AggFunc::CountDistinct => unreachable!("checked above"),
        }
    }
    let partial = Rel::Aggregate {
        input: Box::new(child),
        group_by: group_by.to_vec(),
        aggregates: partials.clone(),
    };

    // Phase 2: move partials, re-aggregate with merge functions.
    let k = group_by.len();
    let moved = if group_by.is_empty() {
        merge(partial)
    } else {
        shuffle(partial, (0..k).map(expr::col).collect())
    };
    let merge_aggs: Vec<AggExpr> = partials
        .iter()
        .enumerate()
        .map(|(i, p)| AggExpr {
            func: match p.func {
                AggFunc::Min => AggFunc::Min,
                AggFunc::Max => AggFunc::Max,
                // Sums and counts both merge by summation.
                _ => AggFunc::Sum,
            },
            input: Some(expr::col(k + i)),
            name: p.name.clone(),
        })
        .collect();
    let finalized = Rel::Aggregate {
        input: Box::new(moved),
        group_by: (0..k).map(expr::col).collect(),
        aggregates: merge_aggs,
    };

    // Phase 3: project back to the original output shape (avg = sum/count).
    let mut out_exprs: Vec<(Expr, String)> =
        (0..k).map(|i| (expr::col(i), format!("key{i}"))).collect();
    for ((func, cols), a) in feeds.iter().zip(aggregates.iter()) {
        let e = match func {
            AggFunc::Avg => Expr::Binary {
                op: sirius_plan::BinOp::Div,
                left: Box::new(expr::col(k + cols[0])),
                right: Box::new(expr::col(k + cols[1])),
            },
            _ => expr::col(k + cols[0]),
        };
        out_exprs.push((e, a.name.clone()));
    }
    let out = Rel::Project {
        input: Box::new(finalized),
        exprs: out_exprs,
    };
    let part = if group_by.is_empty() {
        Partitioning::Singleton
    } else {
        Partitioning::Hash((0..k).map(expr::col).collect())
    };
    Ok((out, part))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirius_columnar::{DataType, Field, Schema};
    use sirius_plan::builder::PlanBuilder;
    use sirius_plan::expr::{col, gt};

    fn scheme() -> PartitionScheme {
        PartitionScheme::tpch_default()
    }

    fn scan(table: &str, cols: &[(&str, DataType)]) -> PlanBuilder {
        PlanBuilder::scan(
            table,
            Schema::new(cols.iter().map(|(n, t)| Field::new(*n, *t)).collect()),
        )
    }

    fn count_exchanges(rel: &Rel) -> usize {
        let mut n = 0;
        visit::visit(rel, &mut |_node, r| {
            n += usize::from(matches!(r, Rel::Exchange { .. }));
        });
        n
    }

    #[test]
    fn global_aggregate_merges_partials_only() {
        // Q6-like: filter + global sum. Only one tiny merge exchange.
        let plan = scan(
            "lineitem",
            &[("l_partkey", DataType::Int64), ("v", DataType::Float64)],
        )
        .filter(gt(
            col(1),
            sirius_plan::expr::lit(sirius_columnar::Scalar::Float64(0.0)),
        ))
        .aggregate(
            vec![],
            vec![AggExpr {
                func: AggFunc::Sum,
                input: Some(col(1)),
                name: "revenue".into(),
            }],
        )
        .build();
        let d = distribute(&plan, &scheme()).unwrap();
        assert_eq!(count_exchanges(&d), 1);
        // Output schema preserved.
        assert_eq!(d.schema().unwrap().len(), plan.schema().unwrap().len());
        sirius_plan::validate::validate(&d).unwrap();
    }

    #[test]
    fn avg_decomposes_into_sum_and_count() {
        let plan = scan(
            "lineitem",
            &[("l_partkey", DataType::Int64), ("q", DataType::Float64)],
        )
        .aggregate(
            vec![col(0)],
            vec![AggExpr {
                func: AggFunc::Avg,
                input: Some(col(1)),
                name: "a".into(),
            }],
        )
        .build();
        let d = distribute(&plan, &scheme()).unwrap();
        sirius_plan::validate::validate(&d).unwrap();
        let s = d.schema().unwrap();
        assert_eq!(s.fields.last().unwrap().data_type, DataType::Float64);
        let txt = d.explain();
        assert!(txt.contains("Exchange"), "{txt}");
    }

    #[test]
    fn join_shuffles_unpartitioned_sides() {
        // customer ⋈ orders on custkey: customer is already hashed on
        // c_custkey, orders is hashed on o_orderkey → shuffle orders only.
        let plan = scan("customer", &[("c_custkey", DataType::Int64)])
            .join(
                scan(
                    "orders",
                    &[
                        ("o_orderkey", DataType::Int64),
                        ("o_custkey", DataType::Int64),
                    ],
                ),
                JoinKind::Inner,
                vec![col(0)],
                vec![col(1)],
                None,
            )
            .build();
        let d = distribute(&plan, &scheme()).unwrap();
        // One shuffle (orders) + the final merge.
        assert_eq!(count_exchanges(&d), 2, "{}", d.explain());
    }

    #[test]
    fn replicated_dimensions_join_locally() {
        let plan = scan(
            "supplier",
            &[
                ("s_suppkey", DataType::Int64),
                ("s_nationkey", DataType::Int64),
            ],
        )
        .join(
            scan("nation", &[("n_nationkey", DataType::Int64)]),
            JoinKind::Inner,
            vec![col(1)],
            vec![col(0)],
            None,
        )
        .build();
        let d = distribute(&plan, &scheme()).unwrap();
        // No shuffle for nation; just the final merge.
        assert_eq!(count_exchanges(&d), 1, "{}", d.explain());
    }

    #[test]
    fn count_distinct_shuffles_raw_rows() {
        let plan = scan(
            "partsupp",
            &[
                ("ps_partkey", DataType::Int64),
                ("ps_suppkey", DataType::Int64),
            ],
        )
        .aggregate(
            vec![col(0)],
            vec![AggExpr {
                func: AggFunc::CountDistinct,
                input: Some(col(1)),
                name: "n".into(),
            }],
        )
        .build();
        let d = distribute(&plan, &scheme()).unwrap();
        sirius_plan::validate::validate(&d).unwrap();
        // Already partitioned on ps_partkey ⇒ local. Re-key to force a
        // shuffle instead.
        let plan2 = scan(
            "partsupp",
            &[
                ("ps_partkey", DataType::Int64),
                ("ps_suppkey", DataType::Int64),
            ],
        )
        .aggregate(
            vec![col(1)],
            vec![AggExpr {
                func: AggFunc::CountDistinct,
                input: Some(col(0)),
                name: "n".into(),
            }],
        )
        .build();
        let d2 = distribute(&plan2, &scheme()).unwrap();
        assert!(count_exchanges(&d2) > count_exchanges(&d));
    }

    #[test]
    fn sort_and_limit_gather_to_node_zero() {
        let plan = scan("customer", &[("c_custkey", DataType::Int64)])
            .sort(vec![SortExpr {
                expr: col(0),
                ascending: true,
            }])
            .limit(0, Some(5))
            .build();
        let d = distribute(&plan, &scheme()).unwrap();
        // Merged once before the sort; limit stays singleton; no extra
        // merge at the root.
        assert_eq!(count_exchanges(&d), 1, "{}", d.explain());
    }

    #[test]
    fn already_distributed_plan_rejected() {
        let plan = scan("customer", &[("c_custkey", DataType::Int64)])
            .exchange(ExchangeKind::Merge)
            .build();
        assert!(distribute(&plan, &scheme()).is_err());
    }
}
