//! # sirius-doris — the distributed host data warehouse (Apache Doris
//! stand-in)
//!
//! The paper's distributed experiment (§3.3, Figure 3, §4.3): a coordinator
//! parses and optimizes SQL, produces a distributed plan, checks node
//! liveness via heartbeats, and dispatches plan fragments to compute nodes.
//! In vanilla mode the nodes execute fragments on their CPU engines and
//! exchange data through the host's native exchange; in **Sirius mode**
//! (Figure 3b) each node hands its fragments to a local Sirius GPU engine
//! and intermediate data moves through Sirius' NCCL-backed exchange
//! service, with exchanged intermediates registered as temporary tables and
//! deregistered when their fragments complete.
//!
//! The coordinator also owns fault recovery: heartbeat-driven failure
//! detection, re-scheduling onto survivors (re-partitioning the dead node's
//! shards), bounded exponential-backoff retry for transient faults,
//! cancellation propagation, and graceful degradation down to the
//! single-node CPU engine when the fleet drops below quorum. See
//! [`cluster::ClusterConfig`].

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cluster;
pub mod heartbeat;
pub mod planner;

pub use cluster::{ClusterConfig, DorisCluster, NodeEngineKind, QueryOutcome};
pub use planner::{distribute, PartitionScheme, Partitioning};

/// Errors surfaced by the distributed host.
#[derive(Debug)]
pub enum DorisError {
    /// SQL frontend failure.
    Sql(sirius_sql::SqlError),
    /// A compute node failed executing its fragment (after recovery was
    /// exhausted or for a non-recoverable cause).
    Node {
        /// The failing node (stable id).
        node: usize,
        /// Its error message.
        message: String,
    },
    /// A node is down and the cluster cannot recover (below quorum with CPU
    /// fallback disabled, or the failure repeated past the retry budget).
    NodeDown(usize),
    /// Distributed planning failure.
    Plan(String),
}

impl std::fmt::Display for DorisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DorisError::Sql(e) => write!(f, "sql error: {e}"),
            DorisError::Node { node, message } => {
                write!(f, "node {node} failed: {message}")
            }
            DorisError::NodeDown(n) => write!(f, "node {n} is down"),
            DorisError::Plan(m) => write!(f, "distributed planning error: {m}"),
        }
    }
}

impl std::error::Error for DorisError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, DorisError>;
