//! # sirius-trace — simulated-clock span/event recorder
//!
//! The workspace charges every operator's work to a simulated device clock
//! (`sirius-hw`). This crate records *events* against that clock: which
//! kernel ran on which stream at what simulated nanosecond, how long it
//! took, and how many bytes/rows it moved. Three consumers sit on top:
//!
//! 1. [`chrome`] — a Chrome-trace / Perfetto JSON exporter keyed by
//!    simulated nanoseconds, one track per device stream plus display lanes
//!    for spill tiers and exchange links;
//! 2. an `EXPLAIN ANALYZE`-style renderer in `sirius-core` built on the
//!    per-operator spans recorded here;
//! 3. [`metrics`] — a Prometheus-text `MetricsRegistry` snapshot for the
//!    coordinator (kernel launches, spill bytes, retries, pool HWM).
//!
//! Tracing is zero-cost when disabled: a [`TraceSink`] is an
//! `Option<Arc<..>>` internally, so the disabled path is a single branch
//! and performs **no allocation** — [`TraceSink::events_recorded`] stays at
//! zero, which the CI profile job asserts.
//!
//! Timestamps are **simulated** nanoseconds (the device ledger's clock),
//! not wall-clock time: a trace is exactly reproducible run-to-run, and
//! replaying its kernel events through a fresh ledger reconciles with the
//! live `TimeBreakdown` to the nanosecond (`sirius_hw::ledger::replay`).

#![warn(missing_docs)]

pub mod chrome;
pub mod metrics;

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which ledger lane an event was charged on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// The device's default stream: charges add up serially.
    Serial,
    /// A numbered concurrent stream: charges overlap until a sync.
    Stream(u32),
}

/// What kind of event was recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A kernel (or link transfer) charged to the device ledger.
    Kernel,
    /// A stream barrier (`sync_streams`): folds the overlapped stream time
    /// into the serial lane. `dur` is the wall time the barrier accounted
    /// for (the longest in-flight lane).
    Sync,
    /// An operator span opened by the engine (scan / filter / join-build /
    /// join-probe / group-by / sort / spill-partition / ...).
    Span,
    /// A zero-duration lifecycle marker (retry, reschedule, fallback, ...).
    Instant,
}

/// One recorded event on the simulated clock.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Global sequence number: replaying events in `seq` order through a
    /// fresh ledger reproduces the live ledger state exactly.
    pub seq: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Ledger lane the event was charged on.
    pub lane: Lane,
    /// Cost category label (`sirius_hw::CostCategory::label`), or a
    /// consumer-defined category for spans/instants (`"op"`, `"lifecycle"`).
    pub cat: &'static str,
    /// Kernel / operator / marker name (e.g. `"filter.apply"`,
    /// `"spill.pinned.write"`, `"exchange.shuffle"`).
    pub label: String,
    /// Simulated start time, nanoseconds on the device clock.
    pub ts: u64,
    /// Simulated duration, nanoseconds. Zero only for [`EventKind::Instant`].
    pub dur: u64,
    /// Bytes moved by the event (0 when not applicable).
    pub bytes: u64,
    /// Rows processed/produced by the event (0 when not applicable).
    pub rows: u64,
    /// Plan-node id for operator spans, if the event belongs to one.
    pub node: Option<u32>,
    /// Plan-tree depth for operator spans (the exporter fans spans out to
    /// one display track per depth, so nested spans never share a track);
    /// 0 for every other kind.
    pub depth: u32,
}

/// Whether tracing is enabled for an engine/device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceConfig {
    /// No recording: every instrumentation site is a single branch and no
    /// trace memory is ever allocated.
    #[default]
    Off,
    /// Record kernel events, operator spans, and lifecycle markers.
    On,
}

impl TraceConfig {
    /// Build the sink matching this config.
    pub fn sink(self) -> TraceSink {
        match self {
            TraceConfig::Off => TraceSink::off(),
            TraceConfig::On => TraceSink::new(),
        }
    }
}

/// Serial shard plus one shard per low-numbered stream; higher streams hash
/// onto the last shard. Events carry a global `seq`, so shard assignment is
/// display-irrelevant — it only spreads lock traffic.
const SHARDS: usize = 9;

struct SinkInner {
    seq: AtomicU64,
    shards: [Mutex<Vec<TraceEvent>>; SHARDS],
}

/// A shared, lock-cheap event recorder. Cloning shares the buffer.
///
/// A disabled sink (`TraceSink::off()` / `TraceConfig::Off`) holds no
/// allocation at all; every `record_*` call returns after one branch.
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<SinkInner>>,
}

impl TraceSink {
    /// An enabled sink with an empty buffer.
    pub fn new() -> Self {
        TraceSink {
            inner: Some(Arc::new(SinkInner {
                seq: AtomicU64::new(0),
                shards: std::array::from_fn(|_| Mutex::new(Vec::new())),
            })),
        }
    }

    /// The disabled sink: records nothing, allocates nothing.
    pub fn off() -> Self {
        TraceSink { inner: None }
    }

    /// True if events are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn shard_for(lane: Lane) -> usize {
        match lane {
            Lane::Serial => 0,
            Lane::Stream(s) => 1 + (s as usize).min(SHARDS - 2),
        }
    }

    /// Record one event, assigning it the next global sequence number.
    ///
    /// Callers that mutate a shared clock (the hw ledger) call this while
    /// holding the clock's lock, so `seq` order equals true mutation order
    /// and replay is exact.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        kind: EventKind,
        lane: Lane,
        cat: &'static str,
        label: impl Into<String>,
        ts: u64,
        dur: u64,
        bytes: u64,
        rows: u64,
        node: Option<u32>,
    ) {
        let Some(inner) = &self.inner else { return };
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let ev = TraceEvent {
            seq,
            kind,
            lane,
            cat,
            label: label.into(),
            ts,
            dur,
            bytes,
            rows,
            node,
            depth: 0,
        };
        inner.shards[Self::shard_for(lane)].lock().push(ev);
    }

    /// Record an operator span: a `[ts, ts + dur)` window on the simulated
    /// clock attributed to plan node `node` at tree depth `depth`.
    /// Zero-duration spans are dropped (an operator that charged nothing
    /// has nothing to show, and every exported `"X"` event keeps a nonzero
    /// `dur`).
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &self,
        cat: &'static str,
        label: impl Into<String>,
        ts: u64,
        dur: u64,
        bytes: u64,
        rows: u64,
        node: u32,
        depth: u32,
    ) {
        let Some(inner) = &self.inner else { return };
        if dur == 0 {
            return;
        }
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let ev = TraceEvent {
            seq,
            kind: EventKind::Span,
            lane: Lane::Serial,
            cat,
            label: label.into(),
            ts,
            dur,
            bytes,
            rows,
            node: Some(node),
            depth,
        };
        inner.shards[0].lock().push(ev);
    }

    /// Record a zero-duration lifecycle marker on the serial lane.
    pub fn instant(&self, cat: &'static str, label: impl Into<String>, ts: u64) {
        self.record(
            EventKind::Instant,
            Lane::Serial,
            cat,
            label,
            ts,
            0,
            0,
            0,
            None,
        );
    }

    /// Number of events recorded so far (0 for a disabled sink — the CI
    /// zero-allocation assertion reads this).
    pub fn events_recorded(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner.shards.iter().map(|s| s.lock().len() as u64).sum(),
        }
    }

    /// Snapshot of all events, sorted by global sequence number.
    pub fn events(&self) -> Vec<TraceEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut out: Vec<TraceEvent> = inner
            .shards
            .iter()
            .flat_map(|s| s.lock().iter().cloned().collect::<Vec<_>>())
            .collect();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Drain all events (sorted by sequence number), leaving the buffer
    /// empty but the sink enabled.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut out: Vec<TraceEvent> = inner
            .shards
            .iter()
            .flat_map(|s| std::mem::take(&mut *s.lock()))
            .collect();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Discard all buffered events.
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            for s in &inner.shards {
                s.lock().clear();
            }
        }
    }
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("enabled", &self.enabled())
            .field("events", &self.events_recorded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_sink_records_nothing() {
        let s = TraceSink::off();
        assert!(!s.enabled());
        s.record(
            EventKind::Kernel,
            Lane::Serial,
            "filter",
            "k",
            0,
            10,
            0,
            0,
            None,
        );
        s.instant("lifecycle", "retry", 5);
        assert_eq!(s.events_recorded(), 0);
        assert!(s.events().is_empty());
        assert!(s.drain().is_empty());
    }

    #[test]
    fn default_config_is_off() {
        assert_eq!(TraceConfig::default(), TraceConfig::Off);
        assert!(!TraceConfig::Off.sink().enabled());
        assert!(TraceConfig::On.sink().enabled());
    }

    #[test]
    fn events_come_back_in_seq_order() {
        let s = TraceSink::new();
        // Interleave lanes so shards fill out of order.
        s.record(
            EventKind::Kernel,
            Lane::Stream(1),
            "join",
            "a",
            0,
            5,
            0,
            0,
            None,
        );
        s.record(
            EventKind::Kernel,
            Lane::Serial,
            "other",
            "b",
            0,
            1,
            0,
            0,
            None,
        );
        s.record(
            EventKind::Kernel,
            Lane::Stream(0),
            "join",
            "c",
            0,
            7,
            0,
            0,
            None,
        );
        s.record(
            EventKind::Sync,
            Lane::Serial,
            "marker",
            "sync",
            1,
            7,
            0,
            0,
            None,
        );
        let evs = s.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(
            evs.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(evs[0].label, "a");
        assert_eq!(evs[3].kind, EventKind::Sync);
        assert_eq!(s.events_recorded(), 4);
    }

    #[test]
    fn clones_share_the_buffer_and_drain_empties_it() {
        let s = TraceSink::new();
        let s2 = s.clone();
        s2.record(
            EventKind::Kernel,
            Lane::Serial,
            "filter",
            "k",
            0,
            3,
            64,
            8,
            None,
        );
        assert_eq!(s.events_recorded(), 1);
        let drained = s.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].bytes, 64);
        assert_eq!(drained[0].rows, 8);
        assert_eq!(s2.events_recorded(), 0);
        assert!(s2.enabled(), "drain keeps the sink enabled");
    }

    #[test]
    fn high_stream_ids_hash_onto_the_last_shard() {
        let s = TraceSink::new();
        for stream in [0u32, 7, 63, 1000] {
            s.record(
                EventKind::Kernel,
                Lane::Stream(stream),
                "join",
                "k",
                0,
                1,
                0,
                0,
                None,
            );
        }
        assert_eq!(s.events().len(), 4);
    }
}
