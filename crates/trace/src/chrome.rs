//! Chrome-trace (`chrome://tracing` / Perfetto) JSON export.
//!
//! Produces the JSON Array-of-events format with `"X"` complete events on
//! the simulated clock. Chrome's `ts`/`dur` unit is microseconds; simulated
//! nanoseconds are emitted as exact decimal microseconds (`ns/1000` with up
//! to three fractional digits), so no precision is lost.
//!
//! Track layout per process (one process per device/node):
//! - `tid 0` — the serial lane (default stream);
//! - `tid 1+s` — device stream `s`;
//! - `tid 90` — spill tiers (kernel events whose label starts `spill.`);
//! - `tid 91` — exchange links (label starts `exchange.`);
//! - `tid 98` — lifecycle markers (retry / reschedule / fallback instants);
//! - `tid 99 + d` — operator spans at plan-tree depth `d` (one track per
//!   depth, so nested spans never share a track and per-track timestamps
//!   stay monotone).
//!
//! Display-lane routing is purely cosmetic: a spill write is still a real
//! ledger charge on its lane, and `sirius_hw::ledger::replay` uses the
//! event's [`Lane`], not its display track.

use crate::{EventKind, Lane, TraceEvent};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Display thread id for spill-tier traffic.
pub const SPILL_TID: u32 = 90;
/// Display thread id for exchange-link traffic.
pub const EXCHANGE_TID: u32 = 91;
/// Display thread id for lifecycle markers.
pub const LIFECYCLE_TID: u32 = 98;
/// Base display thread id for operator spans: a span at plan-tree depth `d`
/// renders on `OP_TID + d`.
pub const OP_TID: u32 = 99;

fn lane_tid(lane: Lane) -> u32 {
    match lane {
        Lane::Serial => 0,
        Lane::Stream(s) => 1 + s,
    }
}

/// The display track an event renders on.
pub fn display_tid(ev: &TraceEvent) -> u32 {
    match ev.kind {
        EventKind::Span => OP_TID + ev.depth,
        EventKind::Instant => LIFECYCLE_TID,
        EventKind::Sync => lane_tid(Lane::Serial),
        EventKind::Kernel => {
            if ev.label.starts_with("spill.") {
                SPILL_TID
            } else if ev.label.starts_with("exchange.") {
                EXCHANGE_TID
            } else {
                lane_tid(ev.lane)
            }
        }
    }
}

fn tid_name(tid: u32) -> String {
    match tid {
        0 => "serial".to_string(),
        SPILL_TID => "spill tiers".to_string(),
        EXCHANGE_TID => "exchange links".to_string(),
        LIFECYCLE_TID => "lifecycle".to_string(),
        t if t >= OP_TID => format!("operators (depth {})", t - OP_TID),
        s => format!("stream {}", s - 1),
    }
}

/// Exact microseconds from nanoseconds: an integer part and up to three
/// fractional digits, no floating-point rounding.
fn us(ns: u64) -> String {
    let whole = ns / 1000;
    let frac = ns % 1000;
    if frac == 0 {
        format!("{whole}")
    } else {
        let mut s = format!("{whole}.{frac:03}");
        while s.ends_with('0') {
            s.pop();
        }
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn push_meta(out: &mut String, pid: u32, tid: u32, name: &str, what: &str, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    let _ = write!(
        out,
        "\n{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{what}\",\
         \"args\":{{\"name\":\"{}\"}}}}",
        json_escape(name)
    );
}

/// Export one process's events. `process` names the device/node (e.g.
/// `"gh200"` or `"node 2"`).
pub fn export(process: &str, events: &[TraceEvent]) -> String {
    export_processes(&[(process.to_string(), events.to_vec())])
}

/// Export several processes (e.g. one per cluster node) into one trace.
pub fn export_processes(processes: &[(String, Vec<TraceEvent>)]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    for (pid, (name, events)) in processes.iter().enumerate() {
        let pid = pid as u32;
        push_meta(&mut out, pid, 0, name, "process_name", &mut first);
        let tids: BTreeSet<u32> = events.iter().map(display_tid).collect();
        for tid in &tids {
            push_meta(
                &mut out,
                pid,
                *tid,
                &tid_name(*tid),
                "thread_name",
                &mut first,
            );
        }
        for ev in events {
            if !first {
                out.push(',');
            }
            first = false;
            let tid = display_tid(ev);
            let (ph, dur) = match ev.kind {
                EventKind::Instant => ("i", None),
                _ => ("X", Some(ev.dur)),
            };
            let _ = write!(
                out,
                "\n{{\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},",
                us(ev.ts)
            );
            if let Some(d) = dur {
                let _ = write!(out, "\"dur\":{},", us(d));
            } else {
                out.push_str("\"s\":\"p\",");
            }
            let _ = write!(
                out,
                "\"cat\":\"{}\",\"name\":\"{}\",\"args\":{{\"seq\":{}",
                json_escape(ev.cat),
                json_escape(&ev.label),
                ev.seq
            );
            if ev.bytes > 0 {
                let _ = write!(out, ",\"bytes\":{}", ev.bytes);
            }
            if ev.rows > 0 {
                let _ = write!(out, ",\"rows\":{}", ev.rows);
            }
            if let Some(node) = ev.node {
                let _ = write!(out, ",\"node\":{node}");
            }
            out.push_str("}}");
        }
    }
    out.push_str("\n]}");
    out
}

/// Schema violations found by [`validate`] / [`validate_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation(pub String);

/// Validate an in-memory event stream: per-track monotone (non-decreasing)
/// `ts` in sequence order, every `cat` drawn from `known_cats`, and nonzero
/// `dur` on everything but instant markers.
pub fn validate(events: &[TraceEvent], known_cats: &[&str]) -> Result<(), Violation> {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.seq);
    let mut last_ts: std::collections::BTreeMap<u32, u64> = Default::default();
    for ev in sorted {
        if !known_cats.contains(&ev.cat) {
            return Err(Violation(format!(
                "seq {}: unknown cat {:?} (label {:?})",
                ev.seq, ev.cat, ev.label
            )));
        }
        if ev.dur == 0 && ev.kind != EventKind::Instant {
            return Err(Violation(format!(
                "seq {}: zero dur on non-instant event {:?}",
                ev.seq, ev.label
            )));
        }
        let tid = display_tid(ev);
        let prev = last_ts.entry(tid).or_insert(0);
        if ev.ts < *prev {
            return Err(Violation(format!(
                "seq {}: ts {} regresses below {} on track {}",
                ev.seq, ev.ts, prev, tid
            )));
        }
        *prev = ev.ts;
    }
    Ok(())
}

// --- emitted-JSON validation (CI smoke) ------------------------------------

/// A minimal JSON value, just enough to check the emitted trace file.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Violation {
        Violation(format!("json parse error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Violation> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, Violation> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end")),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, Violation> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn number(&mut self) -> Result<Json, Violation> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, Violation> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("end"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, Violation> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, Violation> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }
}

/// Validate an emitted Chrome-trace JSON document against the event schema:
/// it must parse, every `"X"` event needs a known `cat`, nonzero `dur`, and
/// per-`(pid, tid)` `ts` must be monotone in `args.seq` order. Returns the
/// number of non-metadata events checked.
pub fn validate_json(json: &str, known_cats: &[&str]) -> Result<usize, Violation> {
    let mut p = Parser::new(json);
    let doc = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing bytes after document"));
    }
    let events = doc
        .get("traceEvents")
        .and_then(|v| match v {
            Json::Arr(a) => Some(a),
            _ => None,
        })
        .ok_or_else(|| Violation("missing traceEvents array".into()))?;

    // (pid, tid, seq, ts, complete?) for every non-metadata event.
    let mut rows: Vec<(u64, u64, u64, f64, bool)> = Vec::new();
    let mut checked = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| Violation(format!("event {i}: missing ph")))?;
        if ph == "M" {
            continue;
        }
        checked += 1;
        let pid = ev.get("pid").and_then(Json::as_f64).unwrap_or(-1.0);
        let tid = ev.get("tid").and_then(Json::as_f64).unwrap_or(-1.0);
        let ts = ev
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| Violation(format!("event {i}: missing ts")))?;
        let cat = ev
            .get("cat")
            .and_then(Json::as_str)
            .ok_or_else(|| Violation(format!("event {i}: missing cat")))?;
        if !known_cats.contains(&cat) {
            return Err(Violation(format!("event {i}: unknown cat {cat:?}")));
        }
        if ph == "X" {
            let dur = ev
                .get("dur")
                .and_then(Json::as_f64)
                .ok_or_else(|| Violation(format!("event {i}: X event missing dur")))?;
            if dur <= 0.0 {
                return Err(Violation(format!("event {i}: zero dur")));
            }
        }
        let seq = ev
            .get("args")
            .and_then(|a| a.get("seq"))
            .and_then(Json::as_f64)
            .ok_or_else(|| Violation(format!("event {i}: missing args.seq")))?
            as u64;
        rows.push((pid as u64, tid as u64, seq, ts, ph == "X"));
    }
    rows.sort_by_key(|(pid, tid, seq, ..)| (*pid, *tid, *seq));
    let mut prev: Option<(u64, u64, f64)> = None;
    for (pid, tid, seq, ts, _) in &rows {
        if let Some((ppid, ptid, pts)) = prev {
            if ppid == *pid && ptid == *tid && *ts < pts {
                return Err(Violation(format!(
                    "pid {pid} tid {tid}: ts {ts} regresses below {pts} at seq {seq}"
                )));
            }
        }
        prev = Some((*pid, *tid, *ts));
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, lane: Lane, cat: &'static str, label: &str, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            seq,
            kind: EventKind::Kernel,
            lane,
            cat,
            label: label.into(),
            ts,
            dur,
            bytes: 128,
            rows: 16,
            node: None,
            depth: 0,
        }
    }

    #[test]
    fn exact_microsecond_rendering() {
        assert_eq!(us(0), "0");
        assert_eq!(us(1000), "1");
        assert_eq!(us(1), "0.001");
        assert_eq!(us(1500), "1.5");
        assert_eq!(us(123_456_789), "123456.789");
    }

    #[test]
    fn export_roundtrips_through_the_validator() {
        let events = vec![
            ev(0, Lane::Serial, "other", "dispatch", 0, 100),
            ev(1, Lane::Stream(0), "filter", "filter.apply", 100, 500),
            ev(2, Lane::Stream(1), "filter", "filter.apply", 100, 400),
            ev(3, Lane::Serial, "exchange", "spill.pinned.write", 600, 50),
            ev(4, Lane::Serial, "exchange", "exchange.shuffle", 650, 70),
            TraceEvent {
                seq: 5,
                kind: EventKind::Instant,
                lane: Lane::Serial,
                cat: "lifecycle",
                label: "retry".into(),
                ts: 700,
                dur: 0,
                bytes: 0,
                rows: 0,
                node: None,
                depth: 0,
            },
        ];
        let cats = ["other", "filter", "exchange", "lifecycle"];
        validate(&events, &cats).unwrap();
        let json = export("gh200", &events);
        let checked = validate_json(&json, &cats).unwrap();
        assert_eq!(checked, events.len());
        // Display routing: spill/exchange kernels land on their own lanes.
        assert_eq!(display_tid(&events[3]), SPILL_TID);
        assert_eq!(display_tid(&events[4]), EXCHANGE_TID);
        assert_eq!(display_tid(&events[1]), 1);
    }

    #[test]
    fn validator_rejects_unknown_cat_zero_dur_and_ts_regression() {
        let good = [ev(0, Lane::Serial, "filter", "k", 10, 5)];
        assert!(validate(&good, &["filter"]).is_ok());
        assert!(validate(&good, &["join"]).is_err());

        let zero = [ev(0, Lane::Serial, "filter", "k", 10, 0)];
        assert!(validate(&zero, &["filter"]).is_err());

        let regress = [
            ev(0, Lane::Serial, "filter", "k", 10, 5),
            ev(1, Lane::Serial, "filter", "k", 4, 5),
        ];
        assert!(validate(&regress, &["filter"]).is_err());
        // Different tracks may interleave timestamps freely.
        let cross = [
            ev(0, Lane::Stream(0), "filter", "k", 10, 5),
            ev(1, Lane::Stream(1), "filter", "k", 4, 5),
        ];
        assert!(validate(&cross, &["filter"]).is_ok());
    }

    #[test]
    fn json_validator_rejects_corrupt_documents() {
        assert!(validate_json("{", &[]).is_err());
        assert!(validate_json("{\"traceEvents\":3}", &[]).is_err());
        let doc = "{\"traceEvents\":[{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":1,\
                   \"cat\":\"filter\",\"name\":\"k\",\"args\":{\"seq\":0}}]}";
        // Missing dur on an X event.
        assert!(validate_json(doc, &["filter"]).is_err());
    }

    #[test]
    fn multi_process_export_keeps_pids_separate() {
        let a = vec![ev(0, Lane::Serial, "join", "probe", 0, 10)];
        let b = vec![ev(0, Lane::Serial, "join", "probe", 0, 10)];
        let json = export_processes(&[("node 0".into(), a), ("node 1".into(), b)]);
        assert_eq!(validate_json(&json, &["join"]).unwrap(), 2);
        assert!(json.contains("node 0"));
        assert!(json.contains("node 1"));
    }
}
