//! A small Prometheus-text metrics registry for the coordinator.
//!
//! Counters, gauges, and fixed-bucket histograms with label sets, rendered
//! in the Prometheus text exposition format (`render`). Shared and
//! thread-safe; cloning a [`MetricsRegistry`] shares the underlying state,
//! so every node/engine handle feeds one snapshot.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

type LabelSet = Vec<(String, String)>;

#[derive(Default)]
struct Histogram {
    /// Upper bounds (`le`), paired with cumulative counts at render time.
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

#[derive(Default)]
struct Registry {
    help: BTreeMap<String, String>,
    counters: BTreeMap<(String, LabelSet), u64>,
    gauges: BTreeMap<(String, LabelSet), f64>,
    histograms: BTreeMap<(String, LabelSet), Histogram>,
}

/// Shared metrics registry; cheap to clone.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Registry>>,
}

fn labels(pairs: &[(&str, &str)]) -> LabelSet {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn render_labels(ls: &LabelSet, extra: Option<(&str, String)>) -> String {
    let mut parts: Vec<String> = ls.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Render a float the way Prometheus expects (no exponent for simple
/// values, `+Inf` spelled out).
fn num(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 {
            "+Inf".into()
        } else {
            "-Inf".into()
        }
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register help text for a metric family (shown as `# HELP`).
    pub fn describe(&self, name: &str, help: &str) {
        self.inner
            .lock()
            .help
            .insert(name.to_string(), help.to_string());
    }

    /// Add `v` to a counter.
    pub fn counter_add(&self, name: &str, label_pairs: &[(&str, &str)], v: u64) {
        *self
            .inner
            .lock()
            .counters
            .entry((name.to_string(), labels(label_pairs)))
            .or_insert(0) += v;
    }

    /// Increment a counter by one.
    pub fn counter_inc(&self, name: &str, label_pairs: &[(&str, &str)]) {
        self.counter_add(name, label_pairs, 1);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter_value(&self, name: &str, label_pairs: &[(&str, &str)]) -> u64 {
        self.inner
            .lock()
            .counters
            .get(&(name.to_string(), labels(label_pairs)))
            .copied()
            .unwrap_or(0)
    }

    /// Current value of a gauge (`None` if never set — unlike counters,
    /// gauges have no meaningful zero).
    pub fn gauge_value(&self, name: &str, label_pairs: &[(&str, &str)]) -> Option<f64> {
        self.inner
            .lock()
            .gauges
            .get(&(name.to_string(), labels(label_pairs)))
            .copied()
    }

    /// Set a gauge to `v`.
    pub fn gauge_set(&self, name: &str, label_pairs: &[(&str, &str)], v: f64) {
        self.inner
            .lock()
            .gauges
            .insert((name.to_string(), labels(label_pairs)), v);
    }

    /// Raise a gauge to `v` if `v` exceeds its current value (high-watermark
    /// semantics).
    pub fn gauge_max(&self, name: &str, label_pairs: &[(&str, &str)], v: f64) {
        let mut reg = self.inner.lock();
        let slot = reg
            .gauges
            .entry((name.to_string(), labels(label_pairs)))
            .or_insert(f64::MIN);
        if v > *slot {
            *slot = v;
        }
    }

    /// Observe a value into a fixed-bucket histogram. The first observation
    /// fixes the bucket bounds; later calls reuse them.
    pub fn histogram_observe(
        &self,
        name: &str,
        label_pairs: &[(&str, &str)],
        bounds: &[f64],
        v: f64,
    ) {
        let mut reg = self.inner.lock();
        let h = reg
            .histograms
            .entry((name.to_string(), labels(label_pairs)))
            .or_insert_with(|| Histogram {
                bounds: bounds.to_vec(),
                counts: vec![0; bounds.len()],
                sum: 0.0,
                count: 0,
            });
        for (bound, count) in h.bounds.iter().zip(h.counts.iter_mut()) {
            if v <= *bound {
                *count += 1;
            }
        }
        h.sum += v;
        h.count += 1;
    }

    /// Discard all recorded values (help text is kept).
    pub fn clear(&self) {
        let mut reg = self.inner.lock();
        reg.counters.clear();
        reg.gauges.clear();
        reg.histograms.clear();
    }

    /// Render the Prometheus text exposition format.
    pub fn render(&self) -> String {
        let reg = self.inner.lock();
        let mut out = String::new();
        let mut announced: std::collections::BTreeSet<String> = Default::default();
        let mut announce = |out: &mut String, name: &str, kind: &str| {
            if announced.insert(name.to_string()) {
                if let Some(h) = reg.help.get(name) {
                    let _ = writeln!(out, "# HELP {name} {h}");
                }
                let _ = writeln!(out, "# TYPE {name} {kind}");
            }
        };
        for ((name, ls), v) in &reg.counters {
            announce(&mut out, name, "counter");
            let _ = writeln!(out, "{name}{} {v}", render_labels(ls, None));
        }
        for ((name, ls), v) in &reg.gauges {
            announce(&mut out, name, "gauge");
            let _ = writeln!(out, "{name}{} {}", render_labels(ls, None), num(*v));
        }
        for ((name, ls), h) in &reg.histograms {
            announce(&mut out, name, "histogram");
            for (bound, count) in h.bounds.iter().zip(h.counts.iter()) {
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {count}",
                    render_labels(ls, Some(("le", num(*bound))))
                );
            }
            let _ = writeln!(
                out,
                "{name}_bucket{} {}",
                render_labels(ls, Some(("le", "+Inf".into()))),
                h.count
            );
            let _ = writeln!(out, "{name}_sum{} {}", render_labels(ls, None), num(h.sum));
            let _ = writeln!(out, "{name}_count{} {}", render_labels(ls, None), h.count);
        }
        out
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MetricsRegistry")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let m = MetricsRegistry::new();
        m.counter_inc("sirius_retries_total", &[("query", "q6")]);
        m.counter_add("sirius_retries_total", &[("query", "q6")], 2);
        m.counter_inc("sirius_retries_total", &[("query", "q1")]);
        assert_eq!(
            m.counter_value("sirius_retries_total", &[("query", "q6")]),
            3
        );
        assert_eq!(
            m.counter_value("sirius_retries_total", &[("query", "q1")]),
            1
        );
        assert_eq!(
            m.counter_value("sirius_retries_total", &[("query", "q9")]),
            0
        );
    }

    #[test]
    fn render_is_prometheus_text_format() {
        let m = MetricsRegistry::new();
        m.describe("sirius_kernel_launches_total", "Kernels launched.");
        m.counter_add("sirius_kernel_launches_total", &[("cat", "filter")], 7);
        m.gauge_set("sirius_pool_hwm_bytes", &[], 1048576.0);
        m.histogram_observe("sirius_kernel_ns", &[], &[100.0, 1000.0], 50.0);
        m.histogram_observe("sirius_kernel_ns", &[], &[100.0, 1000.0], 500.0);
        m.histogram_observe("sirius_kernel_ns", &[], &[100.0, 1000.0], 5000.0);
        let text = m.render();
        assert!(text.contains("# HELP sirius_kernel_launches_total Kernels launched."));
        assert!(text.contains("# TYPE sirius_kernel_launches_total counter"));
        assert!(text.contains("sirius_kernel_launches_total{cat=\"filter\"} 7"));
        assert!(text.contains("# TYPE sirius_pool_hwm_bytes gauge"));
        assert!(text.contains("sirius_pool_hwm_bytes 1048576"));
        assert!(text.contains("sirius_kernel_ns_bucket{le=\"100\"} 1"));
        assert!(text.contains("sirius_kernel_ns_bucket{le=\"1000\"} 2"));
        assert!(text.contains("sirius_kernel_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("sirius_kernel_ns_sum 5550"));
        assert!(text.contains("sirius_kernel_ns_count 3"));
    }

    #[test]
    fn gauge_max_keeps_high_watermark() {
        let m = MetricsRegistry::new();
        m.gauge_max("hwm", &[], 10.0);
        m.gauge_max("hwm", &[], 4.0);
        m.gauge_max("hwm", &[], 12.0);
        assert!(m.render().contains("hwm 12"));
    }

    #[test]
    fn clear_resets_values() {
        let m = MetricsRegistry::new();
        m.counter_inc("c", &[]);
        m.clear();
        assert_eq!(m.counter_value("c", &[]), 0);
    }
}
