//! Logical types, fields, and schemas.

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Logical data types supported across the engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 32-bit signed integer.
    Int32,
    /// 64-bit signed integer (also fixed-point cents for money).
    Int64,
    /// 64-bit IEEE float.
    Float64,
    /// Variable-length UTF-8 string with i32 offsets (Arrow `utf8`).
    Utf8,
    /// Days since the UNIX epoch (Arrow `date32`).
    Date32,
}

impl DataType {
    /// Width in bytes of one fixed-size value; strings report the offset
    /// width (actual payload is accounted separately).
    pub fn fixed_width(&self) -> usize {
        match self {
            DataType::Bool => 1,
            DataType::Int32 | DataType::Date32 => 4,
            DataType::Int64 | DataType::Float64 => 8,
            DataType::Utf8 => 4,
        }
    }

    /// True for numeric types usable in arithmetic.
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int32 | DataType::Int64 | DataType::Float64)
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DataType::Bool => "bool",
            DataType::Int32 => "i32",
            DataType::Int64 => "i64",
            DataType::Float64 => "f64",
            DataType::Utf8 => "utf8",
            DataType::Date32 => "date32",
        };
        f.write_str(s)
    }
}

/// A named, typed column slot in a schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Column name (possibly qualified, e.g. `lineitem.l_orderkey`).
    pub name: String,
    /// Logical type.
    pub data_type: DataType,
    /// Whether nulls may appear (left-join outputs set this).
    pub nullable: bool,
}

impl Field {
    /// A non-nullable field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Self {
            name: name.into(),
            data_type,
            nullable: false,
        }
    }

    /// A nullable field.
    pub fn nullable(name: impl Into<String>, data_type: DataType) -> Self {
        Self {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }

    /// Copy of this field with a new name.
    pub fn renamed(&self, name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            data_type: self.data_type,
            nullable: self.nullable,
        }
    }
}

/// An ordered collection of fields. Cheap to clone (`Arc` inside `Table`).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    /// The fields, in column order.
    pub fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Self { fields }
    }

    /// Shared empty schema.
    pub fn empty() -> Self {
        Self { fields: vec![] }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the field whose name equals `name`, or whose unqualified
    /// suffix equals `name` (so `l_orderkey` finds `lineitem.l_orderkey`).
    /// Returns `None` on no match or ambiguity.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        if let Some(i) = self.fields.iter().position(|f| f.name == name) {
            return Some(i);
        }
        let matches: Vec<usize> = self
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.name
                    .rsplit('.')
                    .next()
                    .map(|suffix| suffix == name)
                    .unwrap_or(false)
            })
            .map(|(i, _)| i)
            .collect();
        if matches.len() == 1 {
            Some(matches[0])
        } else {
            None
        }
    }

    /// Field at index `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Concatenate two schemas (join output).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema::new(fields)
    }

    /// Schema with only the fields at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.fields[i].clone()).collect())
    }

    /// Wrap in an `Arc`.
    pub fn into_arc(self) -> Arc<Schema> {
        Arc::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_of_prefers_exact_match() {
        let s = Schema::new(vec![
            Field::new("a.x", DataType::Int32),
            Field::new("x", DataType::Int64),
        ]);
        assert_eq!(s.index_of("x"), Some(1));
        assert_eq!(s.index_of("a.x"), Some(0));
    }

    #[test]
    fn index_of_resolves_unqualified_suffix() {
        let s = Schema::new(vec![
            Field::new("lineitem.l_orderkey", DataType::Int64),
            Field::new("orders.o_orderkey", DataType::Int64),
        ]);
        assert_eq!(s.index_of("l_orderkey"), Some(0));
        assert_eq!(s.index_of("o_orderkey"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn index_of_ambiguous_is_none() {
        let s = Schema::new(vec![
            Field::new("a.k", DataType::Int32),
            Field::new("b.k", DataType::Int32),
        ]);
        assert_eq!(s.index_of("k"), None);
    }

    #[test]
    fn join_and_project() {
        let a = Schema::new(vec![Field::new("x", DataType::Int32)]);
        let b = Schema::new(vec![
            Field::new("y", DataType::Utf8),
            Field::new("z", DataType::Bool),
        ]);
        let j = a.join(&b);
        assert_eq!(j.len(), 3);
        let p = j.project(&[2, 0]);
        assert_eq!(p.fields[0].name, "z");
        assert_eq!(p.fields[1].name, "x");
    }

    #[test]
    fn fixed_widths() {
        assert_eq!(DataType::Bool.fixed_width(), 1);
        assert_eq!(DataType::Int32.fixed_width(), 4);
        assert_eq!(DataType::Date32.fixed_width(), 4);
        assert_eq!(DataType::Int64.fixed_width(), 8);
        assert_eq!(DataType::Float64.fixed_width(), 8);
        assert!(DataType::Int64.is_numeric());
        assert!(!DataType::Utf8.is_numeric());
    }
}
