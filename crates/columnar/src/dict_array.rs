//! Dictionary-encoded UTF-8 string arrays: an `i32` code per row pointing
//! into a shared dictionary of unique non-null values.
//!
//! This is the encoded execution format from the paper's §4.2 argument:
//! operators that only move or compare string columns touch 4-byte codes
//! instead of payload bytes, and the dictionary rides along as a shared
//! `Arc` that gather/filter/concat never copy. Nulls live in the codes'
//! validity bitmap — the dictionary itself holds no nulls.
//!
//! `byte_size()` deliberately counts only the codes (plus validity): that is
//! what kernels stream when they move an encoded column. The dictionary's
//! payload is reported separately by [`DictionaryArray::dict_byte_size`] and
//! is charged only by operators that genuinely read it (materialization,
//! `LIKE`, the one-time group-by dictionary sort) and by the wire the first
//! time it ships over a link.

use crate::bitmap::Bitmap;
use crate::string_array::StringArray;
use std::collections::HashMap;
use std::sync::Arc;

/// Immutable dictionary-encoded string array.
#[derive(Debug, Clone)]
pub struct DictionaryArray {
    codes: Arc<Vec<i32>>,
    validity: Option<Bitmap>,
    values: Arc<StringArray>,
}

impl DictionaryArray {
    /// Build from raw parts. Null slots may carry any in-range code (it is
    /// masked by the validity bitmap); all codes must index into `values`.
    pub fn from_parts(codes: Vec<i32>, validity: Option<Bitmap>, values: Arc<StringArray>) -> Self {
        debug_assert!(
            codes.iter().all(|&c| c == 0 || (c as usize) < values.len()),
            "dictionary code out of range"
        );
        let validity = validity.filter(|v| v.count_set() < v.len());
        Self {
            codes: Arc::new(codes),
            validity,
            values,
        }
    }

    /// Encode a decoded string array: dictionary entries are the unique
    /// non-null values in first-appearance order.
    pub fn encode(src: &StringArray) -> DictionaryArray {
        let mut seen: HashMap<&str, i32> = HashMap::new();
        let mut uniques: Vec<&str> = Vec::new();
        let mut codes = Vec::with_capacity(src.len());
        let mut bits = Vec::with_capacity(src.len());
        for i in 0..src.len() {
            match src.value(i) {
                Some(s) => {
                    let next = uniques.len() as i32;
                    let code = *seen.entry(s).or_insert_with(|| {
                        uniques.push(s);
                        next
                    });
                    codes.push(code);
                    bits.push(true);
                }
                None => {
                    codes.push(0);
                    bits.push(false);
                }
            }
        }
        let validity = if bits.iter().all(|b| *b) {
            None
        } else {
            Some(Bitmap::from_iter(bits))
        };
        DictionaryArray {
            codes: Arc::new(codes),
            validity,
            values: Arc::new(StringArray::from_strings(uniques)),
        }
    }

    /// Decode to a plain string array (bulk payload copy via the
    /// dictionary's gather path).
    pub fn decode(&self) -> StringArray {
        let indices: Vec<Option<usize>> = (0..self.len())
            .map(|i| self.is_valid(i).then(|| self.codes[i] as usize))
            .collect();
        self.values.gather_opt(&indices)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// True if element `i` is non-null.
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.as_ref().map(|v| v.get(i)).unwrap_or(true)
    }

    /// Element `i` as `&str` borrowed from the dictionary, `None` if null.
    pub fn value(&self, i: usize) -> Option<&str> {
        if self.is_valid(i) {
            self.values.value(self.codes[i] as usize)
        } else {
            None
        }
    }

    /// Dictionary code of element `i`, `None` if null.
    pub fn code(&self, i: usize) -> Option<i32> {
        if self.is_valid(i) {
            Some(self.codes[i])
        } else {
            None
        }
    }

    /// The raw code buffer (null slots hold an arbitrary in-range code).
    pub fn codes(&self) -> &[i32] {
        &self.codes
    }

    /// The validity bitmap, if any element is null.
    pub fn validity(&self) -> Option<&Bitmap> {
        self.validity.as_ref()
    }

    /// The shared dictionary of unique non-null values.
    pub fn values(&self) -> &Arc<StringArray> {
        &self.values
    }

    /// Identity of the shared dictionary buffer — used to ship each
    /// dictionary at most once per network link.
    pub fn dict_ptr(&self) -> usize {
        Arc::as_ptr(&self.values) as usize
    }

    /// Iterate elements as `Option<&str>`.
    pub fn iter(&self) -> impl Iterator<Item = Option<&str>> + '_ {
        (0..self.len()).map(move |i| self.value(i))
    }

    /// Heap bytes moved when this column moves: codes plus validity. The
    /// shared dictionary is excluded — see the module docs.
    pub fn byte_size(&self) -> usize {
        self.codes.len() * 4 + self.validity.as_ref().map(|v| v.byte_size()).unwrap_or(0)
    }

    /// Heap bytes of the shared dictionary itself.
    pub fn dict_byte_size(&self) -> usize {
        self.values.byte_size()
    }

    /// Gather elements at `indices`: codes and validity move, the
    /// dictionary is shared untouched.
    pub fn gather(&self, indices: &[usize]) -> DictionaryArray {
        let codes: Vec<i32> = indices.iter().map(|&i| self.codes[i]).collect();
        let validity = self
            .validity
            .as_ref()
            .map(|v| v.gather(indices))
            .filter(|v| v.count_set() < v.len());
        DictionaryArray {
            codes: Arc::new(codes),
            validity,
            values: Arc::clone(&self.values),
        }
    }

    /// Gather with optional indices: `None` produces a null.
    pub fn gather_opt(&self, indices: &[Option<usize>]) -> DictionaryArray {
        let mut codes = Vec::with_capacity(indices.len());
        let mut bits = Vec::with_capacity(indices.len());
        for &ix in indices {
            match ix {
                Some(i) if self.is_valid(i) => {
                    codes.push(self.codes[i]);
                    bits.push(true);
                }
                _ => {
                    codes.push(0);
                    bits.push(false);
                }
            }
        }
        let validity = if bits.iter().all(|b| *b) {
            None
        } else {
            Some(Bitmap::from_iter(bits))
        };
        DictionaryArray {
            codes: Arc::new(codes),
            validity,
            values: Arc::clone(&self.values),
        }
    }

    /// Concatenate encoded arrays. When every input shares one dictionary
    /// `Arc` (the common case: morsels of one generated column), only codes
    /// are copied. Otherwise dictionaries are merged in first-appearance
    /// order and codes remapped.
    pub fn concat(arrays: &[&DictionaryArray]) -> DictionaryArray {
        assert!(!arrays.is_empty(), "concat of zero arrays");
        if arrays.len() == 1 {
            return arrays[0].clone();
        }
        let n: usize = arrays.iter().map(|a| a.len()).sum();
        let shared = arrays
            .iter()
            .all(|a| Arc::ptr_eq(&a.values, &arrays[0].values));
        let any_null = arrays.iter().any(|a| a.validity.is_some());
        let mut bits = if any_null {
            Vec::with_capacity(n)
        } else {
            Vec::new()
        };
        let mut codes = Vec::with_capacity(n);
        if shared {
            for a in arrays {
                codes.extend_from_slice(&a.codes);
                if any_null {
                    bits.extend((0..a.len()).map(|i| a.is_valid(i)));
                }
            }
            let validity = if any_null {
                Some(Bitmap::from_iter(bits)).filter(|v| v.count_set() < v.len())
            } else {
                None
            };
            return DictionaryArray {
                codes: Arc::new(codes),
                validity,
                values: Arc::clone(&arrays[0].values),
            };
        }
        // Merge dictionaries: first-appearance order across inputs.
        let mut seen: HashMap<&str, i32> = HashMap::new();
        let mut uniques: Vec<&str> = Vec::new();
        let mut remaps: Vec<Vec<i32>> = Vec::with_capacity(arrays.len());
        for a in arrays {
            let mut remap = Vec::with_capacity(a.values.len());
            for d in 0..a.values.len() {
                let s = a.values.value(d).expect("dictionary entries are non-null");
                let next = uniques.len() as i32;
                let code = *seen.entry(s).or_insert_with(|| {
                    uniques.push(s);
                    next
                });
                remap.push(code);
            }
            remaps.push(remap);
        }
        for (a, remap) in arrays.iter().zip(&remaps) {
            for i in 0..a.len() {
                if a.is_valid(i) {
                    codes.push(remap[a.codes[i] as usize]);
                    if any_null {
                        bits.push(true);
                    }
                } else {
                    codes.push(0);
                    if any_null {
                        bits.push(false);
                    }
                }
            }
        }
        let validity = if any_null {
            Some(Bitmap::from_iter(bits)).filter(|v| v.count_set() < v.len())
        } else {
            None
        };
        DictionaryArray {
            codes: Arc::new(codes),
            validity,
            values: Arc::new(StringArray::from_strings(uniques)),
        }
    }

    /// Lexicographic rank of each dictionary entry: `ranks[code]` orders the
    /// same as the decoded strings. One sort over the (small) dictionary
    /// buys order-correct comparisons on codes for the whole column.
    pub fn value_ranks(&self) -> Vec<i32> {
        let mut order: Vec<usize> = (0..self.values.len()).collect();
        order.sort_by_key(|&d| {
            self.values
                .value(d)
                .expect("dictionary entries are non-null")
        });
        let mut ranks = vec![0i32; self.values.len()];
        for (rank, &d) in order.iter().enumerate() {
            ranks[d] = rank as i32;
        }
        ranks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let src = StringArray::from_options([
            Some("b"),
            None,
            Some("a"),
            Some("b"),
            Some(""),
            Some("naïve✓"),
        ]);
        let d = DictionaryArray::encode(&src);
        assert_eq!(d.len(), 6);
        // Four unique non-null values, first-appearance order.
        assert_eq!(d.values().len(), 4);
        assert_eq!(d.value(0), Some("b"));
        assert_eq!(d.value(1), None);
        assert_eq!(d.code(0), d.code(3));
        let back = d.decode();
        assert_eq!(
            back.iter().collect::<Vec<_>>(),
            src.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn byte_size_counts_codes_only() {
        let src = StringArray::from_strings(["aaaaaaaaaa", "bbbbbbbbbb", "aaaaaaaaaa"]);
        let d = DictionaryArray::encode(&src);
        assert_eq!(d.byte_size(), 3 * 4);
        assert_eq!(d.dict_byte_size(), d.values().byte_size());
        let nullable = DictionaryArray::encode(&StringArray::from_options([Some("x"), None]));
        assert_eq!(
            nullable.byte_size(),
            2 * 4 + nullable.validity().unwrap().byte_size()
        );
    }

    #[test]
    fn gather_shares_dictionary() {
        let d = DictionaryArray::encode(&StringArray::from_options([Some("x"), None, Some("y")]));
        let g = d.gather(&[2, 1, 0, 2]);
        assert!(Arc::ptr_eq(g.values(), d.values()));
        assert_eq!(
            g.iter().collect::<Vec<_>>(),
            vec![Some("y"), None, Some("x"), Some("y")]
        );
        let go = d.gather_opt(&[Some(0), None, Some(1)]);
        assert!(Arc::ptr_eq(go.values(), d.values()));
        assert_eq!(go.iter().collect::<Vec<_>>(), vec![Some("x"), None, None]);
    }

    #[test]
    fn concat_same_dictionary_is_codes_only() {
        let d = DictionaryArray::encode(&StringArray::from_strings(["p", "q", "p"]));
        let g = d.gather(&[2, 0]);
        let c = DictionaryArray::concat(&[&d, &g]);
        assert!(Arc::ptr_eq(c.values(), d.values()));
        assert_eq!(
            c.iter().collect::<Vec<_>>(),
            vec![Some("p"), Some("q"), Some("p"), Some("p"), Some("p")]
        );
    }

    #[test]
    fn concat_merges_distinct_dictionaries() {
        let a = DictionaryArray::encode(&StringArray::from_options([Some("x"), Some("y")]));
        let b = DictionaryArray::encode(&StringArray::from_options([Some("y"), None, Some("z")]));
        let c = DictionaryArray::concat(&[&a, &b]);
        assert_eq!(c.values().len(), 3);
        assert_eq!(
            c.iter().collect::<Vec<_>>(),
            vec![Some("x"), Some("y"), Some("y"), None, Some("z")]
        );
    }

    #[test]
    fn value_ranks_order_like_strings() {
        let d = DictionaryArray::encode(&StringArray::from_strings(["mango", "apple", "pear"]));
        let ranks = d.value_ranks();
        // apple < mango < pear.
        assert_eq!(ranks, vec![1, 0, 2]);
    }

    #[test]
    fn all_null_and_empty() {
        let d = DictionaryArray::encode(&StringArray::from_options::<_, &str>([None, None]));
        assert_eq!(d.values().len(), 0);
        assert_eq!(d.decode().iter().collect::<Vec<_>>(), vec![None, None]);
        let e = DictionaryArray::encode(&StringArray::from_strings::<[&str; 0], _>([]));
        assert_eq!(e.len(), 0);
        assert!(e.decode().is_empty());
    }
}
