//! Validity bitmaps and selection masks, packed 64 bits to a word.

use std::sync::Arc;

/// An immutable packed bitmap. Bit `i` set means "valid" (or "selected").
///
/// Cloning is cheap: the word buffer is shared.
#[derive(Debug, Clone)]
pub struct Bitmap {
    words: Arc<Vec<u64>>,
    len: usize,
}

impl Bitmap {
    /// A bitmap of `len` bits, all set.
    pub fn all_set(len: usize) -> Self {
        let mut words = vec![u64::MAX; len.div_ceil(64)];
        Self::mask_tail(&mut words, len);
        Self {
            words: Arc::new(words),
            len,
        }
    }

    /// A bitmap of `len` bits, all clear.
    pub fn all_clear(len: usize) -> Self {
        Self {
            words: Arc::new(vec![0; len.div_ceil(64)]),
            len,
        }
    }

    /// Build from an iterator of booleans.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(iter: impl IntoIterator<Item = bool>) -> Self {
        let mut words: Vec<u64> = Vec::new();
        let mut len = 0usize;
        for b in iter {
            if len.is_multiple_of(64) {
                words.push(0);
            }
            if b {
                *words.last_mut().expect("word pushed") |= 1u64 << (len % 64);
            }
            len += 1;
        }
        Self {
            words: Arc::new(words),
            len,
        }
    }

    fn mask_tail(words: &mut [u64], len: usize) {
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Value of bit `i`. Panics if out of bounds.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of bounds ({})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Bitwise AND of two equal-length bitmaps.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let words = self
            .words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| a & b)
            .collect();
        Bitmap {
            words: Arc::new(words),
            len: self.len,
        }
    }

    /// Bitwise OR of two equal-length bitmaps.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let words = self
            .words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| a | b)
            .collect();
        Bitmap {
            words: Arc::new(words),
            len: self.len,
        }
    }

    /// Bitwise NOT (within `len` bits).
    pub fn not(&self) -> Bitmap {
        let mut words: Vec<u64> = self.words.iter().map(|w| !w).collect();
        Self::mask_tail(&mut words, self.len);
        Bitmap {
            words: Arc::new(words),
            len: self.len,
        }
    }

    /// Indices of set bits, ascending.
    pub fn set_indices(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count_set());
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                out.push(wi * 64 + bit);
                w &= w - 1;
            }
        }
        out
    }

    /// Iterate bits as booleans.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Gather bits at `indices` into a new bitmap.
    pub fn gather(&self, indices: &[usize]) -> Bitmap {
        Bitmap::from_iter(indices.iter().map(|&i| self.get(i)))
    }

    /// Approximate heap size in bytes (the word buffer).
    pub fn byte_size(&self) -> usize {
        self.words.len() * 8
    }
}

impl PartialEq for Bitmap {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.words == other.words
    }
}
impl Eq for Bitmap {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn all_set_and_clear() {
        let s = Bitmap::all_set(70);
        assert_eq!(s.len(), 70);
        assert_eq!(s.count_set(), 70);
        assert!(s.get(69));
        let c = Bitmap::all_clear(70);
        assert_eq!(c.count_set(), 0);
        assert!(!c.get(0));
    }

    #[test]
    fn from_iter_round_trip() {
        let bits = [true, false, true, true, false];
        let b = Bitmap::from_iter(bits);
        assert_eq!(b.len(), 5);
        for (i, &expect) in bits.iter().enumerate() {
            assert_eq!(b.get(i), expect);
        }
        assert_eq!(b.set_indices(), vec![0, 2, 3]);
    }

    #[test]
    fn tail_bits_are_masked_after_not() {
        let b = Bitmap::all_clear(3).not();
        assert_eq!(b.count_set(), 3);
        // A second not returns to all-clear, proving the tail stayed clean.
        assert_eq!(b.not().count_set(), 0);
    }

    #[test]
    fn gather_reorders() {
        let b = Bitmap::from_iter([true, false, true]);
        let g = b.gather(&[2, 2, 1, 0]);
        assert_eq!(g.iter().collect::<Vec<_>>(), vec![true, true, false, true]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        Bitmap::all_set(8).get(8);
    }

    proptest! {
        #[test]
        fn prop_and_or_not_algebra(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
            let b = Bitmap::from_iter(bits.iter().copied());
            // Involution: !!b == b
            prop_assert_eq!(b.not().not(), b.clone());
            // b & b == b, b | b == b
            prop_assert_eq!(b.and(&b), b.clone());
            prop_assert_eq!(b.or(&b), b.clone());
            // b & !b == 0, b | !b == all-set
            prop_assert_eq!(b.and(&b.not()).count_set(), 0);
            prop_assert_eq!(b.or(&b.not()).count_set(), bits.len());
            // popcount consistency
            prop_assert_eq!(b.count_set(), bits.iter().filter(|x| **x).count());
            prop_assert_eq!(b.set_indices().len(), b.count_set());
        }

        #[test]
        fn prop_de_morgan(
            a in proptest::collection::vec(any::<bool>(), 0..200),
        ) {
            let n = a.len();
            let b: Vec<bool> = a.iter().map(|x| !x).collect();
            let ba = Bitmap::from_iter(a);
            let bb = Bitmap::from_iter(b);
            prop_assert_eq!(ba.and(&bb).not(), ba.not().or(&bb.not()));
            prop_assert_eq!(ba.or(&bb).not(), ba.not().and(&bb.not()));
            prop_assert_eq!(ba.len(), n);
        }
    }
}
