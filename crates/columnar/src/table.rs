//! Record-batch tables: a schema plus equal-length columns.

use crate::array::Array;
use crate::bitmap::Bitmap;
use crate::scalar::Scalar;
use crate::schema::Schema;
use crate::{ColumnarError, Result};
use std::sync::Arc;

/// An immutable table (one record batch). Cloning shares all buffers.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Arc<Schema>,
    columns: Vec<Array>,
    num_rows: usize,
}

impl Table {
    /// Build a table; panics if column lengths disagree with each other.
    pub fn new(schema: Schema, columns: Vec<Array>) -> Self {
        Self::try_new(schema, columns).expect("valid table")
    }

    /// Build a table, validating column count and lengths.
    pub fn try_new(schema: Schema, columns: Vec<Array>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(ColumnarError::LengthMismatch {
                expected: schema.len(),
                actual: columns.len(),
            });
        }
        let num_rows = columns.first().map(|c| c.len()).unwrap_or(0);
        for c in &columns {
            if c.len() != num_rows {
                return Err(ColumnarError::LengthMismatch {
                    expected: num_rows,
                    actual: c.len(),
                });
            }
        }
        Ok(Self {
            schema: Arc::new(schema),
            columns,
            num_rows,
        })
    }

    /// A zero-row table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns = schema
            .fields
            .iter()
            .map(|f| Array::from_scalars(&[], f.data_type))
            .collect();
        Self {
            schema: Arc::new(schema),
            columns,
            num_rows: 0,
        }
    }

    /// Rows in the table.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Columns in the table.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Shared schema handle.
    pub fn schema_arc(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// Column at index `i`.
    pub fn column(&self, i: usize) -> &Array {
        &self.columns[i]
    }

    /// All columns.
    pub fn columns(&self) -> &[Array] {
        &self.columns
    }

    /// Column by (possibly unqualified) name.
    pub fn column_by_name(&self, name: &str) -> Result<&Array> {
        let i = self
            .schema
            .index_of(name)
            .ok_or_else(|| ColumnarError::UnknownColumn(name.to_string()))?;
        Ok(&self.columns[i])
    }

    /// Total heap bytes across all columns (the size the buffer manager
    /// accounts when caching this table on a device).
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(|c| c.byte_size()).sum()
    }

    /// Row `i` as scalars (tests/pretty-printing).
    pub fn row(&self, i: usize) -> Vec<Scalar> {
        self.columns.iter().map(|c| c.scalar(i)).collect()
    }

    /// Gather rows at `indices` into a new table.
    pub fn gather(&self, indices: &[usize]) -> Table {
        let columns = self.columns.iter().map(|c| c.gather(indices)).collect();
        Table {
            schema: Arc::clone(&self.schema),
            columns,
            num_rows: indices.len(),
        }
    }

    /// Keep rows where `selection` is set.
    pub fn filter(&self, selection: &Bitmap) -> Table {
        self.gather(&selection.set_indices())
    }

    /// Contiguous row range `[offset, offset + len)`, clamped to the table.
    /// Morsel-driven executors chop cached tables into fixed-size chunks
    /// with this.
    pub fn slice(&self, offset: usize, len: usize) -> Table {
        let start = offset.min(self.num_rows);
        let end = start.saturating_add(len).min(self.num_rows);
        let indices: Vec<usize> = (start..end).collect();
        self.gather(&indices)
    }

    /// Project columns at `indices` (with the schema following).
    pub fn project(&self, indices: &[usize]) -> Table {
        let columns = indices.iter().map(|&i| self.columns[i].clone()).collect();
        Table {
            schema: Arc::new(self.schema.project(indices)),
            columns,
            num_rows: self.num_rows,
        }
    }

    /// Vertically concatenate same-schema tables (field names may differ;
    /// the first table's schema wins).
    pub fn concat(tables: &[&Table]) -> Table {
        assert!(!tables.is_empty(), "concat of zero tables");
        let schema = Arc::clone(&tables[0].schema);
        let ncols = tables[0].num_columns();
        let columns = (0..ncols)
            .map(|c| {
                let cols: Vec<&Array> = tables.iter().map(|t| t.column(c)).collect();
                Array::concat(&cols)
            })
            .collect();
        let num_rows = tables.iter().map(|t| t.num_rows()).sum();
        Table {
            schema,
            columns,
            num_rows,
        }
    }

    /// Horizontally stitch two equal-row-count tables (join output).
    pub fn hstack(&self, right: &Table) -> Table {
        assert_eq!(self.num_rows, right.num_rows, "hstack row-count mismatch");
        let mut columns = self.columns.clone();
        columns.extend(right.columns.iter().cloned());
        Table {
            schema: Arc::new(self.schema.join(&right.schema)),
            columns,
            num_rows: self.num_rows,
        }
    }

    /// True if any column is dictionary-encoded.
    pub fn has_dict_columns(&self) -> bool {
        self.columns.iter().any(|c| c.is_dict())
    }

    /// Total bytes of shared dictionaries behind encoded columns (0 for
    /// plain tables). Together with [`Table::byte_size`] this is what a
    /// fresh wire transfer of the table ships.
    pub fn dict_byte_size(&self) -> usize {
        self.columns.iter().map(|c| c.dict_byte_size()).sum()
    }

    /// Dictionary-encode every string column (no-op columns are shared).
    pub fn encode_strings(&self) -> Table {
        Table {
            schema: Arc::clone(&self.schema),
            columns: self.columns.iter().map(|c| c.dict_encode()).collect(),
            num_rows: self.num_rows,
        }
    }

    /// Decode every dictionary-encoded column to plain strings.
    pub fn decode_strings(&self) -> Table {
        Table {
            schema: Arc::clone(&self.schema),
            columns: self.columns.iter().map(|c| c.decoded()).collect(),
            num_rows: self.num_rows,
        }
    }

    /// Rows as scalar tuples, sorted — canonical form for unordered result
    /// comparison in tests.
    pub fn canonical_rows(&self) -> Vec<Vec<Scalar>> {
        let mut rows: Vec<Vec<Scalar>> = (0..self.num_rows).map(|i| self.row(i)).collect();
        rows.sort();
        rows
    }
}

impl PartialEq for Table {
    /// Tables are equal when schema types and all cell values match (field
    /// names are ignored: different engines qualify names differently).
    fn eq(&self, other: &Self) -> bool {
        if self.num_rows != other.num_rows || self.num_columns() != other.num_columns() {
            return false;
        }
        for (a, b) in self.schema.fields.iter().zip(other.schema.fields.iter()) {
            if a.data_type != b.data_type {
                return false;
            }
        }
        for i in 0..self.num_rows {
            for c in 0..self.columns.len() {
                if self.columns[c].scalar(i) != other.columns[c].scalar(i) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field};

    fn sample() -> Table {
        Table::new(
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("name", DataType::Utf8),
            ]),
            vec![
                Array::from_i64([1, 2, 3]),
                Array::from_strs(["a", "b", "c"]),
            ],
        )
    }

    #[test]
    fn construction_validates_lengths() {
        let bad = Table::try_new(
            Schema::new(vec![
                Field::new("x", DataType::Int64),
                Field::new("y", DataType::Int64),
            ]),
            vec![Array::from_i64([1]), Array::from_i64([1, 2])],
        );
        assert!(bad.is_err());
        let wrong_count =
            Table::try_new(Schema::new(vec![Field::new("x", DataType::Int64)]), vec![]);
        assert!(wrong_count.is_err());
    }

    #[test]
    fn gather_filter_project() {
        let t = sample();
        let g = t.gather(&[2, 0]);
        assert_eq!(g.row(0), vec![Scalar::Int64(3), Scalar::Utf8("c".into())]);
        let f = t.filter(&Bitmap::from_iter([false, true, false]));
        assert_eq!(f.num_rows(), 1);
        assert_eq!(f.column(1).utf8_value(0), Some("b"));
        let p = t.project(&[1]);
        assert_eq!(p.num_columns(), 1);
        assert_eq!(p.schema().fields[0].name, "name");
    }

    #[test]
    fn slice_clamps_and_chunks() {
        let t = sample();
        let s = t.slice(1, 2);
        assert_eq!(s.num_rows(), 2);
        assert_eq!(s.row(0), t.row(1));
        // Over-long and out-of-range slices clamp instead of panicking.
        assert_eq!(t.slice(2, 100).num_rows(), 1);
        assert_eq!(t.slice(5, 1).num_rows(), 0);
        assert_eq!(t.slice(0, usize::MAX).num_rows(), 3);
        // Slices of equal size reassemble into the original.
        let chunks: Vec<Table> = (0..3).map(|i| t.slice(i, 1)).collect();
        let refs: Vec<&Table> = chunks.iter().collect();
        assert_eq!(Table::concat(&refs), t);
    }

    #[test]
    fn concat_and_hstack() {
        let t = sample();
        let c = Table::concat(&[&t, &t]);
        assert_eq!(c.num_rows(), 6);
        assert_eq!(c.row(3), t.row(0));
        let h = t.hstack(&t.project(&[0]));
        assert_eq!(h.num_columns(), 3);
        assert_eq!(h.num_rows(), 3);
    }

    #[test]
    fn empty_table() {
        let t = Table::empty(Schema::new(vec![Field::new("x", DataType::Utf8)]));
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.num_columns(), 1);
        assert_eq!(t.byte_size(), t.column(0).byte_size());
    }

    #[test]
    fn equality_ignores_names_but_not_values() {
        let a = sample();
        let mut fields = a.schema().fields.clone();
        fields[0] = fields[0].renamed("other");
        let b = Table::new(Schema::new(fields), a.columns().to_vec());
        assert_eq!(a, b);
        let c = Table::new(
            a.schema().clone(),
            vec![
                Array::from_i64([1, 2, 4]),
                Array::from_strs(["a", "b", "c"]),
            ],
        );
        assert_ne!(a, c);
    }

    #[test]
    fn canonical_rows_sorts() {
        let t = Table::new(
            Schema::new(vec![Field::new("x", DataType::Int64)]),
            vec![Array::from_i64([3, 1, 2])],
        );
        let rows = t.canonical_rows();
        assert_eq!(
            rows,
            vec![
                vec![Scalar::Int64(1)],
                vec![Scalar::Int64(2)],
                vec![Scalar::Int64(3)]
            ]
        );
    }

    #[test]
    fn column_by_name_unqualified() {
        let t = Table::new(
            Schema::new(vec![Field::new("t.id", DataType::Int64)]),
            vec![Array::from_i64([7])],
        );
        assert_eq!(t.column_by_name("id").unwrap().i64_value(0), Some(7));
        assert!(t.column_by_name("nope").is_err());
    }
}
