//! Scalar values: single cells extracted from arrays, literals in
//! expressions, and group/sort keys. `Scalar` implements total ordering and
//! hashing (floats via `total_cmp`/bit patterns) so it can serve as a
//! hash-table key in group-by and join operators.

use crate::schema::DataType;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::hash::{Hash, Hasher};

/// A single dynamically-typed value. `Null` compares less than every
/// non-null value (matching the engines' `NULLS FIRST` default).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Scalar {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 32-bit integer.
    Int32(i32),
    /// 64-bit integer.
    Int64(i64),
    /// 64-bit float.
    Float64(f64),
    /// UTF-8 string.
    Utf8(String),
    /// Days since epoch.
    Date32(i32),
}

impl Scalar {
    /// Logical type of the value, `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Scalar::Null => None,
            Scalar::Bool(_) => Some(DataType::Bool),
            Scalar::Int32(_) => Some(DataType::Int32),
            Scalar::Int64(_) => Some(DataType::Int64),
            Scalar::Float64(_) => Some(DataType::Float64),
            Scalar::Utf8(_) => Some(DataType::Utf8),
            Scalar::Date32(_) => Some(DataType::Date32),
        }
    }

    /// True iff the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Scalar::Null)
    }

    /// Numeric view as f64 (ints widen; bools/strings/null are `None`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Scalar::Int32(v) | Scalar::Date32(v) => Some(*v as f64),
            Scalar::Int64(v) => Some(*v as f64),
            Scalar::Float64(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer view as i64 (i32/date widen; others `None`).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Scalar::Int32(v) | Scalar::Date32(v) => Some(*v as i64),
            Scalar::Int64(v) => Some(*v),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Scalar::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Scalar::Utf8(s) => Some(s),
            _ => None,
        }
    }

    /// Cast to a target type following SQL widening rules. Returns `None`
    /// for unsupported casts.
    pub fn cast(&self, to: DataType) -> Option<Scalar> {
        if self.is_null() {
            return Some(Scalar::Null);
        }
        Some(match (self, to) {
            (Scalar::Int32(v), DataType::Int32) => Scalar::Int32(*v),
            (Scalar::Int32(v), DataType::Int64) => Scalar::Int64(*v as i64),
            (Scalar::Int32(v), DataType::Float64) => Scalar::Float64(*v as f64),
            (Scalar::Int32(v), DataType::Date32) => Scalar::Date32(*v),
            (Scalar::Int64(v), DataType::Int64) => Scalar::Int64(*v),
            (Scalar::Int64(v), DataType::Int32) => Scalar::Int32(i32::try_from(*v).ok()?),
            (Scalar::Int64(v), DataType::Float64) => Scalar::Float64(*v as f64),
            (Scalar::Float64(v), DataType::Float64) => Scalar::Float64(*v),
            (Scalar::Float64(v), DataType::Int64) => Scalar::Int64(*v as i64),
            (Scalar::Date32(v), DataType::Date32) => Scalar::Date32(*v),
            (Scalar::Date32(v), DataType::Int32) => Scalar::Int32(*v),
            (Scalar::Date32(v), DataType::Int64) => Scalar::Int64(*v as i64),
            (Scalar::Utf8(s), DataType::Utf8) => Scalar::Utf8(s.clone()),
            (Scalar::Bool(b), DataType::Bool) => Scalar::Bool(*b),
            _ => return None,
        })
    }

    fn rank(&self) -> u8 {
        match self {
            Scalar::Null => 0,
            Scalar::Bool(_) => 1,
            Scalar::Int32(_) => 2,
            Scalar::Int64(_) => 3,
            Scalar::Float64(_) => 4,
            Scalar::Utf8(_) => 5,
            Scalar::Date32(_) => 6,
        }
    }
}

impl PartialEq for Scalar {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Scalar {}

impl PartialOrd for Scalar {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scalar {
    fn cmp(&self, other: &Self) -> Ordering {
        use Scalar::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Utf8(a), Utf8(b)) => a.cmp(b),
            (Date32(a), Date32(b)) => a.cmp(b),
            // Cross-numeric comparisons go through f64, exact for the
            // magnitudes the engines produce (< 2^53).
            (a, b) if a.as_f64().is_some() && b.as_f64().is_some() => {
                let (x, y) = (a.as_f64().expect("numeric"), b.as_f64().expect("numeric"));
                x.total_cmp(&y)
            }
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl Hash for Scalar {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Scalar::Null => state.write_u8(0),
            Scalar::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Int32/Int64/Date32 that compare equal must hash equal, so all
            // integers hash through i64; floats hash through bits.
            Scalar::Int32(v) => {
                state.write_u8(2);
                (*v as i64).hash(state);
            }
            Scalar::Int64(v) => {
                state.write_u8(2);
                v.hash(state);
            }
            Scalar::Date32(v) => {
                state.write_u8(6);
                v.hash(state);
            }
            Scalar::Float64(v) => {
                state.write_u8(4);
                v.to_bits().hash(state);
            }
            Scalar::Utf8(s) => {
                state.write_u8(5);
                s.hash(state);
            }
        }
    }
}

impl std::fmt::Display for Scalar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scalar::Null => f.write_str("NULL"),
            Scalar::Bool(b) => write!(f, "{b}"),
            Scalar::Int32(v) => write!(f, "{v}"),
            Scalar::Int64(v) => write!(f, "{v}"),
            Scalar::Float64(v) => write!(f, "{v:.4}"),
            Scalar::Utf8(s) => f.write_str(s),
            Scalar::Date32(d) => {
                let (y, m, day) = crate::scalar::date32_to_ymd(*d);
                write!(f, "{y:04}-{m:02}-{day:02}")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Date helpers (proleptic Gregorian; civil-days algorithm)
// ---------------------------------------------------------------------------

/// Days since 1970-01-01 for a calendar date.
pub fn ymd_to_date32(y: i32, m: u32, d: u32) -> i32 {
    // Howard Hinnant's days_from_civil.
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64;
    let mp = ((m as i64) + 9) % 12;
    let doy = (153 * mp + 2) / 5 + (d as i64) - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    (era as i64 * 146_097 + doe - 719_468) as i32
}

/// Calendar date for days since 1970-01-01.
pub fn date32_to_ymd(days: i32) -> (i32, u32, u32) {
    // Howard Hinnant's civil_from_days.
    let z = days as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

/// Extract the year of a date32 value.
pub fn date32_year(days: i32) -> i32 {
    date32_to_ymd(days).0
}

/// Add whole months to a date32, clamping the day to the target month's
/// length (SQL `date + interval 'n' month` semantics).
pub fn date32_add_months(days: i32, months: i32) -> i32 {
    let (y, m, d) = date32_to_ymd(days);
    let total = (y as i64) * 12 + (m as i64 - 1) + months as i64;
    let ny = (total.div_euclid(12)) as i32;
    let nm = (total.rem_euclid(12)) as u32 + 1;
    let max_day = days_in_month(ny, nm);
    ymd_to_date32(ny, nm, d.min(max_day))
}

fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (y % 4 == 0 && y % 100 != 0) || y % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => unreachable!("invalid month {m}"),
    }
}

/// Parse `YYYY-MM-DD` into date32; `None` on malformed input.
pub fn parse_date32(s: &str) -> Option<i32> {
    let mut parts = s.split('-');
    let y: i32 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let d: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || !(1..=12).contains(&m) || d < 1 || d > days_in_month(y, m) {
        return None;
    }
    Some(ymd_to_date32(y, m, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(s: &Scalar) -> u64 {
        let mut h = DefaultHasher::new();
        s.hash(&mut h);
        h.finish()
    }

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(ymd_to_date32(1970, 1, 1), 0);
        assert_eq!(date32_to_ymd(0), (1970, 1, 1));
    }

    #[test]
    fn known_tpch_dates() {
        // TPC-H date domain is 1992-01-01 .. 1998-12-31.
        let d = parse_date32("1994-01-01").unwrap();
        assert_eq!(date32_to_ymd(d), (1994, 1, 1));
        assert_eq!(date32_year(d), 1994);
        let later = parse_date32("1995-01-01").unwrap();
        assert_eq!(later - d, 365);
    }

    #[test]
    fn add_months_clamps_day() {
        let jan31 = parse_date32("1996-01-31").unwrap();
        let feb = date32_add_months(jan31, 1);
        assert_eq!(date32_to_ymd(feb), (1996, 2, 29)); // leap year
        let feb97 = date32_add_months(parse_date32("1997-01-31").unwrap(), 1);
        assert_eq!(date32_to_ymd(feb97), (1997, 2, 28));
    }

    #[test]
    fn add_months_crosses_years_backwards() {
        let d = parse_date32("1995-02-15").unwrap();
        assert_eq!(date32_to_ymd(date32_add_months(d, -3)), (1994, 11, 15));
        assert_eq!(date32_to_ymd(date32_add_months(d, 12)), (1996, 2, 15));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_date32("1994-13-01").is_none());
        assert!(parse_date32("1994-02-30").is_none());
        assert!(parse_date32("oops").is_none());
        assert!(parse_date32("1994-01-01-x").is_none());
    }

    #[test]
    fn null_sorts_first() {
        assert!(Scalar::Null < Scalar::Int64(i64::MIN));
        assert!(Scalar::Null < Scalar::Utf8(String::new()));
        assert_eq!(Scalar::Null, Scalar::Null);
    }

    #[test]
    fn cross_width_integers_compare_and_hash_consistently() {
        let a = Scalar::Int32(42);
        let b = Scalar::Int64(42);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        assert!(Scalar::Int32(1) < Scalar::Int64(2));
    }

    #[test]
    fn float_total_order() {
        assert!(Scalar::Float64(f64::NEG_INFINITY) < Scalar::Float64(0.0));
        assert_eq!(Scalar::Float64(1.5), Scalar::Float64(1.5));
        assert!(Scalar::Float64(1.0) < Scalar::Float64(f64::NAN));
    }

    #[test]
    fn casts() {
        assert_eq!(
            Scalar::Int32(7).cast(DataType::Int64),
            Some(Scalar::Int64(7))
        );
        assert_eq!(
            Scalar::Int64(7).cast(DataType::Float64),
            Some(Scalar::Float64(7.0))
        );
        assert_eq!(Scalar::Utf8("x".into()).cast(DataType::Int32), None);
        assert_eq!(Scalar::Null.cast(DataType::Int32), Some(Scalar::Null));
        assert_eq!(
            Scalar::Int64(i64::MAX).cast(DataType::Int32),
            None,
            "overflowing narrow cast must fail"
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Scalar::Date32(0).to_string(), "1970-01-01");
        assert_eq!(Scalar::Null.to_string(), "NULL");
        assert_eq!(Scalar::Int64(5).to_string(), "5");
    }
}
