//! Typed arrays and the dynamically-typed [`Array`] enum.

use crate::bitmap::Bitmap;
use crate::dict_array::DictionaryArray;
use crate::scalar::Scalar;
use crate::schema::DataType;
use crate::string_array::StringArray;
use crate::{ColumnarError, Result};
use std::sync::Arc;

/// Immutable fixed-width array over a shared buffer.
#[derive(Debug, Clone)]
pub struct PrimitiveArray<T: Copy> {
    values: Arc<Vec<T>>,
    validity: Option<Bitmap>,
}

impl<T: Copy> PrimitiveArray<T> {
    /// Build from values, all valid.
    pub fn from_values(values: Vec<T>) -> Self {
        Self {
            values: Arc::new(values),
            validity: None,
        }
    }

    /// Build from optional values (None ⇒ null); null slots hold `fill`.
    pub fn from_options(values: impl IntoIterator<Item = Option<T>>, fill: T) -> Self {
        let mut vals = Vec::new();
        let mut bits = Vec::new();
        for v in values {
            match v {
                Some(v) => {
                    vals.push(v);
                    bits.push(true);
                }
                None => {
                    vals.push(fill);
                    bits.push(false);
                }
            }
        }
        let validity = if bits.iter().all(|b| *b) {
            None
        } else {
            Some(Bitmap::from_iter(bits))
        };
        Self {
            values: Arc::new(vals),
            validity,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// True if element `i` is non-null.
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.as_ref().map(|v| v.get(i)).unwrap_or(true)
    }

    /// Element `i`, `None` if null.
    pub fn value(&self, i: usize) -> Option<T> {
        if self.is_valid(i) {
            Some(self.values[i])
        } else {
            None
        }
    }

    /// Raw value slice (null slots contain fill values; check validity).
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// The validity bitmap, if any nulls.
    pub fn validity(&self) -> Option<&Bitmap> {
        self.validity.as_ref()
    }

    /// Gather elements at `indices`.
    pub fn gather(&self, indices: &[usize]) -> PrimitiveArray<T> {
        let values: Vec<T> = indices.iter().map(|&i| self.values[i]).collect();
        let validity = self
            .validity
            .as_ref()
            .map(|v| v.gather(indices))
            .filter(|v| v.count_set() < v.len());
        PrimitiveArray {
            values: Arc::new(values),
            validity,
        }
    }

    /// Iterate as `Option<T>`.
    pub fn iter(&self) -> impl Iterator<Item = Option<T>> + '_ {
        (0..self.len()).map(move |i| self.value(i))
    }

    /// Heap bytes held.
    pub fn byte_size(&self) -> usize {
        self.values.len() * std::mem::size_of::<T>()
            + self.validity.as_ref().map(|v| v.byte_size()).unwrap_or(0)
    }

    /// Concatenate arrays.
    pub fn concat(arrays: &[&PrimitiveArray<T>]) -> PrimitiveArray<T> {
        let mut values = Vec::with_capacity(arrays.iter().map(|a| a.len()).sum());
        let any_null = arrays.iter().any(|a| a.validity.is_some());
        let mut bits = Vec::new();
        for a in arrays {
            values.extend_from_slice(&a.values);
            if any_null {
                bits.extend((0..a.len()).map(|i| a.is_valid(i)));
            }
        }
        PrimitiveArray {
            values: Arc::new(values),
            validity: if any_null {
                Some(Bitmap::from_iter(bits))
            } else {
                None
            },
        }
    }
}

/// Immutable boolean array (byte-per-value storage plus validity bitmap;
/// selection vectors use [`Bitmap`] directly, this type is for column data).
#[derive(Debug, Clone)]
pub struct BoolArray {
    values: Bitmap,
    validity: Option<Bitmap>,
}

impl BoolArray {
    /// Build from booleans, all valid.
    pub fn from_values(values: impl IntoIterator<Item = bool>) -> Self {
        Self {
            values: Bitmap::from_iter(values),
            validity: None,
        }
    }

    /// Build from optional booleans.
    pub fn from_options(values: impl IntoIterator<Item = Option<bool>>) -> Self {
        let mut vals = Vec::new();
        let mut bits = Vec::new();
        for v in values {
            vals.push(v.unwrap_or(false));
            bits.push(v.is_some());
        }
        let validity = if bits.iter().all(|b| *b) {
            None
        } else {
            Some(Bitmap::from_iter(bits))
        };
        Self {
            values: Bitmap::from_iter(vals),
            validity,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// True if element `i` is non-null.
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.as_ref().map(|v| v.get(i)).unwrap_or(true)
    }

    /// Element `i`, `None` if null.
    pub fn value(&self, i: usize) -> Option<bool> {
        if self.is_valid(i) {
            Some(self.values.get(i))
        } else {
            None
        }
    }

    /// Selection view: true where value is true AND valid (SQL WHERE
    /// semantics: null predicate results do not select).
    pub fn to_selection(&self) -> Bitmap {
        match &self.validity {
            Some(v) => self.values.and(v),
            None => self.values.clone(),
        }
    }

    /// Gather elements at `indices`.
    pub fn gather(&self, indices: &[usize]) -> BoolArray {
        BoolArray::from_options(indices.iter().map(|&i| self.value(i)))
    }

    /// Heap bytes held.
    pub fn byte_size(&self) -> usize {
        self.values.byte_size() + self.validity.as_ref().map(|v| v.byte_size()).unwrap_or(0)
    }

    /// Concatenate arrays.
    pub fn concat(arrays: &[&BoolArray]) -> BoolArray {
        BoolArray::from_options(
            arrays
                .iter()
                .flat_map(|a| (0..a.len()).map(move |i| a.value(i))),
        )
    }
}

/// A dynamically-typed immutable column. Cloning shares buffers (zero-copy).
#[derive(Debug, Clone)]
pub enum Array {
    /// Boolean column.
    Bool(BoolArray),
    /// 32-bit integer column.
    Int32(PrimitiveArray<i32>),
    /// 64-bit integer column.
    Int64(PrimitiveArray<i64>),
    /// 64-bit float column.
    Float64(PrimitiveArray<f64>),
    /// UTF-8 string column.
    Utf8(StringArray),
    /// Dictionary-encoded UTF-8 string column (logical type is still
    /// [`DataType::Utf8`]; the encoding is a physical-layer detail).
    Dict(DictionaryArray),
    /// Date column (days since epoch).
    Date32(PrimitiveArray<i32>),
}

impl Array {
    // -- constructors -------------------------------------------------------

    /// Int32 column from values.
    pub fn from_i32(values: impl IntoIterator<Item = i32>) -> Array {
        Array::Int32(PrimitiveArray::from_values(values.into_iter().collect()))
    }

    /// Int64 column from values.
    pub fn from_i64(values: impl IntoIterator<Item = i64>) -> Array {
        Array::Int64(PrimitiveArray::from_values(values.into_iter().collect()))
    }

    /// Float64 column from values.
    pub fn from_f64(values: impl IntoIterator<Item = f64>) -> Array {
        Array::Float64(PrimitiveArray::from_values(values.into_iter().collect()))
    }

    /// Bool column from values.
    pub fn from_bool(values: impl IntoIterator<Item = bool>) -> Array {
        Array::Bool(BoolArray::from_values(values))
    }

    /// String column from values.
    pub fn from_strs<I, S>(values: I) -> Array
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        Array::Utf8(StringArray::from_strings(values))
    }

    /// Date column from day counts.
    pub fn from_date32(values: impl IntoIterator<Item = i32>) -> Array {
        Array::Date32(PrimitiveArray::from_values(values.into_iter().collect()))
    }

    /// Build a column of `len` copies of `scalar` with the given type
    /// (used for literal columns and null padding in outer joins).
    pub fn from_scalar(scalar: &Scalar, data_type: DataType, len: usize) -> Array {
        match data_type {
            DataType::Bool => Array::Bool(BoolArray::from_options(std::iter::repeat_n(
                scalar.as_bool(),
                len,
            ))),
            DataType::Int32 => Array::Int32(PrimitiveArray::from_options(
                std::iter::repeat_n(scalar.as_i64().map(|v| v as i32), len),
                0,
            )),
            DataType::Int64 => Array::Int64(PrimitiveArray::from_options(
                std::iter::repeat_n(scalar.as_i64(), len),
                0,
            )),
            DataType::Float64 => Array::Float64(PrimitiveArray::from_options(
                std::iter::repeat_n(scalar.as_f64(), len),
                0.0,
            )),
            DataType::Utf8 => Array::Utf8(StringArray::from_options(std::iter::repeat_n(
                scalar.as_str(),
                len,
            ))),
            DataType::Date32 => Array::Date32(PrimitiveArray::from_options(
                std::iter::repeat_n(scalar.as_i64().map(|v| v as i32), len),
                0,
            )),
        }
    }

    /// Build a column from scalars of uniform type.
    pub fn from_scalars(scalars: &[Scalar], data_type: DataType) -> Array {
        match data_type {
            DataType::Bool => {
                Array::Bool(BoolArray::from_options(scalars.iter().map(|s| s.as_bool())))
            }
            DataType::Int32 => Array::Int32(PrimitiveArray::from_options(
                scalars.iter().map(|s| s.as_i64().map(|v| v as i32)),
                0,
            )),
            DataType::Int64 => Array::Int64(PrimitiveArray::from_options(
                scalars.iter().map(|s| s.as_i64()),
                0,
            )),
            DataType::Float64 => Array::Float64(PrimitiveArray::from_options(
                scalars.iter().map(|s| s.as_f64()),
                0.0,
            )),
            DataType::Utf8 => Array::Utf8(StringArray::from_options(
                scalars.iter().map(|s| s.as_str()),
            )),
            DataType::Date32 => Array::Date32(PrimitiveArray::from_options(
                scalars.iter().map(|s| s.as_i64().map(|v| v as i32)),
                0,
            )),
        }
    }

    // -- metadata ------------------------------------------------------------

    /// Logical type of the column. Dictionary-encoded strings report
    /// [`DataType::Utf8`]: the encoding is invisible to schemas and plans.
    pub fn data_type(&self) -> DataType {
        match self {
            Array::Bool(_) => DataType::Bool,
            Array::Int32(_) => DataType::Int32,
            Array::Int64(_) => DataType::Int64,
            Array::Float64(_) => DataType::Float64,
            Array::Utf8(_) | Array::Dict(_) => DataType::Utf8,
            Array::Date32(_) => DataType::Date32,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            Array::Bool(a) => a.len(),
            Array::Int32(a) | Array::Date32(a) => a.len(),
            Array::Int64(a) => a.len(),
            Array::Float64(a) => a.len(),
            Array::Utf8(a) => a.len(),
            Array::Dict(a) => a.len(),
        }
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if element `i` is non-null.
    pub fn is_valid(&self, i: usize) -> bool {
        match self {
            Array::Bool(a) => a.is_valid(i),
            Array::Int32(a) | Array::Date32(a) => a.is_valid(i),
            Array::Int64(a) => a.is_valid(i),
            Array::Float64(a) => a.is_valid(i),
            Array::Utf8(a) => a.is_valid(i),
            Array::Dict(a) => a.is_valid(i),
        }
    }

    /// Number of null elements.
    pub fn null_count(&self) -> usize {
        (0..self.len()).filter(|&i| !self.is_valid(i)).count()
    }

    /// Heap bytes held by this column's buffers. For dictionary-encoded
    /// columns this is the moved representation — codes plus validity —
    /// excluding the shared dictionary (see [`DictionaryArray::byte_size`]).
    pub fn byte_size(&self) -> usize {
        match self {
            Array::Bool(a) => a.byte_size(),
            Array::Int32(a) | Array::Date32(a) => a.byte_size(),
            Array::Int64(a) => a.byte_size(),
            Array::Float64(a) => a.byte_size(),
            Array::Utf8(a) => a.byte_size(),
            Array::Dict(a) => a.byte_size(),
        }
    }

    /// Bytes of the shared dictionary behind this column (0 unless
    /// dictionary-encoded). Charged only by operators that genuinely read
    /// payload bytes, and by the wire the first time a dictionary ships.
    pub fn dict_byte_size(&self) -> usize {
        match self {
            Array::Dict(a) => a.dict_byte_size(),
            _ => 0,
        }
    }

    // -- element access ------------------------------------------------------

    /// Element `i` as a [`Scalar`] (`Scalar::Null` for nulls).
    pub fn scalar(&self, i: usize) -> Scalar {
        match self {
            Array::Bool(a) => a.value(i).map(Scalar::Bool).unwrap_or(Scalar::Null),
            Array::Int32(a) => a.value(i).map(Scalar::Int32).unwrap_or(Scalar::Null),
            Array::Int64(a) => a.value(i).map(Scalar::Int64).unwrap_or(Scalar::Null),
            Array::Float64(a) => a.value(i).map(Scalar::Float64).unwrap_or(Scalar::Null),
            Array::Utf8(a) => a
                .value(i)
                .map(|s| Scalar::Utf8(s.to_string()))
                .unwrap_or(Scalar::Null),
            Array::Dict(a) => a
                .value(i)
                .map(|s| Scalar::Utf8(s.to_string()))
                .unwrap_or(Scalar::Null),
            Array::Date32(a) => a.value(i).map(Scalar::Date32).unwrap_or(Scalar::Null),
        }
    }

    /// String value at `i` (convenience for tests), `None` if not a string
    /// column or null. Transparent over dictionary encoding.
    pub fn utf8_value(&self, i: usize) -> Option<&str> {
        match self {
            Array::Utf8(a) => a.value(i),
            Array::Dict(a) => a.value(i),
            _ => None,
        }
    }

    /// i64 view of element `i` for integer/date columns.
    pub fn i64_value(&self, i: usize) -> Option<i64> {
        match self {
            Array::Int32(a) | Array::Date32(a) => a.value(i).map(|v| v as i64),
            Array::Int64(a) => a.value(i),
            _ => None,
        }
    }

    /// f64 view of element `i` for numeric columns.
    pub fn f64_value(&self, i: usize) -> Option<f64> {
        match self {
            Array::Int32(a) | Array::Date32(a) => a.value(i).map(|v| v as f64),
            Array::Int64(a) => a.value(i).map(|v| v as f64),
            Array::Float64(a) => a.value(i),
            _ => None,
        }
    }

    // -- typed views ---------------------------------------------------------

    /// Borrow as i64 array.
    pub fn as_i64(&self) -> Result<&PrimitiveArray<i64>> {
        match self {
            Array::Int64(a) => Ok(a),
            other => Err(ColumnarError::TypeMismatch {
                expected: "i64".into(),
                actual: other.data_type().to_string(),
            }),
        }
    }

    /// Borrow as i32/date32 array.
    pub fn as_i32(&self) -> Result<&PrimitiveArray<i32>> {
        match self {
            Array::Int32(a) | Array::Date32(a) => Ok(a),
            other => Err(ColumnarError::TypeMismatch {
                expected: "i32".into(),
                actual: other.data_type().to_string(),
            }),
        }
    }

    /// Borrow as f64 array.
    pub fn as_f64(&self) -> Result<&PrimitiveArray<f64>> {
        match self {
            Array::Float64(a) => Ok(a),
            other => Err(ColumnarError::TypeMismatch {
                expected: "f64".into(),
                actual: other.data_type().to_string(),
            }),
        }
    }

    /// Borrow as a decoded string array. Errs on dictionary-encoded
    /// columns — call [`Array::decoded`] first if payload bytes are needed.
    pub fn as_utf8(&self) -> Result<&StringArray> {
        match self {
            Array::Utf8(a) => Ok(a),
            Array::Dict(_) => Err(ColumnarError::TypeMismatch {
                expected: "decoded utf8".into(),
                actual: "dictionary-encoded utf8".into(),
            }),
            other => Err(ColumnarError::TypeMismatch {
                expected: "utf8".into(),
                actual: other.data_type().to_string(),
            }),
        }
    }

    /// Borrow as a dictionary-encoded string array.
    pub fn as_dict(&self) -> Result<&DictionaryArray> {
        match self {
            Array::Dict(a) => Ok(a),
            other => Err(ColumnarError::TypeMismatch {
                expected: "dictionary-encoded utf8".into(),
                actual: other.data_type().to_string(),
            }),
        }
    }

    /// True if this column is dictionary-encoded.
    pub fn is_dict(&self) -> bool {
        matches!(self, Array::Dict(_))
    }

    /// Dictionary-encode string columns (no-op for non-strings and
    /// already-encoded columns; clones share buffers).
    pub fn dict_encode(&self) -> Array {
        match self {
            Array::Utf8(a) => Array::Dict(DictionaryArray::encode(a)),
            other => other.clone(),
        }
    }

    /// Decode dictionary-encoded columns to plain strings (no-op
    /// otherwise; clones share buffers).
    pub fn decoded(&self) -> Array {
        match self {
            Array::Dict(a) => Array::Utf8(a.decode()),
            other => other.clone(),
        }
    }

    /// Borrow as bool array.
    pub fn as_bool(&self) -> Result<&BoolArray> {
        match self {
            Array::Bool(a) => Ok(a),
            other => Err(ColumnarError::TypeMismatch {
                expected: "bool".into(),
                actual: other.data_type().to_string(),
            }),
        }
    }

    // -- data movement -------------------------------------------------------

    /// Gather elements at `indices` into a new column. Dictionary-encoded
    /// columns gather codes only; the dictionary stays shared.
    pub fn gather(&self, indices: &[usize]) -> Array {
        match self {
            Array::Bool(a) => Array::Bool(a.gather(indices)),
            Array::Int32(a) => Array::Int32(a.gather(indices)),
            Array::Int64(a) => Array::Int64(a.gather(indices)),
            Array::Float64(a) => Array::Float64(a.gather(indices)),
            Array::Utf8(a) => Array::Utf8(a.gather(indices)),
            Array::Dict(a) => Array::Dict(a.gather(indices)),
            Array::Date32(a) => Array::Date32(a.gather(indices)),
        }
    }

    /// Gather with optional indices: `None` produces a null (outer joins).
    pub fn gather_opt(&self, indices: &[Option<usize>]) -> Array {
        match self {
            Array::Utf8(a) => Array::Utf8(a.gather_opt(indices)),
            Array::Dict(a) => Array::Dict(a.gather_opt(indices)),
            _ => {
                let scalars: Vec<Scalar> = indices
                    .iter()
                    .map(|ix| ix.map(|i| self.scalar(i)).unwrap_or(Scalar::Null))
                    .collect();
                Array::from_scalars(&scalars, self.data_type())
            }
        }
    }

    /// Keep elements where `selection` is set.
    pub fn filter(&self, selection: &Bitmap) -> Array {
        assert_eq!(selection.len(), self.len(), "selection length mismatch");
        self.gather(&selection.set_indices())
    }

    /// Concatenate same-typed columns. Panics on type mismatch.
    pub fn concat(arrays: &[&Array]) -> Array {
        assert!(!arrays.is_empty(), "concat of zero arrays");
        match arrays[0] {
            Array::Bool(_) => Array::Bool(BoolArray::concat(
                &arrays
                    .iter()
                    .map(|a| a.as_bool().expect("bool"))
                    .collect::<Vec<_>>(),
            )),
            Array::Int32(_) => Array::Int32(PrimitiveArray::concat(
                &arrays
                    .iter()
                    .map(|a| a.as_i32().expect("i32"))
                    .collect::<Vec<_>>(),
            )),
            Array::Date32(_) => Array::Date32(PrimitiveArray::concat(
                &arrays
                    .iter()
                    .map(|a| a.as_i32().expect("date32"))
                    .collect::<Vec<_>>(),
            )),
            Array::Int64(_) => Array::Int64(PrimitiveArray::concat(
                &arrays
                    .iter()
                    .map(|a| a.as_i64().expect("i64"))
                    .collect::<Vec<_>>(),
            )),
            Array::Float64(_) => Array::Float64(PrimitiveArray::concat(
                &arrays
                    .iter()
                    .map(|a| a.as_f64().expect("f64"))
                    .collect::<Vec<_>>(),
            )),
            Array::Utf8(_) | Array::Dict(_) => Array::concat_strings(arrays),
        }
    }

    /// Concatenate string columns that may mix plain and dictionary-encoded
    /// inputs. All-encoded inputs stay encoded (codes-only when they share
    /// one dictionary); any plain input forces a decoded bulk concat.
    fn concat_strings(arrays: &[&Array]) -> Array {
        if arrays.iter().all(|a| a.is_dict()) {
            let dicts: Vec<&DictionaryArray> =
                arrays.iter().map(|a| a.as_dict().expect("dict")).collect();
            return Array::Dict(DictionaryArray::concat(&dicts));
        }
        // Mixed or all-plain: decode encoded inputs, then bulk concat.
        let decoded: Vec<StringArray> = arrays
            .iter()
            .filter_map(|a| match a {
                Array::Dict(d) => Some(d.decode()),
                _ => None,
            })
            .collect();
        let mut di = 0;
        let parts: Vec<&StringArray> = arrays
            .iter()
            .map(|a| match a {
                Array::Utf8(s) => s,
                Array::Dict(_) => {
                    let s = &decoded[di];
                    di += 1;
                    s
                }
                _ => panic!("concat_strings on non-string column"),
            })
            .collect();
        Array::Utf8(StringArray::concat(&parts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_and_access() {
        let a = Array::from_i64([10, 20, 30]);
        assert_eq!(a.len(), 3);
        assert_eq!(a.data_type(), DataType::Int64);
        assert_eq!(a.scalar(1), Scalar::Int64(20));
        assert_eq!(a.i64_value(2), Some(30));
        assert_eq!(a.f64_value(0), Some(10.0));
        assert_eq!(a.null_count(), 0);
    }

    #[test]
    fn nullable_primitive() {
        let a = Array::Int64(PrimitiveArray::from_options([Some(1), None, Some(3)], 0));
        assert_eq!(a.null_count(), 1);
        assert_eq!(a.scalar(1), Scalar::Null);
        assert!(!a.is_valid(1));
    }

    #[test]
    fn gather_and_filter() {
        let a = Array::from_i32([5, 6, 7, 8]);
        let g = a.gather(&[3, 0]);
        assert_eq!(g.i64_value(0), Some(8));
        assert_eq!(g.i64_value(1), Some(5));
        let sel = Bitmap::from_iter([true, false, true, false]);
        let f = a.filter(&sel);
        assert_eq!(f.len(), 2);
        assert_eq!(f.i64_value(1), Some(7));
    }

    #[test]
    fn gather_opt_produces_nulls() {
        let a = Array::from_strs(["x", "y"]);
        let g = a.gather_opt(&[Some(1), None, Some(0)]);
        assert_eq!(g.utf8_value(0), Some("y"));
        assert_eq!(g.scalar(1), Scalar::Null);
        assert_eq!(g.utf8_value(2), Some("x"));
        assert_eq!(g.null_count(), 1);
    }

    #[test]
    fn from_scalar_null_padding() {
        let a = Array::from_scalar(&Scalar::Null, DataType::Int64, 4);
        assert_eq!(a.len(), 4);
        assert_eq!(a.null_count(), 4);
        let b = Array::from_scalar(&Scalar::Int64(9), DataType::Int64, 2);
        assert_eq!(b.i64_value(1), Some(9));
    }

    #[test]
    fn concat_mixed_nullability() {
        let a = Array::from_i64([1]);
        let b = Array::Int64(PrimitiveArray::from_options([None, Some(2)], 0));
        let c = Array::concat(&[&a, &b]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.scalar(1), Scalar::Null);
        assert_eq!(c.i64_value(2), Some(2));
    }

    #[test]
    fn typed_view_errors() {
        let a = Array::from_bool([true]);
        assert!(a.as_i64().is_err());
        assert!(a.as_bool().is_ok());
    }

    #[test]
    fn bool_selection_treats_null_as_false() {
        let a = BoolArray::from_options([Some(true), None, Some(false), Some(true)]);
        let sel = a.to_selection();
        assert_eq!(sel.set_indices(), vec![0, 3]);
    }

    proptest! {
        #[test]
        fn prop_gather_matches_scalar_access(
            values in proptest::collection::vec(any::<i64>(), 1..80),
            idx_seed in proptest::collection::vec(any::<usize>(), 0..80),
        ) {
            let a = Array::from_i64(values.clone());
            let indices: Vec<usize> = idx_seed.iter().map(|i| i % values.len()).collect();
            let g = a.gather(&indices);
            prop_assert_eq!(g.len(), indices.len());
            for (out_i, &src_i) in indices.iter().enumerate() {
                prop_assert_eq!(g.i64_value(out_i), Some(values[src_i]));
            }
        }

        #[test]
        fn prop_filter_preserves_order(
            values in proptest::collection::vec(any::<i32>(), 0..100),
            mask_seed in any::<u64>(),
        ) {
            let mask: Vec<bool> = (0..values.len())
                .map(|i| (mask_seed >> (i % 64)) & 1 == 1)
                .collect();
            let a = Array::from_i32(values.clone());
            let f = a.filter(&Bitmap::from_iter(mask.iter().copied()));
            let expected: Vec<i32> = values
                .iter()
                .zip(mask.iter())
                .filter(|(_, m)| **m)
                .map(|(v, _)| *v)
                .collect();
            prop_assert_eq!(f.len(), expected.len());
            for (i, e) in expected.iter().enumerate() {
                prop_assert_eq!(f.i64_value(i), Some(*e as i64));
            }
        }
    }
}
