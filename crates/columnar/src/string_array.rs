//! Arrow-layout UTF-8 string arrays: an `i32` offset buffer plus a byte
//! buffer, both reference-counted for zero-copy sharing.

use crate::bitmap::Bitmap;
use std::sync::Arc;

/// Immutable UTF-8 string array.
#[derive(Debug, Clone)]
pub struct StringArray {
    offsets: Arc<Vec<i32>>,
    data: Arc<Vec<u8>>,
    validity: Option<Bitmap>,
}

impl StringArray {
    /// Build from owned strings (all valid).
    pub fn from_strings<I, S>(iter: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut offsets = vec![0i32];
        let mut data = Vec::new();
        for s in iter {
            data.extend_from_slice(s.as_ref().as_bytes());
            offsets.push(i32::try_from(data.len()).expect("string buffer < 2 GiB"));
        }
        Self {
            offsets: Arc::new(offsets),
            data: Arc::new(data),
            validity: None,
        }
    }

    /// Build from optional strings (None ⇒ null).
    pub fn from_options<I, S>(iter: I) -> Self
    where
        I: IntoIterator<Item = Option<S>>,
        S: AsRef<str>,
    {
        let mut offsets = vec![0i32];
        let mut data = Vec::new();
        let mut bits = Vec::new();
        for s in iter {
            match s {
                Some(s) => {
                    data.extend_from_slice(s.as_ref().as_bytes());
                    bits.push(true);
                }
                None => bits.push(false),
            }
            offsets.push(i32::try_from(data.len()).expect("string buffer < 2 GiB"));
        }
        let validity = if bits.iter().all(|b| *b) {
            None
        } else {
            Some(Bitmap::from_iter(bits))
        };
        Self {
            offsets: Arc::new(offsets),
            data: Arc::new(data),
            validity,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if element `i` is non-null.
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.as_ref().map(|v| v.get(i)).unwrap_or(true)
    }

    /// Element `i` as `&str`, `None` if null.
    pub fn value(&self, i: usize) -> Option<&str> {
        if !self.is_valid(i) {
            return None;
        }
        let start = self.offsets[i] as usize;
        let end = self.offsets[i + 1] as usize;
        // SAFETY-free: buffers were built from &str, so always valid UTF-8.
        Some(std::str::from_utf8(&self.data[start..end]).expect("valid utf8"))
    }

    /// The validity bitmap, if any element is null.
    pub fn validity(&self) -> Option<&Bitmap> {
        self.validity.as_ref()
    }

    /// Gather elements at `indices` into a new array.
    pub fn gather(&self, indices: &[usize]) -> StringArray {
        StringArray::from_options(indices.iter().map(|&i| self.value(i)))
    }

    /// Iterate elements as `Option<&str>`.
    pub fn iter(&self) -> impl Iterator<Item = Option<&str>> + '_ {
        (0..self.len()).map(move |i| self.value(i))
    }

    /// Heap bytes held (offsets + payload + validity).
    pub fn byte_size(&self) -> usize {
        self.offsets.len() * 4
            + self.data.len()
            + self.validity.as_ref().map(|v| v.byte_size()).unwrap_or(0)
    }

    /// Concatenate several arrays.
    pub fn concat(arrays: &[&StringArray]) -> StringArray {
        StringArray::from_options(arrays.iter().flat_map(|a| a.iter()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip() {
        let a = StringArray::from_strings(["a", "", "hello", "naïve"]);
        assert_eq!(a.len(), 4);
        assert_eq!(a.value(0), Some("a"));
        assert_eq!(a.value(1), Some(""));
        assert_eq!(a.value(3), Some("naïve"));
        assert!(a.validity().is_none());
    }

    #[test]
    fn nulls() {
        let a = StringArray::from_options([Some("x"), None, Some("y")]);
        assert!(a.is_valid(0));
        assert!(!a.is_valid(1));
        assert_eq!(a.value(1), None);
        assert_eq!(a.value(2), Some("y"));
        assert!(a.validity().is_some());
    }

    #[test]
    fn gather_with_nulls() {
        let a = StringArray::from_options([Some("x"), None, Some("y")]);
        let g = a.gather(&[2, 1, 0, 0]);
        assert_eq!(
            g.iter().collect::<Vec<_>>(),
            vec![Some("y"), None, Some("x"), Some("x")]
        );
    }

    #[test]
    fn concat_preserves_order_and_nulls() {
        let a = StringArray::from_strings(["a"]);
        let b = StringArray::from_options([None, Some("b")]);
        let c = StringArray::concat(&[&a, &b]);
        assert_eq!(
            c.iter().collect::<Vec<_>>(),
            vec![Some("a"), None, Some("b")]
        );
    }

    #[test]
    fn clone_is_zero_copy() {
        let a = StringArray::from_strings(vec!["payload"; 1000]);
        let before = a.byte_size();
        let b = a.clone();
        // Shared buffers: same reported size, same pointers.
        assert_eq!(b.byte_size(), before);
        assert!(Arc::ptr_eq(&a.data, &b.data));
    }

    proptest! {
        #[test]
        fn prop_round_trip(strings in proptest::collection::vec(".{0,12}", 0..50)) {
            let a = StringArray::from_strings(&strings);
            prop_assert_eq!(a.len(), strings.len());
            for (i, s) in strings.iter().enumerate() {
                prop_assert_eq!(a.value(i), Some(s.as_str()));
            }
        }
    }
}
