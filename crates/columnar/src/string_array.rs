//! Arrow-layout UTF-8 string arrays: an `i32` offset buffer plus a byte
//! buffer, both reference-counted for zero-copy sharing.

use crate::bitmap::Bitmap;
use std::sync::Arc;

/// Immutable UTF-8 string array.
#[derive(Debug, Clone)]
pub struct StringArray {
    offsets: Arc<Vec<i32>>,
    data: Arc<Vec<u8>>,
    validity: Option<Bitmap>,
}

/// Test-only instrumentation counting per-value UTF-8 decodes, so
/// regression tests can prove bulk paths never touch `value()`.
#[cfg(test)]
pub(crate) mod instrument {
    use std::cell::Cell;

    thread_local! {
        static UTF8_DECODES: Cell<usize> = const { Cell::new(0) };
    }

    pub(crate) fn note_decode() {
        UTF8_DECODES.with(|c| c.set(c.get() + 1));
    }

    pub(crate) fn reset() {
        UTF8_DECODES.with(|c| c.set(0));
    }

    pub(crate) fn decodes() -> usize {
        UTF8_DECODES.with(|c| c.get())
    }
}

impl StringArray {
    /// Build from owned strings (all valid).
    pub fn from_strings<I, S>(iter: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut offsets = vec![0i32];
        let mut data = Vec::new();
        for s in iter {
            data.extend_from_slice(s.as_ref().as_bytes());
            offsets.push(i32::try_from(data.len()).expect("string buffer < 2 GiB"));
        }
        Self {
            offsets: Arc::new(offsets),
            data: Arc::new(data),
            validity: None,
        }
    }

    /// Build from optional strings (None ⇒ null).
    pub fn from_options<I, S>(iter: I) -> Self
    where
        I: IntoIterator<Item = Option<S>>,
        S: AsRef<str>,
    {
        let mut offsets = vec![0i32];
        let mut data = Vec::new();
        let mut bits = Vec::new();
        for s in iter {
            match s {
                Some(s) => {
                    data.extend_from_slice(s.as_ref().as_bytes());
                    bits.push(true);
                }
                None => bits.push(false),
            }
            offsets.push(i32::try_from(data.len()).expect("string buffer < 2 GiB"));
        }
        let validity = if bits.iter().all(|b| *b) {
            None
        } else {
            Some(Bitmap::from_iter(bits))
        };
        Self {
            offsets: Arc::new(offsets),
            data: Arc::new(data),
            validity,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if element `i` is non-null.
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.as_ref().map(|v| v.get(i)).unwrap_or(true)
    }

    /// Element `i` as `&str`, `None` if null.
    pub fn value(&self, i: usize) -> Option<&str> {
        if !self.is_valid(i) {
            return None;
        }
        #[cfg(test)]
        instrument::note_decode();
        let start = self.offsets[i] as usize;
        let end = self.offsets[i + 1] as usize;
        // SAFETY-free: buffers were built from &str, so always valid UTF-8.
        Some(std::str::from_utf8(&self.data[start..end]).expect("valid utf8"))
    }

    /// The validity bitmap, if any element is null.
    pub fn validity(&self) -> Option<&Bitmap> {
        self.validity.as_ref()
    }

    /// Byte range of element `i` in the payload buffer.
    fn byte_range(&self, i: usize) -> (usize, usize) {
        (self.offsets[i] as usize, self.offsets[i + 1] as usize)
    }

    /// Gather elements at `indices` into a new array. Bulk-copies payload
    /// byte ranges and gathers the validity bitmap; never decodes values.
    pub fn gather(&self, indices: &[usize]) -> StringArray {
        let payload: usize = indices
            .iter()
            .map(|&i| {
                let (s, e) = self.byte_range(i);
                e - s
            })
            .sum();
        let mut offsets = Vec::with_capacity(indices.len() + 1);
        offsets.push(0i32);
        let mut data = Vec::with_capacity(payload);
        for &i in indices {
            if self.is_valid(i) {
                let (s, e) = self.byte_range(i);
                data.extend_from_slice(&self.data[s..e]);
            }
            offsets.push(i32::try_from(data.len()).expect("string buffer < 2 GiB"));
        }
        let validity = self
            .validity
            .as_ref()
            .map(|v| v.gather(indices))
            .filter(|v| v.count_set() < v.len());
        StringArray {
            offsets: Arc::new(offsets),
            data: Arc::new(data),
            validity,
        }
    }

    /// Gather with optional indices: `None` produces a null. Bulk-copies
    /// payload bytes like [`StringArray::gather`].
    pub fn gather_opt(&self, indices: &[Option<usize>]) -> StringArray {
        let mut offsets = Vec::with_capacity(indices.len() + 1);
        offsets.push(0i32);
        let mut data = Vec::new();
        let mut bits = Vec::with_capacity(indices.len());
        for &ix in indices {
            match ix {
                Some(i) if self.is_valid(i) => {
                    let (s, e) = self.byte_range(i);
                    data.extend_from_slice(&self.data[s..e]);
                    bits.push(true);
                }
                _ => bits.push(false),
            }
            offsets.push(i32::try_from(data.len()).expect("string buffer < 2 GiB"));
        }
        let validity = if bits.iter().all(|b| *b) {
            None
        } else {
            Some(Bitmap::from_iter(bits))
        };
        StringArray {
            offsets: Arc::new(offsets),
            data: Arc::new(data),
            validity,
        }
    }

    /// Iterate elements as `Option<&str>`.
    pub fn iter(&self) -> impl Iterator<Item = Option<&str>> + '_ {
        (0..self.len()).map(move |i| self.value(i))
    }

    /// Heap bytes held (offsets + payload + validity).
    pub fn byte_size(&self) -> usize {
        self.offsets.len() * 4
            + self.data.len()
            + self.validity.as_ref().map(|v| v.byte_size()).unwrap_or(0)
    }

    /// Concatenate several arrays. A single input is returned zero-copy;
    /// otherwise payload and offset buffers are bulk-copied (offsets are
    /// rebased by each array's payload base) — no per-value decoding.
    pub fn concat(arrays: &[&StringArray]) -> StringArray {
        if arrays.len() == 1 {
            return arrays[0].clone();
        }
        let n: usize = arrays.iter().map(|a| a.len()).sum();
        let payload: usize = arrays.iter().map(|a| a.data.len()).sum();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0i32);
        let mut data = Vec::with_capacity(payload);
        let any_null = arrays.iter().any(|a| a.validity.is_some());
        let mut bits = if any_null {
            Vec::with_capacity(n)
        } else {
            Vec::new()
        };
        for a in arrays {
            let base = i32::try_from(data.len()).expect("string buffer < 2 GiB");
            data.extend_from_slice(&a.data);
            offsets.extend(a.offsets[1..].iter().map(|&o| o + base));
            if any_null {
                match &a.validity {
                    Some(v) => bits.extend((0..a.len()).map(|i| v.get(i))),
                    None => bits.extend(std::iter::repeat_n(true, a.len())),
                }
            }
        }
        i32::try_from(data.len()).expect("string buffer < 2 GiB");
        StringArray {
            offsets: Arc::new(offsets),
            data: Arc::new(data),
            validity: if any_null {
                Some(Bitmap::from_iter(bits))
            } else {
                None
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip() {
        let a = StringArray::from_strings(["a", "", "hello", "naïve"]);
        assert_eq!(a.len(), 4);
        assert_eq!(a.value(0), Some("a"));
        assert_eq!(a.value(1), Some(""));
        assert_eq!(a.value(3), Some("naïve"));
        assert!(a.validity().is_none());
    }

    #[test]
    fn nulls() {
        let a = StringArray::from_options([Some("x"), None, Some("y")]);
        assert!(a.is_valid(0));
        assert!(!a.is_valid(1));
        assert_eq!(a.value(1), None);
        assert_eq!(a.value(2), Some("y"));
        assert!(a.validity().is_some());
    }

    #[test]
    fn gather_with_nulls() {
        let a = StringArray::from_options([Some("x"), None, Some("y")]);
        let g = a.gather(&[2, 1, 0, 0]);
        assert_eq!(
            g.iter().collect::<Vec<_>>(),
            vec![Some("y"), None, Some("x"), Some("x")]
        );
    }

    #[test]
    fn concat_preserves_order_and_nulls() {
        let a = StringArray::from_strings(["a"]);
        let b = StringArray::from_options([None, Some("b")]);
        let c = StringArray::concat(&[&a, &b]);
        assert_eq!(
            c.iter().collect::<Vec<_>>(),
            vec![Some("a"), None, Some("b")]
        );
    }

    #[test]
    fn clone_is_zero_copy() {
        let a = StringArray::from_strings(vec!["payload"; 1000]);
        let before = a.byte_size();
        let b = a.clone();
        // Shared buffers: same reported size, same pointers.
        assert_eq!(b.byte_size(), before);
        assert!(Arc::ptr_eq(&a.data, &b.data));
    }

    #[test]
    fn concat_of_large_arrays_does_not_revalidate_per_value() {
        let a = StringArray::from_strings((0..5000).map(|i| format!("left-{i}")));
        let b = StringArray::from_options(
            (0..5000).map(|i| (i % 7 != 0).then(|| format!("right-{i}"))),
        );
        instrument::reset();
        let c = StringArray::concat(&[&a, &b]);
        assert_eq!(
            instrument::decodes(),
            0,
            "bulk concat must not decode values one at a time"
        );
        assert_eq!(c.len(), 10_000);
        assert_eq!(c.value(0), Some("left-0"));
        assert_eq!(c.value(5000), None);
        assert_eq!(c.value(5001), Some("right-1"));
        assert_eq!(c.value(9999), Some("right-4999"));
    }

    #[test]
    fn gather_is_bulk_and_singleton_concat_is_zero_copy() {
        let a = StringArray::from_options([Some("x"), None, Some("naïve"), Some("")]);
        instrument::reset();
        let g = a.gather(&[3, 2, 1, 0, 2]);
        assert_eq!(instrument::decodes(), 0, "bulk gather must not decode");
        assert_eq!(
            g.iter().collect::<Vec<_>>(),
            vec![Some(""), Some("naïve"), None, Some("x"), Some("naïve")]
        );
        let c = StringArray::concat(&[&a]);
        assert!(
            Arc::ptr_eq(&c.data, &a.data),
            "singleton concat shares buffers"
        );
    }

    #[test]
    fn gather_opt_is_bulk() {
        let a = StringArray::from_strings(["a", "bb", "ccc"]);
        instrument::reset();
        let g = a.gather_opt(&[Some(2), None, Some(0)]);
        assert_eq!(instrument::decodes(), 0);
        assert_eq!(
            g.iter().collect::<Vec<_>>(),
            vec![Some("ccc"), None, Some("a")]
        );
        assert_eq!(g.byte_size(), 4 * 4 + 4 + g.validity().unwrap().byte_size());
    }

    #[test]
    fn byte_size_matches_heap_bytes_exactly() {
        let a = StringArray::from_strings(["ab", "", "cdef"]);
        // offsets: 4 × i32, payload: 6 bytes, no validity.
        assert_eq!(a.byte_size(), 4 * 4 + 6);
        let b = StringArray::from_options([Some("ab"), None]);
        assert_eq!(b.byte_size(), 3 * 4 + 2 + b.validity().unwrap().byte_size());
    }

    proptest! {
        #[test]
        fn prop_round_trip(strings in proptest::collection::vec(".{0,12}", 0..50)) {
            let a = StringArray::from_strings(&strings);
            prop_assert_eq!(a.len(), strings.len());
            for (i, s) in strings.iter().enumerate() {
                prop_assert_eq!(a.value(i), Some(s.as_str()));
            }
        }

        #[test]
        fn prop_bulk_gather_concat_match_per_value(
            strings in proptest::collection::vec(
                proptest::option::of(".{0,6}"), 1..40),
            idx_seed in proptest::collection::vec(any::<usize>(), 0..40),
        ) {
            let a = StringArray::from_options(
                strings.iter().map(|s| s.as_deref()));
            let indices: Vec<usize> =
                idx_seed.iter().map(|i| i % strings.len()).collect();
            let g = a.gather(&indices);
            for (out, &src) in indices.iter().enumerate() {
                prop_assert_eq!(g.value(out), strings[src].as_deref());
            }
            let c = StringArray::concat(&[&a, &g]);
            prop_assert_eq!(c.len(), a.len() + g.len());
            for i in 0..a.len() {
                prop_assert_eq!(c.value(i), a.value(i));
            }
            for i in 0..g.len() {
                prop_assert_eq!(c.value(a.len() + i), g.value(i));
            }
        }
    }
}
