//! # sirius-columnar — Arrow-derived columnar data format
//!
//! Sirius, libcudf, and the host databases in the paper all derive their
//! columnar layout from Apache Arrow, "which allows for zero-copy conversion
//! via pointer passing" (§3.2.3). This crate is that shared layout: typed
//! arrays over reference-counted buffers (so cross-engine handoff is a
//! pointer copy, never a deep copy), validity bitmaps, UTF-8 string arrays
//! with i32 offsets, schemas, and record-batch tables.
//!
//! Computation does *not* live here — the GPU kernels are in `sirius-cudf`
//! and the CPU kernels in `sirius-exec-cpu`. This crate only offers
//! data-movement primitives (gather, filter-by-mask, slice, concat) that both
//! engines share, with cost accounting done by the caller.
//!
//! ```
//! use sirius_columnar::{Array, Table, Schema, Field, DataType};
//!
//! let schema = Schema::new(vec![
//!     Field::new("id", DataType::Int64),
//!     Field::new("name", DataType::Utf8),
//! ]);
//! let t = Table::new(
//!     schema,
//!     vec![
//!         Array::from_i64([1, 2, 3]),
//!         Array::from_strs(["ada", "grace", "edith"]),
//!     ],
//! );
//! assert_eq!(t.num_rows(), 3);
//! assert_eq!(t.column(1).utf8_value(2), Some("edith"));
//! ```

#![warn(missing_docs)]

pub mod array;
pub mod bitmap;
pub mod dict_array;
pub mod pretty;
pub mod scalar;
pub mod schema;
pub mod string_array;
pub mod table;

pub use array::{Array, BoolArray, PrimitiveArray};
pub use bitmap::Bitmap;
pub use dict_array::DictionaryArray;
pub use scalar::Scalar;
pub use schema::{DataType, Field, Schema};
pub use string_array::StringArray;
pub use table::Table;

/// Errors produced by columnar operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnarError {
    /// Column types did not match the operation's expectation.
    TypeMismatch {
        /// The type the operation required.
        expected: String,
        /// The type it received.
        actual: String,
    },
    /// Arrays in one table had differing lengths.
    LengthMismatch {
        /// The length implied by the first column / the schema.
        expected: usize,
        /// The mismatching length found.
        actual: usize,
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// The requested index.
        index: usize,
        /// The container length.
        len: usize,
    },
    /// Schema lookup by name failed.
    UnknownColumn(String),
}

impl std::fmt::Display for ColumnarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColumnarError::TypeMismatch { expected, actual } => {
                write!(f, "type mismatch: expected {expected}, got {actual}")
            }
            ColumnarError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            ColumnarError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            ColumnarError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
        }
    }
}

impl std::error::Error for ColumnarError {}

/// Result alias for columnar operations.
pub type Result<T> = std::result::Result<T, ColumnarError>;
