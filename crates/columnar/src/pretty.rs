//! Plain-text table rendering for CLIs, examples, and the bench harness.

use crate::table::Table;

/// Render a table as an aligned ASCII grid, truncated to `max_rows` data
/// rows (a trailing ellipsis row indicates truncation).
pub fn format_table(table: &Table, max_rows: usize) -> String {
    let headers: Vec<String> = table
        .schema()
        .fields
        .iter()
        .map(|f| f.name.clone())
        .collect();
    let shown = table.num_rows().min(max_rows);
    let mut cells: Vec<Vec<String>> = Vec::with_capacity(shown);
    for r in 0..shown {
        cells.push(table.row(r).iter().map(|s| s.to_string()).collect());
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in &cells {
        for (i, c) in row.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let sep = |widths: &[usize]| {
        let mut s = String::from("+");
        for w in widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('+');
        }
        s.push('\n');
        s
    };
    let render_row = |row: &[String], widths: &[usize]| {
        let mut s = String::from("|");
        for (c, w) in row.iter().zip(widths.iter()) {
            s.push(' ');
            s.push_str(c);
            let printed = c.chars().count();
            s.push_str(&" ".repeat(w.saturating_sub(printed) + 1));
            s.push('|');
        }
        s.push('\n');
        s
    };
    let mut out = sep(&widths);
    out.push_str(&render_row(&headers, &widths));
    out.push_str(&sep(&widths));
    for row in &cells {
        out.push_str(&render_row(row, &widths));
    }
    if table.num_rows() > shown {
        let more: Vec<String> = widths.iter().map(|_| "…".to_string()).collect();
        out.push_str(&render_row(&more, &widths));
    }
    out.push_str(&sep(&widths));
    out.push_str(&format!("{} row(s)\n", table.num_rows()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Array, DataType, Field, Schema, Table};

    #[test]
    fn renders_grid() {
        let t = Table::new(
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("name", DataType::Utf8),
            ]),
            vec![Array::from_i64([1, 22]), Array::from_strs(["ada", "b"])],
        );
        let s = format_table(&t, 10);
        assert!(s.contains("| id | name |"));
        assert!(s.contains("| 22 | b    |"));
        assert!(s.contains("2 row(s)"));
    }

    #[test]
    fn truncates() {
        let t = Table::new(
            Schema::new(vec![Field::new("x", DataType::Int64)]),
            vec![Array::from_i64(0..100)],
        );
        let s = format_table(&t, 3);
        assert!(s.contains('…'));
        assert!(s.contains("100 row(s)"));
    }

    #[test]
    fn empty_table_renders_headers_only() {
        let t = Table::empty(Schema::new(vec![Field::new("only", DataType::Bool)]));
        let s = format_table(&t, 5);
        assert!(s.contains("only"));
        assert!(s.contains("0 row(s)"));
    }
}
