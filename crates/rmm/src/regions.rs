//! The two-region device memory split of §3.2.3.

use crate::pool::PoolAllocator;
use sirius_hw::DeviceSpec;

/// Device memory divided into a data-caching region and a data-processing
/// region. The paper's evaluation dedicates 50% of GPU memory to each
/// (§4.1); the fraction is configurable here for ablations.
#[derive(Debug, Clone)]
pub struct BufferRegions {
    caching: PoolAllocator,
    processing: PoolAllocator,
}

impl BufferRegions {
    /// Split `spec.memory_bytes` with `caching_fraction` going to the cache.
    pub fn from_spec(spec: &DeviceSpec, caching_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&caching_fraction),
            "caching fraction must be in [0,1]"
        );
        let cache_bytes = (spec.memory_bytes as f64 * caching_fraction) as u64;
        Self {
            caching: PoolAllocator::new(format!("{} caching", spec.name), cache_bytes),
            processing: PoolAllocator::new(
                format!("{} processing", spec.name),
                spec.memory_bytes - cache_bytes,
            ),
        }
    }

    /// The paper's evaluation configuration: a 50/50 split.
    pub fn paper_default(spec: &DeviceSpec) -> Self {
        Self::from_spec(spec, 0.5)
    }

    /// The pre-allocated data-caching region.
    pub fn caching(&self) -> &PoolAllocator {
        &self.caching
    }

    /// The RMM-pooled data-processing region.
    pub fn processing(&self) -> &PoolAllocator {
        &self.processing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirius_hw::catalog;

    #[test]
    fn fifty_fifty_split() {
        let spec = catalog::gh200_gpu();
        let r = BufferRegions::paper_default(&spec);
        assert_eq!(r.caching().capacity(), spec.memory_bytes / 2);
        assert_eq!(
            r.caching().capacity() + r.processing().capacity(),
            spec.memory_bytes
        );
    }

    #[test]
    fn regions_are_independent() {
        let spec = catalog::a100_40gb();
        let r = BufferRegions::paper_default(&spec);
        let _a = r.processing().alloc(1 << 20).unwrap();
        assert_eq!(r.caching().used(), 0);
        assert!(r.processing().used() >= 1 << 20);
    }

    #[test]
    fn custom_fraction() {
        let spec = catalog::a100_40gb();
        let r = BufferRegions::from_spec(&spec, 0.75);
        assert!(r.caching().capacity() > r.processing().capacity());
    }

    #[test]
    #[should_panic(expected = "caching fraction")]
    fn invalid_fraction_panics() {
        BufferRegions::from_spec(&catalog::a100_40gb(), 1.5);
    }
}
