//! # sirius-rmm — device memory management (RMM-equivalent)
//!
//! The paper's buffer manager (§3.2.3) divides GPU memory into two regions:
//! a pre-allocated **data caching** region (cached input tables, in device or
//! pinned host memory) and a **data processing** region (hash tables and
//! intermediates) managed by the RAPIDS Memory Manager pool allocator. This
//! crate reproduces that stack without CUDA:
//!
//! * [`PoolAllocator`] — a first-fit free-list sub-allocator over a simulated
//!   device address space, with coalescing frees, high-watermark tracking,
//!   and out-of-memory reporting (the RMM pool stand-in).
//! * [`regions::BufferRegions`] — the caching/processing split (50/50 in the
//!   paper's evaluation setup).
//! * [`cache::DataCache`] — a keyed cache over the caching region with a
//!   pinned-host overflow tier and an (out-of-core extension) disk tier.
//!
//! All "memory" here is accounting: the actual bytes live in ordinary host
//! heap buffers owned by `sirius-columnar`. What the allocator simulates is
//! *capacity pressure* — whether the paper's 92 GB HBM would have fit the
//! working set, when spilling would trigger, and what the pool's
//! fragmentation looks like.

#![warn(missing_docs)]

pub mod cache;
pub mod pool;
pub mod regions;
pub mod stats;

pub use cache::{CacheTier, DataCache};
pub use pool::{Allocation, OutOfMemory, PoolAllocator};
pub use regions::BufferRegions;
pub use stats::PoolStats;
