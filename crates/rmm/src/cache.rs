//! Keyed data cache over the caching region, with tiered overflow.
//!
//! §3.2.3: "the buffer manager automatically caches [data read by the host]
//! into the pre-allocated caching region for future reuse", in either device
//! memory or pinned host memory. §3.4 plans spilling to pinned memory and
//! disk for out-of-core execution — implemented here as overflow tiers so
//! the `out_of_core` example can demonstrate the extension.

use crate::pool::{Allocation, PoolAllocator};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Where a cached entry physically resides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheTier {
    /// GPU device memory (HBM) — full-bandwidth access.
    Device,
    /// Pinned host memory — access at interconnect bandwidth.
    PinnedHost,
    /// Disk (out-of-core extension) — access at storage bandwidth.
    Disk,
}

struct Entry<T> {
    value: Arc<T>,
    bytes: u64,
    tier: CacheTier,
    // RAII region reservation; `None` for the unbounded disk tier.
    _alloc: Option<Allocation>,
    hits: u64,
}

struct CacheInner<T> {
    entries: HashMap<String, Entry<T>>,
    hits: u64,
    misses: u64,
}

/// A keyed cache of `T` values (tables, in practice), accounted against a
/// device caching region with pinned-host and disk overflow.
pub struct DataCache<T> {
    device_region: PoolAllocator,
    pinned_region: PoolAllocator,
    inner: Mutex<CacheInner<T>>,
}

impl<T> DataCache<T> {
    /// Build a cache over a device caching region of `device_region`
    /// capacity with `pinned_bytes` of pinned host memory as overflow.
    pub fn new(device_region: PoolAllocator, pinned_bytes: u64) -> Self {
        Self {
            device_region,
            pinned_region: PoolAllocator::new("pinned host", pinned_bytes),
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// Insert `value` of `bytes` under `key`, choosing the highest tier with
    /// room: device → pinned host → disk. Returns the tier chosen.
    pub fn insert(&self, key: impl Into<String>, value: T, bytes: u64) -> CacheTier {
        let key = key.into();
        let (alloc, tier) = match self.device_region.alloc(bytes) {
            Ok(a) => (Some(a), CacheTier::Device),
            Err(_) => match self.pinned_region.alloc(bytes) {
                Ok(a) => (Some(a), CacheTier::PinnedHost),
                Err(_) => (None, CacheTier::Disk),
            },
        };
        self.inner.lock().entries.insert(
            key,
            Entry {
                value: Arc::new(value),
                bytes,
                tier,
                _alloc: alloc,
                hits: 0,
            },
        );
        tier
    }

    /// Look up `key`; a hit returns the value and its tier.
    pub fn get(&self, key: &str) -> Option<(Arc<T>, CacheTier)> {
        let mut g = self.inner.lock();
        if let Some(e) = g.entries.get_mut(key) {
            e.hits += 1;
            let out = (Arc::clone(&e.value), e.tier);
            g.hits += 1;
            Some(out)
        } else {
            g.misses += 1;
            None
        }
    }

    /// True if `key` is cached (does not count as a hit).
    pub fn contains(&self, key: &str) -> bool {
        self.inner.lock().entries.contains_key(key)
    }

    /// Remove `key`, releasing its region reservation.
    pub fn evict(&self, key: &str) -> bool {
        self.inner.lock().entries.remove(key).is_some()
    }

    /// Bytes cached on each tier: `(device, pinned, disk)`.
    pub fn tier_usage(&self) -> (u64, u64, u64) {
        let g = self.inner.lock();
        let mut t = (0, 0, 0);
        for e in g.entries.values() {
            match e.tier {
                CacheTier::Device => t.0 += e.bytes,
                CacheTier::PinnedHost => t.1 += e.bytes,
                CacheTier::Disk => t.2 += e.bytes,
            }
        }
        t
    }

    /// `(hits, misses)` counters.
    pub fn hit_stats(&self) -> (u64, u64) {
        let g = self.inner.lock();
        (g.hits, g.misses)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(device: u64, pinned: u64) -> DataCache<String> {
        DataCache::new(PoolAllocator::new("dev", device), pinned)
    }

    #[test]
    fn hot_path_is_device_tier() {
        let c = cache(1 << 20, 1 << 20);
        assert_eq!(c.insert("t1", "data".into(), 4096), CacheTier::Device);
        let (v, tier) = c.get("t1").unwrap();
        assert_eq!(*v, "data");
        assert_eq!(tier, CacheTier::Device);
        assert_eq!(c.hit_stats(), (1, 0));
    }

    #[test]
    fn overflow_cascades_to_pinned_then_disk() {
        let c = cache(1024, 1024);
        assert_eq!(c.insert("a", "x".into(), 1024), CacheTier::Device);
        assert_eq!(c.insert("b", "y".into(), 1024), CacheTier::PinnedHost);
        assert_eq!(c.insert("c", "z".into(), 1024), CacheTier::Disk);
        assert_eq!(c.tier_usage(), (1024, 1024, 1024));
    }

    #[test]
    fn evict_frees_region_for_reuse() {
        let c = cache(1024, 0);
        assert_eq!(c.insert("a", "x".into(), 1024), CacheTier::Device);
        assert!(c.evict("a"));
        assert!(!c.evict("a"));
        assert_eq!(c.insert("b", "y".into(), 1024), CacheTier::Device);
    }

    #[test]
    fn miss_counting() {
        let c = cache(1024, 0);
        assert!(c.get("nope").is_none());
        assert_eq!(c.hit_stats(), (0, 1));
        assert!(c.is_empty());
    }

    #[test]
    fn contains_does_not_bump_hits() {
        let c = cache(1 << 16, 0);
        c.insert("k", "v".into(), 10);
        assert!(c.contains("k"));
        assert_eq!(c.hit_stats(), (0, 0));
        assert_eq!(c.len(), 1);
    }
}
