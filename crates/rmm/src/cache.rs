//! Keyed data cache over the caching region, with tiered overflow and LRU
//! demotion.
//!
//! §3.2.3: "the buffer manager automatically caches [data read by the host]
//! into the pre-allocated caching region for future reuse", in either device
//! memory or pinned host memory. §3.4 extends the hierarchy with a disk
//! tier for out-of-core execution. New (and recently touched) entries are
//! kept on the fastest tier with room; when a tier fills, its
//! least-recently-used entry is demoted one level down (device → pinned →
//! disk) so hot data stays device-resident instead of new data being exiled
//! by insertion order.

use crate::pool::{Allocation, PoolAllocator};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Where a cached entry physically resides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheTier {
    /// GPU device memory (HBM) — full-bandwidth access.
    Device,
    /// Pinned host memory — access at interconnect bandwidth.
    PinnedHost,
    /// Disk (out-of-core extension) — access at storage bandwidth.
    Disk,
}

struct Entry<T> {
    value: Arc<T>,
    bytes: u64,
    tier: CacheTier,
    // RAII region reservation; `None` for the unbounded disk tier.
    alloc: Option<Allocation>,
    hits: u64,
    last_touch: u64,
}

struct CacheInner<T> {
    entries: HashMap<String, Entry<T>>,
    hits: u64,
    misses: u64,
    clock: u64,
    demotions: u64,
}

/// A keyed cache of `T` values (tables, in practice), accounted against a
/// device caching region with pinned-host and disk overflow.
pub struct DataCache<T> {
    device_region: PoolAllocator,
    pinned_region: PoolAllocator,
    inner: Mutex<CacheInner<T>>,
}

impl<T> DataCache<T> {
    /// Build a cache over a device caching region of `device_region`
    /// capacity with `pinned_bytes` of pinned host memory as overflow.
    pub fn new(device_region: PoolAllocator, pinned_bytes: u64) -> Self {
        Self {
            device_region,
            pinned_region: PoolAllocator::new("pinned host", pinned_bytes),
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                hits: 0,
                misses: 0,
                clock: 0,
                demotions: 0,
            }),
        }
    }

    /// Insert `value` of `bytes` under `key` on the fastest tier it fits,
    /// demoting colder entries downward to make room: a full device tier
    /// demotes its LRU entry to pinned host, a full pinned tier demotes to
    /// disk. Entries larger than a tier's whole capacity skip that tier.
    /// Returns the tier the new entry landed on.
    pub fn insert(&self, key: impl Into<String>, value: T, bytes: u64) -> CacheTier {
        let key = key.into();
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        // Release any prior reservation under this key before placing anew.
        inner.entries.remove(&key);
        let (alloc, tier) = self.place(inner, bytes);
        inner.clock += 1;
        let last_touch = inner.clock;
        inner.entries.insert(
            key,
            Entry {
                value: Arc::new(value),
                bytes,
                tier,
                alloc,
                hits: 0,
                last_touch,
            },
        );
        tier
    }

    /// Find a home for `bytes`, demoting LRU entries out of the way.
    fn place(&self, inner: &mut CacheInner<T>, bytes: u64) -> (Option<Allocation>, CacheTier) {
        if bytes <= self.device_region.capacity() {
            loop {
                if let Ok(a) = self.device_region.alloc(bytes) {
                    return (Some(a), CacheTier::Device);
                }
                if !self.demote_lru(inner, CacheTier::Device) {
                    break;
                }
            }
        }
        if bytes <= self.pinned_region.capacity() {
            loop {
                if let Ok(a) = self.pinned_region.alloc(bytes) {
                    return (Some(a), CacheTier::PinnedHost);
                }
                if !self.demote_lru(inner, CacheTier::PinnedHost) {
                    break;
                }
            }
        }
        (None, CacheTier::Disk)
    }

    /// Demote the least-recently-used entry on `tier` one level down,
    /// freeing its reservation. Returns false when the tier holds nothing
    /// left to demote (the caller then falls through to the next tier).
    fn demote_lru(&self, inner: &mut CacheInner<T>, tier: CacheTier) -> bool {
        let victim = inner
            .entries
            .iter()
            .filter(|(_, e)| e.tier == tier)
            .min_by_key(|(_, e)| e.last_touch)
            .map(|(k, _)| k.clone());
        let Some(key) = victim else {
            return false;
        };
        let bytes = inner.entries[&key].bytes;
        let (alloc, new_tier) = match tier {
            CacheTier::Device => {
                let mut placed = None;
                if bytes <= self.pinned_region.capacity() {
                    loop {
                        if let Ok(a) = self.pinned_region.alloc(bytes) {
                            placed = Some(a);
                            break;
                        }
                        if !self.demote_lru(inner, CacheTier::PinnedHost) {
                            break;
                        }
                    }
                }
                match placed {
                    Some(a) => (Some(a), CacheTier::PinnedHost),
                    None => (None, CacheTier::Disk),
                }
            }
            CacheTier::PinnedHost => (None, CacheTier::Disk),
            CacheTier::Disk => return false,
        };
        let e = inner.entries.get_mut(&key).expect("victim exists");
        // Assigning drops the old reservation, freeing the upper tier.
        e.alloc = alloc;
        e.tier = new_tier;
        inner.demotions += 1;
        true
    }

    /// Look up `key`; a hit returns the value and its tier, and refreshes
    /// the entry's recency so it resists demotion.
    pub fn get(&self, key: &str) -> Option<(Arc<T>, CacheTier)> {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(e) = inner.entries.get_mut(key) {
            e.hits += 1;
            e.last_touch = clock;
            inner.hits += 1;
            Some((Arc::clone(&e.value), e.tier))
        } else {
            inner.misses += 1;
            None
        }
    }

    /// True if `key` is cached (does not count as a hit or a touch).
    pub fn contains(&self, key: &str) -> bool {
        self.inner.lock().entries.contains_key(key)
    }

    /// The tier `key` currently resides on (no hit or touch recorded).
    pub fn tier_of(&self, key: &str) -> Option<CacheTier> {
        self.inner.lock().entries.get(key).map(|e| e.tier)
    }

    /// Remove `key`, releasing its region reservation.
    pub fn evict(&self, key: &str) -> bool {
        self.inner.lock().entries.remove(key).is_some()
    }

    /// Bytes cached on each tier: `(device, pinned, disk)`.
    pub fn tier_usage(&self) -> (u64, u64, u64) {
        let g = self.inner.lock();
        let mut t = (0, 0, 0);
        for e in g.entries.values() {
            match e.tier {
                CacheTier::Device => t.0 += e.bytes,
                CacheTier::PinnedHost => t.1 += e.bytes,
                CacheTier::Disk => t.2 += e.bytes,
            }
        }
        t
    }

    /// `(hits, misses)` counters.
    pub fn hit_stats(&self) -> (u64, u64) {
        let g = self.inner.lock();
        (g.hits, g.misses)
    }

    /// How many entries have been demoted a tier since construction.
    pub fn demotions(&self) -> u64 {
        self.inner.lock().demotions
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(device: u64, pinned: u64) -> DataCache<String> {
        DataCache::new(PoolAllocator::new("dev", device), pinned)
    }

    #[test]
    fn hot_path_is_device_tier() {
        let c = cache(1 << 20, 1 << 20);
        assert_eq!(c.insert("t1", "data".into(), 4096), CacheTier::Device);
        let (v, tier) = c.get("t1").unwrap();
        assert_eq!(*v, "data");
        assert_eq!(tier, CacheTier::Device);
        assert_eq!(c.hit_stats(), (1, 0));
    }

    #[test]
    fn overflow_demotes_cold_entries_down_the_tiers() {
        let c = cache(1024, 1024);
        // Every insert lands on-device; older entries ripple downward.
        assert_eq!(c.insert("a", "x".into(), 1024), CacheTier::Device);
        assert_eq!(c.insert("b", "y".into(), 1024), CacheTier::Device);
        assert_eq!(c.insert("c", "z".into(), 1024), CacheTier::Device);
        assert_eq!(c.tier_of("c"), Some(CacheTier::Device));
        assert_eq!(c.tier_of("b"), Some(CacheTier::PinnedHost));
        assert_eq!(c.tier_of("a"), Some(CacheTier::Disk));
        assert_eq!(c.tier_usage(), (1024, 1024, 1024));
        assert_eq!(c.demotions(), 3); // a→pinned, a→disk, b→pinned
    }

    #[test]
    fn demotion_picks_the_least_recently_used_entry() {
        let c = cache(2048, 4096);
        assert_eq!(c.insert("a", "x".into(), 1024), CacheTier::Device);
        assert_eq!(c.insert("b", "y".into(), 1024), CacheTier::Device);
        // Touch `a`, making `b` the LRU device entry.
        assert!(c.get("a").is_some());
        assert_eq!(c.insert("c", "z".into(), 1024), CacheTier::Device);
        assert_eq!(c.tier_of("a"), Some(CacheTier::Device));
        assert_eq!(c.tier_of("b"), Some(CacheTier::PinnedHost));
        assert_eq!(c.tier_of("c"), Some(CacheTier::Device));
        assert_eq!(c.demotions(), 1);
    }

    #[test]
    fn oversized_entries_skip_tiers_they_cannot_fit() {
        let c = cache(1024, 2048);
        // Larger than the device tier entirely: no demotion frenzy, straight
        // to the first tier whose capacity can hold it.
        assert_eq!(c.insert("big", "B".into(), 2048), CacheTier::PinnedHost);
        assert_eq!(c.insert("huge", "H".into(), 1 << 20), CacheTier::Disk);
        assert_eq!(c.demotions(), 0);
    }

    #[test]
    fn evict_frees_region_for_reuse() {
        let c = cache(1024, 0);
        assert_eq!(c.insert("a", "x".into(), 1024), CacheTier::Device);
        assert!(c.evict("a"));
        assert!(!c.evict("a"));
        assert_eq!(c.insert("b", "y".into(), 1024), CacheTier::Device);
    }

    #[test]
    fn reinsert_replaces_rather_than_leaks() {
        let c = cache(1024, 0);
        assert_eq!(c.insert("a", "x".into(), 1024), CacheTier::Device);
        // Same key again: the old reservation must be released first.
        assert_eq!(c.insert("a", "x2".into(), 1024), CacheTier::Device);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn miss_counting() {
        let c = cache(1024, 0);
        assert!(c.get("nope").is_none());
        assert_eq!(c.hit_stats(), (0, 1));
        assert!(c.is_empty());
    }

    #[test]
    fn contains_does_not_bump_hits() {
        let c = cache(1 << 16, 0);
        c.insert("k", "v".into(), 10);
        assert!(c.contains("k"));
        assert_eq!(c.hit_stats(), (0, 0));
        assert_eq!(c.len(), 1);
    }
}
