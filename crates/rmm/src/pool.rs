//! First-fit free-list pool allocator over a simulated address space.

use crate::stats::PoolStats;
use parking_lot::Mutex;
use std::sync::Arc;

/// Error returned when the pool cannot satisfy an allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes currently free (possibly fragmented).
    pub free: u64,
    /// Largest contiguous free block.
    pub largest_block: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of device memory: requested {} B, free {} B (largest contiguous {} B)",
            self.requested, self.free, self.largest_block
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Allocation alignment, matching RMM's 256-byte CUDA allocation granularity.
pub const ALIGNMENT: u64 = 256;

fn align_up(v: u64) -> u64 {
    v.div_ceil(ALIGNMENT) * ALIGNMENT
}

#[derive(Debug)]
struct PoolInner {
    capacity: u64,
    /// Free blocks as (offset, len), sorted by offset, mutually
    /// non-adjacent (adjacent blocks are coalesced on free).
    free_list: Vec<(u64, u64)>,
    used: u64,
    high_watermark: u64,
    alloc_count: u64,
    failed_allocs: u64,
}

impl PoolInner {
    fn largest_block(&self) -> u64 {
        self.free_list.iter().map(|(_, l)| *l).max().unwrap_or(0)
    }

    fn allocate(&mut self, bytes: u64) -> Result<(u64, u64), OutOfMemory> {
        let size = align_up(bytes.max(1));
        let slot = self.free_list.iter().position(|(_, len)| *len >= size);
        let Some(i) = slot else {
            self.failed_allocs += 1;
            return Err(OutOfMemory {
                requested: size,
                free: self.capacity - self.used,
                largest_block: self.largest_block(),
            });
        };
        let (off, len) = self.free_list[i];
        if len == size {
            self.free_list.remove(i);
        } else {
            self.free_list[i] = (off + size, len - size);
        }
        self.used += size;
        self.high_watermark = self.high_watermark.max(self.used);
        self.alloc_count += 1;
        Ok((off, size))
    }

    fn free(&mut self, offset: u64, size: u64) {
        self.used -= size;
        // Insert keeping offset order, then coalesce with neighbours.
        let pos = self.free_list.partition_point(|(o, _)| *o < offset);
        self.free_list.insert(pos, (offset, size));
        // Coalesce with next.
        if pos + 1 < self.free_list.len()
            && self.free_list[pos].0 + self.free_list[pos].1 == self.free_list[pos + 1].0
        {
            self.free_list[pos].1 += self.free_list[pos + 1].1;
            self.free_list.remove(pos + 1);
        }
        // Coalesce with previous.
        if pos > 0 && self.free_list[pos - 1].0 + self.free_list[pos - 1].1 == self.free_list[pos].0
        {
            self.free_list[pos - 1].1 += self.free_list[pos].1;
            self.free_list.remove(pos);
        }
    }
}

/// A thread-safe pool allocator. Cloning shares the pool.
#[derive(Debug, Clone)]
pub struct PoolAllocator {
    inner: Arc<Mutex<PoolInner>>,
    name: Arc<str>,
}

impl PoolAllocator {
    /// Create a pool of `capacity` bytes.
    pub fn new(name: impl Into<String>, capacity: u64) -> Self {
        Self {
            inner: Arc::new(Mutex::new(PoolInner {
                capacity,
                free_list: if capacity > 0 {
                    vec![(0, capacity)]
                } else {
                    vec![]
                },
                used: 0,
                high_watermark: 0,
                alloc_count: 0,
                failed_allocs: 0,
            })),
            name: Arc::from(name.into()),
        }
    }

    /// Pool name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Allocate `bytes` (rounded up to [`ALIGNMENT`]); the returned RAII
    /// handle frees on drop.
    pub fn alloc(&self, bytes: u64) -> Result<Allocation, OutOfMemory> {
        let (offset, size) = self.inner.lock().allocate(bytes)?;
        Ok(Allocation {
            pool: self.clone(),
            offset,
            size,
        })
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.inner.lock().capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.inner.lock().used
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        let g = self.inner.lock();
        g.capacity - g.used
    }

    /// Snapshot of pool statistics.
    pub fn stats(&self) -> PoolStats {
        let g = self.inner.lock();
        PoolStats {
            capacity: g.capacity,
            used: g.used,
            high_watermark: g.high_watermark,
            alloc_count: g.alloc_count,
            failed_allocs: g.failed_allocs,
            free_blocks: g.free_list.len() as u64,
            largest_free_block: g.largest_block(),
        }
    }
}

/// RAII handle to a pool allocation; frees its bytes on drop.
#[derive(Debug)]
pub struct Allocation {
    pool: PoolAllocator,
    offset: u64,
    size: u64,
}

impl Allocation {
    /// Simulated device offset of this allocation.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Size in bytes (after alignment rounding).
    pub fn size(&self) -> u64 {
        self.size
    }
}

impl Drop for Allocation {
    fn drop(&mut self) {
        self.pool.inner.lock().free(self.offset, self.size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alloc_free_restores_capacity() {
        let p = PoolAllocator::new("proc", 1 << 20);
        let a = p.alloc(1000).unwrap();
        assert_eq!(a.size(), align_up(1000));
        assert_eq!(p.used(), a.size());
        drop(a);
        assert_eq!(p.used(), 0);
        assert_eq!(p.stats().free_blocks, 1);
        assert_eq!(p.stats().largest_free_block, 1 << 20);
    }

    #[test]
    fn oom_reports_fragmentation() {
        let p = PoolAllocator::new("proc", 1024);
        let _a = p.alloc(512).unwrap();
        let err = p.alloc(1024).unwrap_err();
        assert_eq!(err.requested, 1024);
        assert_eq!(err.free, 512);
        assert_eq!(err.largest_block, 512);
        assert_eq!(p.stats().failed_allocs, 1);
    }

    #[test]
    fn coalescing_reunites_neighbours() {
        let p = PoolAllocator::new("proc", 4096);
        let a = p.alloc(1024).unwrap();
        let b = p.alloc(1024).unwrap();
        let c = p.alloc(1024).unwrap();
        drop(a);
        drop(c);
        // Fragmented: two free blocks plus the 1 KiB tail.
        assert_eq!(p.stats().free_blocks, 2);
        drop(b);
        // Fully coalesced.
        assert_eq!(p.stats().free_blocks, 1);
        assert_eq!(p.stats().largest_free_block, 4096);
    }

    #[test]
    fn high_watermark_tracks_peak() {
        let p = PoolAllocator::new("proc", 1 << 16);
        let a = p.alloc(4096).unwrap();
        let b = p.alloc(4096).unwrap();
        drop(a);
        drop(b);
        assert_eq!(p.stats().high_watermark, 8192);
        assert_eq!(p.used(), 0);
    }

    #[test]
    fn zero_byte_alloc_takes_one_unit() {
        let p = PoolAllocator::new("proc", 1024);
        let a = p.alloc(0).unwrap();
        assert_eq!(a.size(), ALIGNMENT);
    }

    proptest! {
        #[test]
        fn prop_allocations_never_overlap_and_free_restores(
            sizes in proptest::collection::vec(1u64..5000, 1..40),
            drop_mask in proptest::collection::vec(any::<bool>(), 1..40),
        ) {
            let p = PoolAllocator::new("t", 1 << 20);
            let mut live: Vec<Allocation> = Vec::new();
            for (i, &s) in sizes.iter().enumerate() {
                if let Ok(a) = p.alloc(s) {
                    live.push(a);
                }
                if *drop_mask.get(i).unwrap_or(&false) && !live.is_empty() {
                    live.remove(0);
                }
                // Invariant: no two live allocations overlap.
                let mut spans: Vec<(u64, u64)> =
                    live.iter().map(|a| (a.offset(), a.size())).collect();
                spans.sort_unstable();
                for w in spans.windows(2) {
                    prop_assert!(w[0].0 + w[0].1 <= w[1].0, "overlap: {:?}", w);
                }
                // Invariant: used == sum of live sizes.
                prop_assert_eq!(p.used(), live.iter().map(|a| a.size()).sum::<u64>());
            }
            drop(live);
            prop_assert_eq!(p.used(), 0);
            prop_assert_eq!(p.stats().free_blocks, 1);
        }
    }
}
