//! Allocator statistics snapshots.

/// Point-in-time statistics for a [`crate::PoolAllocator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Total pool capacity in bytes.
    pub capacity: u64,
    /// Bytes currently allocated.
    pub used: u64,
    /// Peak bytes ever allocated simultaneously.
    pub high_watermark: u64,
    /// Number of successful allocations.
    pub alloc_count: u64,
    /// Number of allocation failures (OOM).
    pub failed_allocs: u64,
    /// Number of blocks on the free list (fragmentation indicator).
    pub free_blocks: u64,
    /// Largest contiguous free block in bytes.
    pub largest_free_block: u64,
}

impl PoolStats {
    /// Fraction of capacity in use, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.used as f64 / self.capacity as f64
        }
    }

    /// External fragmentation indicator: 1 − largest_free/total_free.
    /// Zero when free space is one contiguous block.
    pub fn fragmentation(&self) -> f64 {
        let free = self.capacity - self.used;
        if free == 0 {
            0.0
        } else {
            1.0 - self.largest_free_block as f64 / free as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_and_fragmentation() {
        let s = PoolStats {
            capacity: 100,
            used: 40,
            high_watermark: 60,
            alloc_count: 3,
            failed_allocs: 0,
            free_blocks: 2,
            largest_free_block: 30,
        };
        assert!((s.utilization() - 0.4).abs() < 1e-12);
        assert!((s.fragmentation() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let s = PoolStats {
            capacity: 0,
            used: 0,
            high_watermark: 0,
            alloc_count: 0,
            failed_allocs: 0,
            free_blocks: 0,
            largest_free_block: 0,
        };
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.fragmentation(), 0.0);
    }
}
