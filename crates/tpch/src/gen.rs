//! Seeded, scale-factor-parameterized TPC-H data generator.

use crate::schema;
use crate::text::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sirius_columnar::scalar::ymd_to_date32;
use sirius_columnar::{Array, Table};

/// Generated TPC-H database: the eight base tables.
pub struct TpchData {
    tables: Vec<(String, Table)>,
    /// The scale factor the data was generated at.
    pub scale_factor: f64,
}

impl TpchData {
    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// All `(name, table)` pairs.
    pub fn tables(&self) -> &[(String, Table)] {
        &self.tables
    }

    /// Total bytes across all tables.
    pub fn total_bytes(&self) -> u64 {
        self.tables.iter().map(|(_, t)| t.byte_size() as u64).sum()
    }

    /// A copy with every string column decoded to plain payload bytes —
    /// the ablation baseline for measuring what dictionary encoding saves.
    pub fn decoded(&self) -> TpchData {
        TpchData {
            tables: self
                .tables
                .iter()
                .map(|(n, t)| (n.clone(), t.decode_strings()))
                .collect(),
            scale_factor: self.scale_factor,
        }
    }
}

/// The generator. Deterministic for a given `(scale_factor, seed)`.
pub struct TpchGenerator {
    sf: f64,
    seed: u64,
    dictionary: bool,
}

const START_DATE: (i32, u32, u32) = (1992, 1, 1);
const CURRENT_DATE: (i32, u32, u32) = (1995, 6, 17);

impl TpchGenerator {
    /// Generator at `scale_factor` with the default seed.
    pub fn new(scale_factor: f64) -> Self {
        Self {
            sf: scale_factor,
            seed: 0x5151_u64,
            dictionary: true,
        }
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Toggle dictionary encoding of string columns (default on). The
    /// decoded form is the ablation baseline; values are identical either
    /// way, only the physical layout differs.
    pub fn with_dictionary(mut self, dictionary: bool) -> Self {
        self.dictionary = dictionary;
        self
    }

    fn scaled(&self, base: u64, min: u64) -> usize {
        ((base as f64 * self.sf) as u64).max(min) as usize
    }

    /// Generate all eight tables.
    pub fn generate(&self) -> TpchData {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n_supp = self.scaled(10_000, 20);
        let n_cust = self.scaled(150_000, 90);
        let n_part = self.scaled(200_000, 120);
        let n_orders = self.scaled(1_500_000, 900);

        let retail_price = |partkey: i64| 900.0 + ((partkey * 32) % 20_001) as f64 / 100.0;
        // dbgen links each part to 4 suppliers with this spread; lineitem
        // uses the same formula so (l_partkey, l_suppkey) always exists in
        // partsupp (Q9 depends on it).
        let supp_of = |partkey: i64, i: i64, n_supp: i64| -> i64 {
            (partkey + i * (n_supp / 4 + (partkey - 1) / n_supp)) % n_supp + 1
        };

        let mut tables = Vec::new();

        // region ------------------------------------------------------------
        tables.push((
            "region".to_string(),
            Table::new(
                schema::region(),
                vec![
                    Array::from_i64(0..5),
                    Array::from_strs(REGIONS),
                    Array::from_strs(REGIONS.map(|r| format!("{} region", r.to_lowercase()))),
                ],
            ),
        ));

        // nation ------------------------------------------------------------
        tables.push((
            "nation".to_string(),
            Table::new(
                schema::nation(),
                vec![
                    Array::from_i64(0..25),
                    Array::from_strs(NATIONS.map(|(n, _)| n)),
                    Array::from_i64(NATIONS.map(|(_, r)| r)),
                    Array::from_strs(NATIONS.map(|(n, _)| format!("{} nation", n.to_lowercase()))),
                ],
            ),
        ));

        // supplier ----------------------------------------------------------
        {
            let mut suppkey = Vec::with_capacity(n_supp);
            let mut name = Vec::with_capacity(n_supp);
            let mut address = Vec::with_capacity(n_supp);
            let mut nationkey = Vec::with_capacity(n_supp);
            let mut phone = Vec::with_capacity(n_supp);
            let mut acctbal = Vec::with_capacity(n_supp);
            let mut comment = Vec::with_capacity(n_supp);
            for k in 1..=n_supp as i64 {
                let nk = rng.gen_range(0..25i64);
                suppkey.push(k);
                name.push(format!("Supplier#{k:09}"));
                address.push(gen_address(&mut rng));
                nationkey.push(nk);
                phone.push(gen_phone(&mut rng, nk));
                acctbal.push(gen_money(&mut rng, -999.99, 9999.99));
                // dbgen plants "Customer ... Complaints" in ~0.1% of
                // supplier comments; at tiny scales use 2% so Q16's NOT IN
                // has something to exclude.
                let p = if n_supp < 2000 { 0.02 } else { 0.001 };
                let inject = if rng.gen_bool(p) {
                    Some(("Customer", "Complaints"))
                } else {
                    None
                };
                comment.push(gen_comment(&mut rng, inject));
            }
            tables.push((
                "supplier".to_string(),
                Table::new(
                    schema::supplier(),
                    vec![
                        Array::from_i64(suppkey),
                        Array::from_strs(name),
                        Array::from_strs(address),
                        Array::from_i64(nationkey),
                        Array::from_strs(phone),
                        Array::from_f64(acctbal),
                        Array::from_strs(comment),
                    ],
                ),
            ));
        }

        // customer ----------------------------------------------------------
        {
            let mut custkey = Vec::with_capacity(n_cust);
            let mut name = Vec::with_capacity(n_cust);
            let mut address = Vec::with_capacity(n_cust);
            let mut nationkey = Vec::with_capacity(n_cust);
            let mut phone = Vec::with_capacity(n_cust);
            let mut acctbal = Vec::with_capacity(n_cust);
            let mut segment = Vec::with_capacity(n_cust);
            let mut comment = Vec::with_capacity(n_cust);
            for k in 1..=n_cust as i64 {
                let nk = rng.gen_range(0..25i64);
                custkey.push(k);
                name.push(format!("Customer#{k:09}"));
                address.push(gen_address(&mut rng));
                nationkey.push(nk);
                phone.push(gen_phone(&mut rng, nk));
                acctbal.push(gen_money(&mut rng, -999.99, 9999.99));
                segment.push(SEGMENTS[rng.gen_range(0..SEGMENTS.len())].to_string());
                comment.push(gen_comment(&mut rng, None));
            }
            tables.push((
                "customer".to_string(),
                Table::new(
                    schema::customer(),
                    vec![
                        Array::from_i64(custkey),
                        Array::from_strs(name),
                        Array::from_strs(address),
                        Array::from_i64(nationkey),
                        Array::from_strs(phone),
                        Array::from_f64(acctbal),
                        Array::from_strs(segment),
                        Array::from_strs(comment),
                    ],
                ),
            ));
        }

        // part ----------------------------------------------------------------
        {
            let mut partkey = Vec::with_capacity(n_part);
            let mut name = Vec::with_capacity(n_part);
            let mut mfgr = Vec::with_capacity(n_part);
            let mut brand = Vec::with_capacity(n_part);
            let mut ptype = Vec::with_capacity(n_part);
            let mut size = Vec::with_capacity(n_part);
            let mut container = Vec::with_capacity(n_part);
            let mut price = Vec::with_capacity(n_part);
            let mut comment = Vec::with_capacity(n_part);
            for k in 1..=n_part as i64 {
                partkey.push(k);
                // 5 distinct colors; queries probe the leading one (Q20
                // `forest%`) and any position (Q9 `%green%`).
                let mut colors: Vec<&str> = Vec::with_capacity(5);
                while colors.len() < 5 {
                    let c = COLORS[rng.gen_range(0..COLORS.len())];
                    if !colors.contains(&c) {
                        colors.push(c);
                    }
                }
                name.push(colors.join(" "));
                let m = rng.gen_range(1..=5);
                mfgr.push(format!("Manufacturer#{m}"));
                brand.push(format!("Brand#{m}{}", rng.gen_range(1..=5)));
                ptype.push(format!(
                    "{} {} {}",
                    TYPE_S1[rng.gen_range(0..TYPE_S1.len())],
                    TYPE_S2[rng.gen_range(0..TYPE_S2.len())],
                    TYPE_S3[rng.gen_range(0..TYPE_S3.len())]
                ));
                size.push(rng.gen_range(1..=50i64));
                container.push(format!(
                    "{} {}",
                    CONTAINER_S1[rng.gen_range(0..CONTAINER_S1.len())],
                    CONTAINER_S2[rng.gen_range(0..CONTAINER_S2.len())]
                ));
                price.push(retail_price(k));
                comment.push(gen_comment(&mut rng, None));
            }
            tables.push((
                "part".to_string(),
                Table::new(
                    schema::part(),
                    vec![
                        Array::from_i64(partkey),
                        Array::from_strs(name),
                        Array::from_strs(mfgr),
                        Array::from_strs(brand),
                        Array::from_strs(ptype),
                        Array::from_i64(size),
                        Array::from_strs(container),
                        Array::from_f64(price),
                        Array::from_strs(comment),
                    ],
                ),
            ));
        }

        // partsupp ---------------------------------------------------------
        {
            let n = n_part * 4;
            let mut pk = Vec::with_capacity(n);
            let mut sk = Vec::with_capacity(n);
            let mut qty = Vec::with_capacity(n);
            let mut cost = Vec::with_capacity(n);
            let mut comment = Vec::with_capacity(n);
            for p in 1..=n_part as i64 {
                for i in 0..4i64 {
                    pk.push(p);
                    sk.push(supp_of(p, i, n_supp as i64));
                    qty.push(rng.gen_range(1..=9999i64));
                    cost.push(gen_money(&mut rng, 1.0, 1000.0));
                    comment.push(gen_comment(&mut rng, None));
                }
            }
            tables.push((
                "partsupp".to_string(),
                Table::new(
                    schema::partsupp(),
                    vec![
                        Array::from_i64(pk),
                        Array::from_i64(sk),
                        Array::from_i64(qty),
                        Array::from_f64(cost),
                        Array::from_strs(comment),
                    ],
                ),
            ));
        }

        // orders + lineitem --------------------------------------------------
        {
            let start = ymd_to_date32(START_DATE.0, START_DATE.1, START_DATE.2);
            let end = ymd_to_date32(1998, 8, 2);
            let cutoff = ymd_to_date32(CURRENT_DATE.0, CURRENT_DATE.1, CURRENT_DATE.2);

            let mut o_key = Vec::with_capacity(n_orders);
            let mut o_cust = Vec::with_capacity(n_orders);
            let mut o_status = Vec::with_capacity(n_orders);
            let mut o_total = Vec::with_capacity(n_orders);
            let mut o_date = Vec::with_capacity(n_orders);
            let mut o_prio = Vec::with_capacity(n_orders);
            let mut o_clerk = Vec::with_capacity(n_orders);
            let mut o_shipprio = Vec::with_capacity(n_orders);
            let mut o_comment = Vec::with_capacity(n_orders);

            let nl = n_orders * 4;
            let mut l_okey = Vec::with_capacity(nl);
            let mut l_pkey = Vec::with_capacity(nl);
            let mut l_skey = Vec::with_capacity(nl);
            let mut l_line = Vec::with_capacity(nl);
            let mut l_qty = Vec::with_capacity(nl);
            let mut l_ext = Vec::with_capacity(nl);
            let mut l_disc = Vec::with_capacity(nl);
            let mut l_tax = Vec::with_capacity(nl);
            let mut l_ret = Vec::with_capacity(nl);
            let mut l_status = Vec::with_capacity(nl);
            let mut l_ship = Vec::with_capacity(nl);
            let mut l_commit = Vec::with_capacity(nl);
            let mut l_receipt = Vec::with_capacity(nl);
            let mut l_instruct = Vec::with_capacity(nl);
            let mut l_mode = Vec::with_capacity(nl);
            let mut l_comment = Vec::with_capacity(nl);

            for ok in 1..=n_orders as i64 {
                // dbgen leaves a third of customers order-less (Q13/Q22).
                let cust = loop {
                    let c = rng.gen_range(1..=n_cust as i64);
                    if c % 3 != 0 {
                        break c;
                    }
                };
                let odate = rng.gen_range(start..=end - 151);
                let lines = rng.gen_range(1..=7usize);
                let mut total = 0.0;
                let mut all_f = true;
                let mut all_o = true;
                for line in 1..=lines as i64 {
                    let p = rng.gen_range(1..=n_part as i64);
                    let s = supp_of(p, rng.gen_range(0..4i64), n_supp as i64);
                    let qty = rng.gen_range(1..=50i64) as f64;
                    let ext = qty * retail_price(p);
                    let disc = rng.gen_range(0..=10i64) as f64 / 100.0;
                    let tax = rng.gen_range(0..=8i64) as f64 / 100.0;
                    let ship = odate + rng.gen_range(1..=121);
                    let commit = odate + rng.gen_range(30..=90);
                    let receipt = ship + rng.gen_range(1..=30);
                    let (ret, status) = if receipt <= cutoff {
                        (if rng.gen_bool(0.5) { "R" } else { "A" }, "F")
                    } else {
                        ("N", "O")
                    };
                    if status == "O" {
                        all_f = false;
                    } else {
                        all_o = false;
                    }
                    total += ext * (1.0 + tax) * (1.0 - disc);

                    l_okey.push(ok);
                    l_pkey.push(p);
                    l_skey.push(s);
                    l_line.push(line);
                    l_qty.push(qty);
                    l_ext.push(ext);
                    l_disc.push(disc);
                    l_tax.push(tax);
                    l_ret.push(ret.to_string());
                    l_status.push(status.to_string());
                    l_ship.push(ship);
                    l_commit.push(commit);
                    l_receipt.push(receipt);
                    l_instruct
                        .push(SHIP_INSTRUCTS[rng.gen_range(0..SHIP_INSTRUCTS.len())].to_string());
                    l_mode.push(SHIP_MODES[rng.gen_range(0..SHIP_MODES.len())].to_string());
                    l_comment.push(gen_comment(&mut rng, None));
                }
                o_key.push(ok);
                o_cust.push(cust);
                o_status.push(
                    if all_f {
                        "F"
                    } else if all_o {
                        "O"
                    } else {
                        "P"
                    }
                    .to_string(),
                );
                o_total.push((total * 100.0).round() / 100.0);
                o_date.push(odate);
                o_prio.push(PRIORITIES[rng.gen_range(0..PRIORITIES.len())].to_string());
                o_clerk.push(format!("Clerk#{:09}", rng.gen_range(1..=1000)));
                o_shipprio.push(0);
                // ~1.6% of order comments carry the Q13 phrase.
                let inject = if rng.gen_bool(1.0 / 60.0) {
                    Some(("special", "requests"))
                } else {
                    None
                };
                o_comment.push(gen_comment(&mut rng, inject));
            }

            tables.push((
                "orders".to_string(),
                Table::new(
                    schema::orders(),
                    vec![
                        Array::from_i64(o_key),
                        Array::from_i64(o_cust),
                        Array::from_strs(o_status),
                        Array::from_f64(o_total),
                        Array::from_date32(o_date),
                        Array::from_strs(o_prio),
                        Array::from_strs(o_clerk),
                        Array::from_i64(o_shipprio),
                        Array::from_strs(o_comment),
                    ],
                ),
            ));
            tables.push((
                "lineitem".to_string(),
                Table::new(
                    schema::lineitem(),
                    vec![
                        Array::from_i64(l_okey),
                        Array::from_i64(l_pkey),
                        Array::from_i64(l_skey),
                        Array::from_i64(l_line),
                        Array::from_f64(l_qty),
                        Array::from_f64(l_ext),
                        Array::from_f64(l_disc),
                        Array::from_f64(l_tax),
                        Array::from_strs(l_ret),
                        Array::from_strs(l_status),
                        Array::from_date32(l_ship),
                        Array::from_date32(l_commit),
                        Array::from_date32(l_receipt),
                        Array::from_strs(l_instruct),
                        Array::from_strs(l_mode),
                        Array::from_strs(l_comment),
                    ],
                ),
            ));
        }

        // Strings ship dictionary-encoded by default: operators run on
        // 4-byte codes and the engine materializes payload bytes only at
        // the result sink (late materialization).
        if self.dictionary {
            for (_, t) in &mut tables {
                *t = t.encode_strings();
            }
        }

        TpchData {
            tables,
            scale_factor: self.sf,
        }
    }
}

fn gen_money(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    let cents = rng.gen_range((lo * 100.0) as i64..=(hi * 100.0) as i64);
    cents as f64 / 100.0
}

fn gen_phone(rng: &mut StdRng, nationkey: i64) -> String {
    format!(
        "{}-{:03}-{:03}-{:04}",
        10 + nationkey,
        rng.gen_range(100..1000),
        rng.gen_range(100..1000),
        rng.gen_range(1000..10000)
    )
}

fn gen_address(rng: &mut StdRng) -> String {
    format!(
        "{} {} {}",
        rng.gen_range(1..9999),
        COMMENT_WORDS[rng.gen_range(0..COMMENT_WORDS.len())],
        COMMENT_WORDS[rng.gen_range(0..COMMENT_WORDS.len())]
    )
}

fn gen_comment(rng: &mut StdRng, inject: Option<(&str, &str)>) -> String {
    let n = rng.gen_range(3..=7);
    let mut words: Vec<&str> = (0..n)
        .map(|_| COMMENT_WORDS[rng.gen_range(0..COMMENT_WORDS.len())])
        .collect();
    if let Some((a, b)) = inject {
        // Place the phrase with 0-2 filler words between its halves.
        let gap = rng.gen_range(0..=2usize.min(words.len()));
        let at = rng.gen_range(0..=words.len() - gap);
        words.insert(at, a);
        words.insert(at + 1 + gap, b);
    }
    words.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TpchData {
        TpchGenerator::new(0.002).generate()
    }

    #[test]
    fn deterministic() {
        let a = TpchGenerator::new(0.002).generate();
        let b = TpchGenerator::new(0.002).generate();
        for ((na, ta), (nb, tb)) in a.tables().iter().zip(b.tables().iter()) {
            assert_eq!(na, nb);
            assert_eq!(ta, tb, "{na} differs across runs");
        }
        let c = TpchGenerator::new(0.002).with_seed(99).generate();
        assert_ne!(
            a.table("lineitem").unwrap(),
            c.table("lineitem").unwrap(),
            "different seeds should differ"
        );
    }

    #[test]
    fn cardinalities_scale() {
        let d = tiny();
        assert_eq!(d.table("region").unwrap().num_rows(), 5);
        assert_eq!(d.table("nation").unwrap().num_rows(), 25);
        let parts = d.table("part").unwrap().num_rows();
        assert_eq!(d.table("partsupp").unwrap().num_rows(), parts * 4);
        assert!(d.table("lineitem").unwrap().num_rows() > d.table("orders").unwrap().num_rows());
    }

    #[test]
    fn referential_integrity() {
        let d = tiny();
        let orders = d.table("orders").unwrap();
        let n_cust = d.table("customer").unwrap().num_rows() as i64;
        for i in 0..orders.num_rows() {
            let c = orders.column(1).i64_value(i).unwrap();
            assert!((1..=n_cust).contains(&c));
            assert_ne!(c % 3, 0, "a third of customers stay order-less");
        }
        // Every (l_partkey, l_suppkey) exists in partsupp.
        let ps = d.table("partsupp").unwrap();
        let mut pairs = std::collections::HashSet::new();
        for i in 0..ps.num_rows() {
            pairs.insert((
                ps.column(0).i64_value(i).unwrap(),
                ps.column(1).i64_value(i).unwrap(),
            ));
        }
        let li = d.table("lineitem").unwrap();
        for i in 0..li.num_rows() {
            let key = (
                li.column(1).i64_value(i).unwrap(),
                li.column(2).i64_value(i).unwrap(),
            );
            assert!(
                pairs.contains(&key),
                "lineitem {key:?} missing from partsupp"
            );
        }
    }

    #[test]
    fn date_relationships() {
        let d = tiny();
        let li = d.table("lineitem").unwrap();
        for i in 0..li.num_rows() {
            let ship = li.column(10).i64_value(i).unwrap();
            let receipt = li.column(12).i64_value(i).unwrap();
            assert!(receipt > ship);
        }
    }

    #[test]
    fn selective_phrases_present() {
        let d = TpchGenerator::new(0.01).generate();
        let orders = d.table("orders").unwrap();
        let special = (0..orders.num_rows())
            .filter(|&i| {
                let c = orders.column(8).utf8_value(i).unwrap();
                c.contains("special") && c.contains("requests")
            })
            .count();
        assert!(special > 0, "Q13's phrase must occur");
        assert!(special < orders.num_rows() / 10);
        let parts = d.table("part").unwrap();
        let forest = (0..parts.num_rows())
            .filter(|&i| parts.column(1).utf8_value(i).unwrap().starts_with("forest"))
            .count();
        assert!(forest > 0, "Q20's forest-prefixed parts must exist");
    }

    #[test]
    fn strings_are_dictionary_encoded_by_default() {
        let enc = tiny();
        assert!(
            enc.tables().iter().any(|(_, t)| t.has_dict_columns()),
            "default generation must emit encoded string columns"
        );
        let plain = TpchGenerator::new(0.002).with_dictionary(false).generate();
        assert!(plain.tables().iter().all(|(_, t)| !t.has_dict_columns()));
        // Same values, different physical layout; and encoded is smaller.
        for ((ne, te), (np, tp)) in enc.tables().iter().zip(plain.tables().iter()) {
            assert_eq!(ne, np);
            assert_eq!(&te.decode_strings(), tp, "{ne} values differ");
        }
        assert!(enc.total_bytes() < plain.total_bytes());
        assert_eq!(enc.decoded().total_bytes(), plain.total_bytes());
    }

    #[test]
    fn status_flags_consistent() {
        let d = tiny();
        let li = d.table("lineitem").unwrap();
        for i in 0..li.num_rows() {
            let ret = li.column(8).utf8_value(i).unwrap();
            let status = li.column(9).utf8_value(i).unwrap();
            match status {
                "F" => assert!(ret == "R" || ret == "A"),
                "O" => assert_eq!(ret, "N"),
                other => panic!("unexpected linestatus {other}"),
            }
        }
    }
}
