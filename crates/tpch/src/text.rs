//! dbgen value domains: nations, regions, part naming vocabularies, ship
//! modes, priorities, and the comment text corpus (with the seeded phrase
//! injections the selective queries depend on).

/// The 25 TPC-H nations with their region keys, in nationkey order.
pub const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

/// The 5 TPC-H regions, in regionkey order.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// Part-name color vocabulary (dbgen uses 92 colors; this is the subset the
/// queries probe plus filler, which preserves selectivities well enough).
pub const COLORS: [&str; 32] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "dodger",
    "drab",
    "firebrick",
    "forest",
    "frosted",
    "gainsboro",
    "ghost",
    "green",
    "goldenrod",
];

/// p_type syllable 1.
pub const TYPE_S1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
/// p_type syllable 2.
pub const TYPE_S2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
/// p_type syllable 3.
pub const TYPE_S3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// p_container syllable 1.
pub const CONTAINER_S1: [&str; 5] = ["SM", "LG", "MED", "JUMBO", "WRAP"];
/// p_container syllable 2.
pub const CONTAINER_S2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

/// Market segments (Q3 probes `BUILDING`).
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

/// Order priorities (Q4 probes the `1-URGENT`/`2-HIGH` prefix space).
pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Ship modes (Q12 probes MAIL/SHIP, Q19 probes AIR/AIR REG).
pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// Ship instructions (Q19 probes `DELIVER IN PERSON`).
pub const SHIP_INSTRUCTS: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];

/// Filler vocabulary for comments.
pub const COMMENT_WORDS: [&str; 24] = [
    "furiously",
    "quickly",
    "carefully",
    "blithely",
    "slyly",
    "ideas",
    "deposits",
    "foxes",
    "packages",
    "accounts",
    "pinto",
    "beans",
    "instructions",
    "theodolites",
    "platelets",
    "pearls",
    "sauternes",
    "asymptotes",
    "dolphins",
    "wake",
    "sleep",
    "haggle",
    "nag",
    "dazzle",
];

/// Q22's selective phone country codes (10 + nationkey).
pub const Q22_COUNTRY_CODES: [&str; 7] = ["13", "31", "23", "29", "30", "18", "17"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_cover_query_constants() {
        // Nations the queries name.
        for n in ["FRANCE", "GERMANY", "BRAZIL", "SAUDI ARABIA", "CANADA"] {
            assert!(NATIONS.iter().any(|(name, _)| *name == n), "{n}");
        }
        // Regions the queries name.
        for r in ["ASIA", "EUROPE", "AMERICA", "MIDDLE EAST"] {
            assert!(REGIONS.contains(&r), "{r}");
        }
        // Q9/Q20 colors.
        assert!(COLORS.contains(&"green"));
        assert!(COLORS.contains(&"forest"));
        // Q8's full type and Q2's BRASS suffix.
        assert!(TYPE_S1.contains(&"ECONOMY"));
        assert!(TYPE_S2.contains(&"ANODIZED"));
        assert!(TYPE_S3.contains(&"STEEL"));
        assert!(TYPE_S3.contains(&"BRASS"));
        // Q19 containers.
        for c in ["SM", "MED", "LG"] {
            assert!(CONTAINER_S1.contains(&c));
        }
        // Q12/Q19 ship modes.
        assert!(SHIP_MODES.contains(&"MAIL"));
        assert!(SHIP_MODES.contains(&"SHIP"));
        assert!(SHIP_MODES.contains(&"AIR"));
    }

    #[test]
    fn nation_region_keys_valid() {
        for (_, r) in NATIONS {
            assert!((0..5).contains(&r));
        }
        // Every region has at least one nation.
        for r in 0..5 {
            assert!(NATIONS.iter().any(|(_, k)| *k == r));
        }
    }
}
