//! # sirius-tpch — TPC-H workload: dbgen-style generator and the 22 queries
//!
//! The paper's evaluation is TPC-H (§4.1). This crate provides a seeded,
//! scale-factor-parameterized data generator faithful to dbgen's schemas and
//! value domains — every selective predicate of the 22 queries (brands,
//! containers, ship modes, nation/region names, comment substrings like
//! `%special%requests%`, phone country codes) draws from the same domains
//! dbgen uses, so every query is exercised meaningfully at any scale — plus
//! the 22 queries in the supported SQL dialect.
//!
//! ```
//! use sirius_tpch::{TpchGenerator, queries};
//!
//! let data = TpchGenerator::new(0.001).generate();
//! assert_eq!(data.table("region").unwrap().num_rows(), 5);
//! assert_eq!(queries::all().len(), 22);
//! ```

#![warn(missing_docs)]

pub mod gen;
pub mod queries;
pub mod schema;
pub mod text;

pub use gen::{TpchData, TpchGenerator};
