//! TPC-H table schemas and base cardinalities.

use sirius_columnar::{DataType, Field, Schema};

fn f(name: &str, t: DataType) -> Field {
    Field::new(name, t)
}

/// `region` schema (5 rows, fixed).
pub fn region() -> Schema {
    Schema::new(vec![
        f("r_regionkey", DataType::Int64),
        f("r_name", DataType::Utf8),
        f("r_comment", DataType::Utf8),
    ])
}

/// `nation` schema (25 rows, fixed).
pub fn nation() -> Schema {
    Schema::new(vec![
        f("n_nationkey", DataType::Int64),
        f("n_name", DataType::Utf8),
        f("n_regionkey", DataType::Int64),
        f("n_comment", DataType::Utf8),
    ])
}

/// `supplier` schema (SF × 10 000 rows).
pub fn supplier() -> Schema {
    Schema::new(vec![
        f("s_suppkey", DataType::Int64),
        f("s_name", DataType::Utf8),
        f("s_address", DataType::Utf8),
        f("s_nationkey", DataType::Int64),
        f("s_phone", DataType::Utf8),
        f("s_acctbal", DataType::Float64),
        f("s_comment", DataType::Utf8),
    ])
}

/// `customer` schema (SF × 150 000 rows).
pub fn customer() -> Schema {
    Schema::new(vec![
        f("c_custkey", DataType::Int64),
        f("c_name", DataType::Utf8),
        f("c_address", DataType::Utf8),
        f("c_nationkey", DataType::Int64),
        f("c_phone", DataType::Utf8),
        f("c_acctbal", DataType::Float64),
        f("c_mktsegment", DataType::Utf8),
        f("c_comment", DataType::Utf8),
    ])
}

/// `part` schema (SF × 200 000 rows).
pub fn part() -> Schema {
    Schema::new(vec![
        f("p_partkey", DataType::Int64),
        f("p_name", DataType::Utf8),
        f("p_mfgr", DataType::Utf8),
        f("p_brand", DataType::Utf8),
        f("p_type", DataType::Utf8),
        f("p_size", DataType::Int64),
        f("p_container", DataType::Utf8),
        f("p_retailprice", DataType::Float64),
        f("p_comment", DataType::Utf8),
    ])
}

/// `partsupp` schema (SF × 800 000 rows; 4 suppliers per part).
pub fn partsupp() -> Schema {
    Schema::new(vec![
        f("ps_partkey", DataType::Int64),
        f("ps_suppkey", DataType::Int64),
        f("ps_availqty", DataType::Int64),
        f("ps_supplycost", DataType::Float64),
        f("ps_comment", DataType::Utf8),
    ])
}

/// `orders` schema (SF × 1 500 000 rows).
pub fn orders() -> Schema {
    Schema::new(vec![
        f("o_orderkey", DataType::Int64),
        f("o_custkey", DataType::Int64),
        f("o_orderstatus", DataType::Utf8),
        f("o_totalprice", DataType::Float64),
        f("o_orderdate", DataType::Date32),
        f("o_orderpriority", DataType::Utf8),
        f("o_clerk", DataType::Utf8),
        f("o_shippriority", DataType::Int64),
        f("o_comment", DataType::Utf8),
    ])
}

/// `lineitem` schema (≈ SF × 6 000 000 rows).
pub fn lineitem() -> Schema {
    Schema::new(vec![
        f("l_orderkey", DataType::Int64),
        f("l_partkey", DataType::Int64),
        f("l_suppkey", DataType::Int64),
        f("l_linenumber", DataType::Int64),
        f("l_quantity", DataType::Float64),
        f("l_extendedprice", DataType::Float64),
        f("l_discount", DataType::Float64),
        f("l_tax", DataType::Float64),
        f("l_returnflag", DataType::Utf8),
        f("l_linestatus", DataType::Utf8),
        f("l_shipdate", DataType::Date32),
        f("l_commitdate", DataType::Date32),
        f("l_receiptdate", DataType::Date32),
        f("l_shipinstruct", DataType::Utf8),
        f("l_shipmode", DataType::Utf8),
        f("l_comment", DataType::Utf8),
    ])
}

/// All `(name, schema, base_rows_at_sf1)` triples.
pub fn all_tables() -> Vec<(&'static str, Schema, u64)> {
    vec![
        ("region", region(), 5),
        ("nation", nation(), 25),
        ("supplier", supplier(), 10_000),
        ("customer", customer(), 150_000),
        ("part", part(), 200_000),
        ("partsupp", partsupp(), 800_000),
        ("orders", orders(), 1_500_000),
        ("lineitem", lineitem(), 6_000_000),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_inventory() {
        let tables = all_tables();
        assert_eq!(tables.len(), 8);
        assert_eq!(tables.iter().map(|(_, s, _)| s.len()).sum::<usize>(), 61);
        // lineitem is the widest and biggest.
        let li = tables.iter().find(|(n, _, _)| *n == "lineitem").unwrap();
        assert_eq!(li.1.len(), 16);
        assert_eq!(li.2, 6_000_000);
    }
}
