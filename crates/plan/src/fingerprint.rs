//! Stable structural fingerprints over normalized plans.
//!
//! A serving system sees the same parameterized query *shapes* endlessly
//! with only the literals changing. [`fingerprint`] hashes a [`Rel`] tree
//! into a [`PlanFingerprint`] with two independent 64-bit lanes:
//!
//! - **`shape`** covers everything structural — operator kinds, column
//!   ordinals, operators, table names, schemas, join kinds, aliases, and
//!   the *types* of literals — so two plans that differ only in literal
//!   values share a shape bucket.
//! - **`constants`** covers the literal values themselves (scalar
//!   payloads, LIKE patterns, IN lists, limit bounds).
//!
//! Plan caches key compiled artifacts on the full `(shape, constants)`
//! pair; runtime-feedback stores key on `shape` alone so cardinality
//! observations transfer across literal variations of the same shape.
//!
//! The hash is a hand-rolled FNV-1a walk: deterministic across processes
//! and runs (no `RandomState`), independent of pointer identity, and
//! stable under re-serialization. Fingerprint callers should hash the
//! [`normalize`](crate::normalize)d tree so trivially different but
//! equivalent plans land in the same bucket.

use crate::expr::{AggExpr, Expr, SortExpr};
use crate::rel::{ExchangeKind, Rel};
use sirius_columnar::{Scalar, Schema};

/// A two-lane structural hash of a plan tree. See the module docs for
/// what lands in each lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanFingerprint {
    /// Structure lane: operator tree, ordinals, names, literal *types*.
    pub shape: u64,
    /// Constants lane: literal *values* only.
    pub constants: u64,
}

impl std::fmt::Display for PlanFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}:{:016x}", self.shape, self.constants)
    }
}

impl PlanFingerprint {
    /// True when `other` is the same shape (possibly different literals).
    pub fn same_shape(&self, other: &PlanFingerprint) -> bool {
        self.shape == other.shape
    }
}

/// Fingerprint a plan tree. Hash the [`normalize`](crate::normalize)d
/// form for cache keying — see the module docs.
pub fn fingerprint(plan: &Rel) -> PlanFingerprint {
    let mut h = Walk::new();
    h.rel(plan);
    PlanFingerprint {
        shape: h.shape.0,
        constants: h.constants.0,
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One FNV-1a lane.
struct Fnv(u64);

impl Fnv {
    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }
}

/// The two-lane tree walk.
struct Walk {
    shape: Fnv,
    constants: Fnv,
}

impl Walk {
    fn new() -> Self {
        Walk {
            shape: Fnv(FNV_OFFSET),
            constants: Fnv(FNV_OFFSET),
        }
    }

    /// Structural tag (operator/variant discriminators, option flags).
    fn tag(&mut self, t: &str) {
        self.shape.str(t);
    }

    fn rel(&mut self, rel: &Rel) {
        match rel {
            Rel::Read {
                table,
                schema,
                projection,
            } => {
                self.tag("read");
                self.shape.str(table);
                self.schema(schema);
                match projection {
                    Some(cols) => {
                        self.tag("proj");
                        self.shape.usize(cols.len());
                        for c in cols {
                            self.shape.usize(*c);
                        }
                    }
                    None => self.tag("all"),
                }
            }
            Rel::Filter { input, predicate } => {
                self.tag("filter");
                self.expr(predicate);
                self.rel(input);
            }
            Rel::Project { input, exprs } => {
                self.tag("project");
                self.shape.usize(exprs.len());
                for (e, name) in exprs {
                    self.expr(e);
                    self.shape.str(name);
                }
                self.rel(input);
            }
            Rel::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                self.tag("aggregate");
                self.shape.usize(group_by.len());
                for e in group_by {
                    self.expr(e);
                }
                self.shape.usize(aggregates.len());
                for a in aggregates {
                    self.agg(a);
                }
                self.rel(input);
            }
            Rel::Join {
                left,
                right,
                kind,
                left_keys,
                right_keys,
                residual,
            } => {
                self.tag("join");
                self.shape.str(&format!("{kind:?}"));
                self.shape.usize(left_keys.len());
                for k in left_keys {
                    self.expr(k);
                }
                for k in right_keys {
                    self.expr(k);
                }
                match residual {
                    Some(e) => {
                        self.tag("residual");
                        self.expr(e);
                    }
                    None => self.tag("none"),
                }
                self.rel(left);
                self.rel(right);
            }
            Rel::Sort { input, keys } => {
                self.tag("sort");
                self.shape.usize(keys.len());
                for k in keys {
                    self.sort_key(k);
                }
                self.rel(input);
            }
            Rel::Limit {
                input,
                offset,
                fetch,
            } => {
                // Presence is structure; the bounds themselves are
                // literals the user tunes per request.
                self.tag("limit");
                self.constants.usize(*offset);
                match fetch {
                    Some(n) => {
                        self.tag("fetch");
                        self.constants.usize(*n);
                    }
                    None => self.tag("nofetch"),
                }
                self.rel(input);
            }
            Rel::Distinct { input } => {
                self.tag("distinct");
                self.rel(input);
            }
            Rel::Exchange { input, kind } => {
                self.tag("exchange");
                match kind {
                    ExchangeKind::Shuffle { keys } => {
                        self.tag("shuffle");
                        self.shape.usize(keys.len());
                        for k in keys {
                            self.expr(k);
                        }
                    }
                    ExchangeKind::Broadcast => self.tag("broadcast"),
                    ExchangeKind::Merge => self.tag("merge"),
                    ExchangeKind::MultiCast { targets } => {
                        self.tag("multicast");
                        self.shape.usize(targets.len());
                        for t in targets {
                            self.shape.usize(*t);
                        }
                    }
                }
                self.rel(input);
            }
        }
    }

    fn schema(&mut self, schema: &Schema) {
        self.shape.usize(schema.fields.len());
        for f in &schema.fields {
            self.shape.str(&f.name);
            self.shape.str(&format!("{:?}", f.data_type));
        }
    }

    fn expr(&mut self, expr: &Expr) {
        match expr {
            Expr::Column(i) => {
                self.tag("col");
                self.shape.usize(*i);
            }
            Expr::Literal(s) => {
                self.tag("lit");
                self.scalar(s);
            }
            Expr::Binary { op, left, right } => {
                self.tag("bin");
                self.shape.str(&format!("{op:?}"));
                self.expr(left);
                self.expr(right);
            }
            Expr::Unary { op, input } => {
                self.tag("un");
                self.shape.str(&format!("{op:?}"));
                self.expr(input);
            }
            Expr::Cast { input, to } => {
                self.tag("cast");
                self.shape.str(&format!("{to:?}"));
                self.expr(input);
            }
            Expr::Like {
                input,
                pattern,
                negated,
            } => {
                self.tag(if *negated { "notlike" } else { "like" });
                self.constants.str(pattern);
                self.expr(input);
            }
            Expr::InList {
                input,
                list,
                negated,
            } => {
                self.tag(if *negated { "notin" } else { "in" });
                self.shape.usize(list.len());
                for s in list {
                    self.scalar(s);
                }
                self.expr(input);
            }
            Expr::Case {
                branches,
                otherwise,
            } => {
                self.tag("case");
                self.shape.usize(branches.len());
                for (c, v) in branches {
                    self.expr(c);
                    self.expr(v);
                }
                match otherwise {
                    Some(e) => {
                        self.tag("else");
                        self.expr(e);
                    }
                    None => self.tag("noelse"),
                }
            }
            Expr::Substring { input, start, len } => {
                self.tag("substr");
                self.constants.usize(*start);
                self.constants.usize(*len);
                self.expr(input);
            }
        }
    }

    /// Literal: type tag into the shape lane, value into the constants
    /// lane — the core of the two-lane split.
    fn scalar(&mut self, s: &Scalar) {
        match s {
            Scalar::Null => self.tag("null"),
            Scalar::Bool(v) => {
                self.tag("bool");
                self.constants.u64(u64::from(*v));
            }
            Scalar::Int32(v) => {
                self.tag("i32");
                self.constants.u64(*v as u64);
            }
            Scalar::Int64(v) => {
                self.tag("i64");
                self.constants.u64(*v as u64);
            }
            Scalar::Float64(v) => {
                self.tag("f64");
                self.constants.u64(v.to_bits());
            }
            Scalar::Utf8(v) => {
                self.tag("utf8");
                self.constants.str(v);
            }
            Scalar::Date32(v) => {
                self.tag("date");
                self.constants.u64(*v as u64);
            }
        }
    }

    fn agg(&mut self, a: &AggExpr) {
        self.shape.str(&format!("{:?}", a.func));
        match &a.input {
            Some(e) => {
                self.tag("arg");
                self.expr(e);
            }
            None => self.tag("star"),
        }
        self.shape.str(&a.name);
    }

    fn sort_key(&mut self, k: &SortExpr) {
        self.tag(if k.ascending { "asc" } else { "desc" });
        self.expr(&k.expr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlanBuilder;
    use crate::expr;
    use sirius_columnar::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Utf8),
        ])
    }

    fn filtered(threshold: i64) -> Rel {
        PlanBuilder::scan("t", schema())
            .filter(expr::gt(expr::col(0), expr::lit(Scalar::Int64(threshold))))
            .build()
    }

    #[test]
    fn identical_plans_hash_equal() {
        assert_eq!(fingerprint(&filtered(5)), fingerprint(&filtered(5)));
    }

    #[test]
    fn literal_change_keeps_shape_moves_constants() {
        let a = fingerprint(&filtered(5));
        let b = fingerprint(&filtered(9));
        assert_eq!(a.shape, b.shape, "same shape bucket across literals");
        assert_ne!(a.constants, b.constants, "constants lane must differ");
        assert!(a.same_shape(&b));
    }

    #[test]
    fn literal_type_change_moves_shape() {
        let int = PlanBuilder::scan("t", schema())
            .filter(expr::gt(expr::col(0), expr::lit(Scalar::Int64(5))))
            .build();
        let float = PlanBuilder::scan("t", schema())
            .filter(expr::gt(expr::col(0), expr::lit(Scalar::Float64(5.0))))
            .build();
        assert_ne!(fingerprint(&int).shape, fingerprint(&float).shape);
    }

    #[test]
    fn structure_change_moves_shape() {
        let plain = filtered(5);
        let distinct = PlanBuilder::scan("t", schema())
            .filter(expr::gt(expr::col(0), expr::lit(Scalar::Int64(5))))
            .distinct()
            .build();
        assert_ne!(fingerprint(&plain).shape, fingerprint(&distinct).shape);
        let other_col = PlanBuilder::scan("t", schema())
            .filter(expr::gt(expr::col(1), expr::lit(Scalar::Int64(5))))
            .build();
        assert_ne!(fingerprint(&plain).shape, fingerprint(&other_col).shape);
    }

    #[test]
    fn table_rename_moves_shape() {
        let a = PlanBuilder::scan("t", schema()).build();
        let b = PlanBuilder::scan("u", schema()).build();
        assert_ne!(fingerprint(&a).shape, fingerprint(&b).shape);
    }

    #[test]
    fn display_is_two_hex_lanes() {
        let fp = fingerprint(&filtered(5));
        let text = fp.to_string();
        let (s, c) = text.split_once(':').expect("lane separator");
        assert_eq!(s.len(), 16);
        assert_eq!(c.len(), 16);
    }
}
