//! The shared plan walk: every consumer of a [`Rel`] tree — the GPU
//! pipeline compiler, the CPU interpreter, the distributed fragmenter —
//! traverses plans through this module instead of hand-rolling its own
//! recursion.
//!
//! Three entry points cover the traversal shapes the engines need:
//!
//! * [`fold`] — bottom-up evaluation driven by a [`Fold`] implementation.
//!   The driver assigns every operator a stable **pre-order id**
//!   ([`Node`]: root = 0, children numbered depth-first left-to-right)
//!   and hands it to the callbacks, so execution, `EXPLAIN ANALYZE`
//!   rendering, and trace spans all key their per-operator data the same
//!   way without re-deriving ids themselves.
//! * [`visit`] — read-only pre-order traversal for structural checks
//!   (feature scans, invariant validation).
//! * [`try_rewrite`] — bottom-up fallible rewriting for normalization
//!   passes and fragment-boundary substitution.
//!
//! # Example: counting joins with a fold
//!
//! ```
//! use sirius_plan::builder::PlanBuilder;
//! use sirius_plan::visit::{fold, Fold, Node};
//! use sirius_plan::{expr, JoinKind, Rel};
//! use sirius_columnar::{DataType, Field, Schema};
//!
//! struct JoinCounter;
//! impl Fold for JoinCounter {
//!     type Output = usize;
//!     type Error = std::convert::Infallible;
//!     fn fold(
//!         &mut self,
//!         _node: Node,
//!         rel: &Rel,
//!         children: Vec<usize>,
//!     ) -> Result<usize, Self::Error> {
//!         let here = usize::from(matches!(rel, Rel::Join { .. }));
//!         Ok(here + children.into_iter().sum::<usize>())
//!     }
//! }
//!
//! let scan = || PlanBuilder::scan("t", Schema::new(vec![Field::new("k", DataType::Int64)]));
//! let plan = scan()
//!     .join(scan(), JoinKind::Inner, vec![expr::col(0)], vec![expr::col(0)], None)
//!     .build();
//! assert_eq!(fold(&mut JoinCounter, &plan), Ok(1));
//! ```

use crate::rel::Rel;

/// A plan operator's stable pre-order id and tree depth, assigned by the
/// fold/visit drivers. Ids are dense: a tree with `n` operators uses ids
/// `0..n`, the root is `0`, and a node's first child is `id + 1` (each
/// subsequent child starts after the previous sibling's whole subtree).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Node {
    /// Pre-order id (root = 0, children depth-first left-to-right).
    pub id: u32,
    /// Tree depth (root = 0).
    pub depth: u32,
}

impl Node {
    /// The root of a plan tree.
    pub const ROOT: Node = Node { id: 0, depth: 0 };

    /// The context of this node's first child.
    pub fn first_child(self) -> Node {
        Node {
            id: self.id + 1,
            depth: self.depth + 1,
        }
    }

    /// The sibling context following a child whose subtree is `subtree`.
    pub fn after(self, subtree: &Rel) -> Node {
        Node {
            id: self.id + subtree_size(subtree),
            depth: self.depth,
        }
    }
}

/// Number of operators in `rel`'s subtree — the step between a node's
/// pre-order id and its next sibling's.
pub fn subtree_size(rel: &Rel) -> u32 {
    rel.node_count() as u32
}

/// A bottom-up plan evaluation. [`fold`] drives the recursion: children are
/// folded first (left-to-right) and their outputs handed to
/// [`Fold::fold`] together with the operator and its pre-order [`Node`].
///
/// [`Fold::enter`] runs before a subtree's children are visited and may
/// claim the whole subtree — the escape hatch for fused operator pairs
/// (e.g. a CPU engine charging filter-over-scan as a single pass) and for
/// subtree substitution (a fragment executor materializing everything
/// below an exchange).
pub trait Fold {
    /// Value produced per subtree.
    type Output;
    /// Error type short-circuiting the walk.
    type Error;

    /// Intercept `rel` before its children are folded. Returning `Some`
    /// replaces the subtree's entire fold (children are not visited);
    /// the default claims nothing.
    fn enter(&mut self, node: Node, rel: &Rel) -> Option<Result<Self::Output, Self::Error>> {
        let _ = (node, rel);
        None
    }

    /// Combine the folded `children` of `rel` into this subtree's output.
    /// `children` holds one entry per [`Rel::children`] element, in order.
    fn fold(
        &mut self,
        node: Node,
        rel: &Rel,
        children: Vec<Self::Output>,
    ) -> Result<Self::Output, Self::Error>;
}

/// Fold `rel` bottom-up with pre-order ids assigned from [`Node::ROOT`].
pub fn fold<F: Fold>(f: &mut F, rel: &Rel) -> Result<F::Output, F::Error> {
    fold_at(f, rel, Node::ROOT)
}

/// [`fold`] starting from an explicit node context (sub-plan folding).
pub fn fold_at<F: Fold>(f: &mut F, rel: &Rel, node: Node) -> Result<F::Output, F::Error> {
    if let Some(claimed) = f.enter(node, rel) {
        return claimed;
    }
    let children = rel.children();
    let mut outputs = Vec::with_capacity(children.len());
    let mut child = node.first_child();
    for c in children {
        outputs.push(fold_at(f, c, child)?);
        child = child.after(c);
    }
    f.fold(node, rel, outputs)
}

/// Pre-order read-only traversal: `f` sees every operator with its
/// pre-order [`Node`], parents before children.
pub fn visit<'a>(rel: &'a Rel, f: &mut impl FnMut(Node, &'a Rel)) {
    fn walk<'a>(rel: &'a Rel, node: Node, f: &mut impl FnMut(Node, &'a Rel)) {
        f(node, rel);
        let mut child = node.first_child();
        for c in rel.children() {
            walk(c, child, f);
            child = child.after(c);
        }
    }
    walk(rel, Node::ROOT, f);
}

/// Fallible pre-order traversal: stops at the first error.
pub fn try_visit<'a, E>(
    rel: &'a Rel,
    f: &mut impl FnMut(Node, &'a Rel) -> Result<(), E>,
) -> Result<(), E> {
    fn walk<'a, E>(
        rel: &'a Rel,
        node: Node,
        f: &mut impl FnMut(Node, &'a Rel) -> Result<(), E>,
    ) -> Result<(), E> {
        f(node, rel)?;
        let mut child = node.first_child();
        for c in rel.children() {
            walk(c, child, f)?;
            child = child.after(c);
        }
        Ok(())
    }
    walk(rel, Node::ROOT, f)
}

/// Bottom-up rewrite: children are rewritten first (left-to-right), the
/// node is rebuilt around them, and `f` maps the rebuilt node to its
/// replacement. Normalization passes and the fragment executor's
/// exchange-to-temp-table substitution are both this shape.
pub fn try_rewrite<E>(rel: &Rel, f: &mut impl FnMut(Rel) -> Result<Rel, E>) -> Result<Rel, E> {
    let rebuilt = match rel {
        Rel::Read { .. } => rel.clone(),
        Rel::Filter { input, predicate } => Rel::Filter {
            input: Box::new(try_rewrite(input, f)?),
            predicate: predicate.clone(),
        },
        Rel::Project { input, exprs } => Rel::Project {
            input: Box::new(try_rewrite(input, f)?),
            exprs: exprs.clone(),
        },
        Rel::Aggregate {
            input,
            group_by,
            aggregates,
        } => Rel::Aggregate {
            input: Box::new(try_rewrite(input, f)?),
            group_by: group_by.clone(),
            aggregates: aggregates.clone(),
        },
        Rel::Join {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            residual,
        } => {
            // Fixed left-then-right order: fragment executors rely on the
            // rewrite order for collective sequencing.
            let l = try_rewrite(left, f)?;
            let r = try_rewrite(right, f)?;
            Rel::Join {
                left: Box::new(l),
                right: Box::new(r),
                kind: *kind,
                left_keys: left_keys.clone(),
                right_keys: right_keys.clone(),
                residual: residual.clone(),
            }
        }
        Rel::Sort { input, keys } => Rel::Sort {
            input: Box::new(try_rewrite(input, f)?),
            keys: keys.clone(),
        },
        Rel::Limit {
            input,
            offset,
            fetch,
        } => Rel::Limit {
            input: Box::new(try_rewrite(input, f)?),
            offset: *offset,
            fetch: *fetch,
        },
        Rel::Distinct { input } => Rel::Distinct {
            input: Box::new(try_rewrite(input, f)?),
        },
        Rel::Exchange { input, kind } => Rel::Exchange {
            input: Box::new(try_rewrite(input, f)?),
            kind: kind.clone(),
        },
    };
    f(rebuilt)
}

/// Infallible [`try_rewrite`].
pub fn rewrite(rel: &Rel, f: &mut impl FnMut(Rel) -> Rel) -> Rel {
    match try_rewrite::<std::convert::Infallible>(rel, &mut |r| Ok(f(r))) {
        Ok(r) => r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlanBuilder;
    use crate::expr::{self, col, gt, lit_i64};
    use crate::JoinKind;
    use sirius_columnar::{DataType, Field, Schema};

    fn scan(name: &str) -> PlanBuilder {
        PlanBuilder::scan(name, Schema::new(vec![Field::new("k", DataType::Int64)]))
    }

    /// Join(0) { Filter(1) -> Read(2), Read(3) } — ids skip whole subtrees.
    fn join_plan() -> Rel {
        scan("l")
            .filter(gt(col(0), lit_i64(0)))
            .join(scan("r"), JoinKind::Inner, vec![col(0)], vec![col(0)], None)
            .build()
    }

    #[test]
    fn visit_assigns_preorder_ids() {
        let mut seen = Vec::new();
        visit(&join_plan(), &mut |node, rel| {
            seen.push((node.id, node.depth, std::mem::discriminant(rel)));
        });
        let ids: Vec<u32> = seen.iter().map(|(i, _, _)| *i).collect();
        let depths: Vec<u32> = seen.iter().map(|(_, d, _)| *d).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(depths, vec![0, 1, 2, 1]);
    }

    #[test]
    fn fold_hands_children_in_order() {
        struct Tables;
        impl Fold for Tables {
            type Output = Vec<(u32, String)>;
            type Error = std::convert::Infallible;
            fn fold(
                &mut self,
                node: Node,
                rel: &Rel,
                children: Vec<Self::Output>,
            ) -> Result<Self::Output, Self::Error> {
                let mut out: Vec<(u32, String)> = children.into_iter().flatten().collect();
                if let Rel::Read { table, .. } = rel {
                    out.push((node.id, table.clone()));
                }
                Ok(out)
            }
        }
        let got = fold(&mut Tables, &join_plan()).unwrap();
        assert_eq!(got, vec![(2, "l".to_string()), (3, "r".to_string())]);
    }

    #[test]
    fn enter_claims_whole_subtrees() {
        struct CountUnclaimed;
        impl Fold for CountUnclaimed {
            type Output = u32;
            type Error = std::convert::Infallible;
            fn enter(&mut self, _node: Node, rel: &Rel) -> Option<Result<u32, Self::Error>> {
                // Claim filter subtrees whole: their children must not be
                // visited.
                matches!(rel, Rel::Filter { .. }).then_some(Ok(100))
            }
            fn fold(
                &mut self,
                _node: Node,
                _rel: &Rel,
                children: Vec<u32>,
            ) -> Result<u32, Self::Error> {
                Ok(1 + children.into_iter().sum::<u32>())
            }
        }
        // Join(1) + claimed Filter subtree (100) + right Read (1).
        assert_eq!(fold(&mut CountUnclaimed, &join_plan()), Ok(102));
    }

    #[test]
    fn rewrite_rebuilds_bottom_up() {
        // Rename every table; the rewritten tree keeps its shape.
        let out = rewrite(&join_plan(), &mut |r| match r {
            Rel::Read {
                schema, projection, ..
            } => Rel::Read {
                table: "renamed".into(),
                schema,
                projection,
            },
            other => other,
        });
        assert_eq!(out.tables(), vec!["renamed".to_string(); 2]);
        assert_eq!(out.node_count(), 4);
    }

    #[test]
    fn try_rewrite_short_circuits() {
        let mut calls = 0;
        let err: Result<Rel, &str> = try_rewrite(&join_plan(), &mut |r| {
            calls += 1;
            if matches!(r, Rel::Filter { .. }) {
                Err("stop")
            } else {
                Ok(r)
            }
        });
        assert_eq!(err, Err("stop"));
        // Bottom-up: left Read, then the Filter errors; the right subtree
        // is never rebuilt.
        assert_eq!(calls, 2);
    }

    #[test]
    fn subtree_sizes_match_node_counts() {
        let plan = join_plan();
        assert_eq!(subtree_size(&plan), 4);
        let sort = scan("t")
            .aggregate(
                vec![col(0)],
                vec![expr::AggExpr {
                    func: crate::AggFunc::CountStar,
                    input: None,
                    name: "n".into(),
                }],
            )
            .build();
        assert_eq!(subtree_size(&sort), 2);
    }
}
