//! Shared plan-normalization passes.
//!
//! Every engine in the workspace — the GPU pipeline compiler, the CPU
//! reference interpreter, the distributed fragmenter — used to carry its
//! own ad-hoc simplifications (the GPU engine coalesced adjacent filters
//! while collecting pipeline operators; the SQL frontend pruned scan
//! columns). These passes hoist the plan-shape-only subset here so all
//! consumers normalize identically and per-operator ids are assigned on
//! the same tree everywhere.
//!
//! Both passes are semantics-preserving: the normalized plan has the
//! exact same output schema (names, types, nullability) and produces the
//! exact same rows as the input plan.

use crate::expr::{self, Expr};
use crate::rel::Rel;
use crate::visit::rewrite;
use std::collections::BTreeSet;

/// Apply all normalization passes ([`pushdown_projections`], then
/// [`coalesce_filters`]). Deterministic: equal inputs normalize to equal
/// outputs.
pub fn normalize(rel: &Rel) -> Rel {
    coalesce_filters(&pushdown_projections(rel))
}

/// Merge adjacent `Filter` operators into one conjunction.
///
/// `Filter(outer, Filter(inner, x))` becomes `Filter(inner AND outer, x)`
/// — the operand order matches evaluation order (inner predicate first),
/// so engines that short-circuit `AND` see the same work. The surviving
/// filter sits where the *outermost* one was, which is the node that
/// per-operator stats attribute the fused predicate to.
pub fn coalesce_filters(rel: &Rel) -> Rel {
    rewrite(rel, &mut |r| match r {
        Rel::Filter {
            input,
            predicate: outer,
        } => match *input {
            // Children are already rewritten, so the inner filter is
            // itself fully coalesced: one collapse step per level suffices.
            Rel::Filter {
                input: grand,
                predicate: inner,
            } => Rel::Filter {
                input: grand,
                predicate: expr::and(inner, outer),
            },
            other => Rel::Filter {
                input: Box::new(other),
                predicate: outer,
            },
        },
        other => other,
    })
}

/// Push column selections from `Project → [Filter]* → Read` chains into
/// the scan.
///
/// When a projection (plus any filters between it and the scan) references
/// a proper subset of the scanned columns, the scan's `projection` list is
/// narrowed to that subset and every expression in the chain is remapped
/// to the new ordinals. Output schemas are unchanged — only the scan
/// width shrinks. Chains broken by joins, aggregates, or other operators
/// are left alone: those engines' key/ordinal conventions (e.g. aggregate
/// key naming) stay byte-identical.
pub fn pushdown_projections(rel: &Rel) -> Rel {
    rewrite(rel, &mut |r| match r {
        Rel::Project { input, exprs } => match push_into_chain(&exprs, *input) {
            Ok((narrowed, keep)) => Rel::Project {
                input: Box::new(narrowed),
                exprs: remap_project_exprs(&exprs, &keep),
            },
            Err(unchanged) => Rel::Project {
                input: Box::new(unchanged),
                exprs,
            },
        },
        other => other,
    })
}

/// Try to narrow the scan under a `[Filter]* → Read` chain to the columns
/// referenced by `project_exprs` and the chain's predicates. `Ok` carries
/// the rewritten chain (predicates remapped) plus the sorted kept ordinals
/// so the caller can remap its own expressions; `Err` returns the input
/// untouched (chain broken, nothing to prune, or out-of-range refs left
/// for `validate` to report).
fn push_into_chain(project_exprs: &[(Expr, String)], input: Rel) -> Result<(Rel, Vec<usize>), Rel> {
    // Walk down the filter chain to the scan.
    let mut predicates = Vec::new();
    let mut cur = &input;
    loop {
        match cur {
            Rel::Filter {
                input: inner,
                predicate,
            } => {
                predicates.push(predicate);
                cur = inner;
            }
            Rel::Read {
                schema, projection, ..
            } => {
                let width = match projection {
                    Some(p) => p.len(),
                    None => schema.len(),
                };
                let mut used = BTreeSet::new();
                let mut refs = Vec::new();
                for (e, _) in project_exprs {
                    e.referenced_columns(&mut refs);
                }
                for p in &predicates {
                    p.referenced_columns(&mut refs);
                }
                used.extend(refs);
                if used.is_empty() || used.len() >= width || used.iter().any(|&c| c >= width) {
                    return Err(input);
                }
                let keep: Vec<usize> = used.into_iter().collect();
                let remap = |old: usize| keep.binary_search(&old).expect("kept column present");

                // Rebuild bottom-up: narrowed scan, then the filter chain
                // (innermost predicate first), all remapped.
                let Rel::Read {
                    table,
                    schema,
                    projection,
                } = cur.clone()
                else {
                    unreachable!("loop stops at Read");
                };
                let base: Vec<usize> = match projection {
                    Some(p) => p,
                    None => (0..schema.len()).collect(),
                };
                let mut rebuilt = Rel::Read {
                    table,
                    schema,
                    projection: Some(keep.iter().map(|&c| base[c]).collect()),
                };
                for predicate in predicates.into_iter().rev() {
                    rebuilt = Rel::Filter {
                        input: Box::new(rebuilt),
                        predicate: predicate.remap_columns(&remap),
                    };
                }
                return Ok((rebuilt, keep));
            }
            _ => return Err(input),
        }
    }
}

/// Ordinal remapping for the exprs of a `Project` whose chain was narrowed
/// by [`push_into_chain`]: old scan-output ordinal → position in `keep`.
fn remap_project_exprs(exprs: &[(Expr, String)], keep: &[usize]) -> Vec<(Expr, String)> {
    exprs
        .iter()
        .map(|(e, name)| {
            (
                e.remap_columns(&|old| keep.binary_search(&old).expect("kept column present")),
                name.clone(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlanBuilder;
    use crate::expr::{col, gt, lit_i64, lt};
    use sirius_columnar::{DataType, Field, Schema};

    fn wide_scan() -> PlanBuilder {
        PlanBuilder::scan(
            "t",
            Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Int64),
                Field::new("c", DataType::Int64),
                Field::new("d", DataType::Int64),
            ]),
        )
    }

    #[test]
    fn coalesces_filter_stacks() {
        let plan = wide_scan()
            .filter(gt(col(0), lit_i64(1)))
            .filter(lt(col(1), lit_i64(9)))
            .filter(gt(col(2), lit_i64(3)))
            .build();
        let out = coalesce_filters(&plan);
        assert_eq!(out.node_count(), 2);
        let Rel::Filter { predicate, .. } = &out else {
            panic!("expected filter root");
        };
        // Inner-to-outer evaluation order: ((f0 AND f1) AND f2).
        let parts = crate::expr::split_conjunction(predicate);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], &gt(col(0), lit_i64(1)));
        assert_eq!(parts[2], &gt(col(2), lit_i64(3)));
        assert_eq!(out.schema().unwrap(), plan.schema().unwrap());
    }

    #[test]
    fn pushes_projection_through_filters_into_scan() {
        let plan = wide_scan()
            .filter(gt(col(1), lit_i64(0)))
            .project(vec![(col(3), "d".into())])
            .build();
        let out = pushdown_projections(&plan);
        // Scan narrowed to {b, d}; predicate/exprs remapped.
        let Rel::Project { input, exprs } = &out else {
            panic!("expected project root");
        };
        let Rel::Filter {
            input: scan,
            predicate,
        } = &**input
        else {
            panic!("expected filter");
        };
        let Rel::Read { projection, .. } = &**scan else {
            panic!("expected read");
        };
        assert_eq!(projection.as_deref(), Some(&[1usize, 3][..]));
        assert_eq!(predicate, &gt(col(0), lit_i64(0)));
        assert_eq!(exprs[0].0, col(1));
        assert_eq!(out.schema().unwrap(), plan.schema().unwrap());
        crate::validate::validate(&out).unwrap();
    }

    #[test]
    fn composes_with_existing_scan_projection() {
        let scan = Rel::Read {
            table: "t".into(),
            schema: Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Int64),
                Field::new("c", DataType::Int64),
                Field::new("d", DataType::Int64),
            ]),
            projection: Some(vec![3, 1, 0]),
        };
        let plan = PlanBuilder::from_rel(scan)
            .project(vec![(col(2), "a".into())])
            .build();
        let out = pushdown_projections(&plan);
        let Rel::Project { input, exprs } = &out else {
            panic!("expected project root");
        };
        let Rel::Read { projection, .. } = &**input else {
            panic!("expected read");
        };
        // Kept output ordinal 2 of [3,1,0] = base column 0.
        assert_eq!(projection.as_deref(), Some(&[0usize][..]));
        assert_eq!(exprs[0].0, col(0));
        assert_eq!(out.schema().unwrap(), plan.schema().unwrap());
    }

    #[test]
    fn leaves_full_width_and_broken_chains_alone() {
        let full = wide_scan()
            .project(vec![
                (col(0), "a".into()),
                (col(1), "b".into()),
                (col(2), "c".into()),
                (col(3), "d".into()),
            ])
            .build();
        assert_eq!(pushdown_projections(&full), full);

        let broken = wide_scan()
            .distinct()
            .project(vec![(col(0), "a".into())])
            .build();
        assert_eq!(pushdown_projections(&broken), broken);

        // Literal-only projections keep the scan whole (validate rejects
        // empty scan projections).
        let literal = wide_scan()
            .project(vec![(lit_i64(1), "one".into())])
            .build();
        assert_eq!(pushdown_projections(&literal), literal);
    }

    #[test]
    fn normalize_preserves_schema_on_composites() {
        let plan = wide_scan()
            .filter(gt(col(0), lit_i64(1)))
            .filter(lt(col(3), lit_i64(9)))
            .project(vec![(col(3), "d".into()), (col(0), "a".into())])
            .build();
        let out = normalize(&plan);
        assert_eq!(out.schema().unwrap(), plan.schema().unwrap());
        crate::validate::validate(&out).unwrap();
        // Both passes fired: one filter left, scan narrowed to {a, d}.
        let Rel::Project { input, .. } = &out else {
            panic!("expected project root");
        };
        assert!(matches!(&**input, Rel::Filter { .. }));
        assert_eq!(input.node_count(), 2);
    }
}
