//! Fluent plan construction.

use crate::expr::{AggExpr, Expr, SortExpr};
use crate::rel::{ExchangeKind, JoinKind, Rel};
use sirius_columnar::Schema;

/// Fluent builder over [`Rel`] trees.
///
/// ```
/// use sirius_plan::{builder::PlanBuilder, expr};
/// use sirius_columnar::{DataType, Field, Schema, Scalar};
///
/// let plan = PlanBuilder::scan(
///     "orders",
///     Schema::new(vec![
///         Field::new("o_orderkey", DataType::Int64),
///         Field::new("o_totalprice", DataType::Float64),
///     ]),
/// )
/// .filter(expr::gt(expr::col(1), expr::lit(Scalar::Float64(100.0))))
/// .project(vec![(expr::col(0), "o_orderkey".into())])
/// .limit(0, Some(10))
/// .build();
/// assert_eq!(plan.node_count(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    rel: Rel,
}

impl PlanBuilder {
    /// Start from a base-table scan.
    pub fn scan(table: impl Into<String>, schema: Schema) -> Self {
        Self {
            rel: Rel::Read {
                table: table.into(),
                schema,
                projection: None,
            },
        }
    }

    /// Wrap an existing relation.
    pub fn from_rel(rel: Rel) -> Self {
        Self { rel }
    }

    /// Add a filter.
    pub fn filter(self, predicate: Expr) -> Self {
        Self {
            rel: Rel::Filter {
                input: Box::new(self.rel),
                predicate,
            },
        }
    }

    /// Add a projection.
    pub fn project(self, exprs: Vec<(Expr, String)>) -> Self {
        Self {
            rel: Rel::Project {
                input: Box::new(self.rel),
                exprs,
            },
        }
    }

    /// Add an aggregation.
    pub fn aggregate(self, group_by: Vec<Expr>, aggregates: Vec<AggExpr>) -> Self {
        Self {
            rel: Rel::Aggregate {
                input: Box::new(self.rel),
                group_by,
                aggregates,
            },
        }
    }

    /// Join with another plan.
    pub fn join(
        self,
        right: PlanBuilder,
        kind: JoinKind,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
        residual: Option<Expr>,
    ) -> Self {
        Self {
            rel: Rel::Join {
                left: Box::new(self.rel),
                right: Box::new(right.rel),
                kind,
                left_keys,
                right_keys,
                residual,
            },
        }
    }

    /// Add a sort.
    pub fn sort(self, keys: Vec<SortExpr>) -> Self {
        Self {
            rel: Rel::Sort {
                input: Box::new(self.rel),
                keys,
            },
        }
    }

    /// Add offset/fetch.
    pub fn limit(self, offset: usize, fetch: Option<usize>) -> Self {
        Self {
            rel: Rel::Limit {
                input: Box::new(self.rel),
                offset,
                fetch,
            },
        }
    }

    /// Add duplicate elimination.
    pub fn distinct(self) -> Self {
        Self {
            rel: Rel::Distinct {
                input: Box::new(self.rel),
            },
        }
    }

    /// Add a distributed exchange.
    pub fn exchange(self, kind: ExchangeKind) -> Self {
        Self {
            rel: Rel::Exchange {
                input: Box::new(self.rel),
                kind,
            },
        }
    }

    /// Finish, returning the relation tree.
    pub fn build(self) -> Rel {
        self.rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr;
    use sirius_columnar::{DataType, Field};

    #[test]
    fn builds_nested_tree() {
        let s = Schema::new(vec![Field::new("k", DataType::Int64)]);
        let plan = PlanBuilder::scan("a", s.clone())
            .join(
                PlanBuilder::scan("b", s),
                JoinKind::Inner,
                vec![expr::col(0)],
                vec![expr::col(0)],
                None,
            )
            .distinct()
            .build();
        assert_eq!(plan.node_count(), 4);
        assert_eq!(plan.schema().unwrap().len(), 2);
    }
}
