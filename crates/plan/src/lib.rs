//! # sirius-plan — Substrait-style query-plan interchange
//!
//! The drop-in story of the paper rests on a standardized plan format: host
//! databases emit query plans in Substrait, and Sirius consumes them without
//! caring which frontend produced them (§3.2.1). This crate is that
//! interchange layer: a self-contained relational IR ([`Rel`]) with scalar
//! expression trees ([`Expr`]), schema inference, validation, a builder API,
//! and a JSON wire encoding (Substrait's official text serialization) used
//! when plans cross the host ↔ Sirius boundary.
//!
//! Expressions reference input columns by ordinal — Substrait "field
//! references" — so plans carry no name-resolution state; names live only in
//! `Read` base schemas and `Project` output aliases.
//!
//! ```
//! use sirius_plan::{builder::PlanBuilder, expr, json};
//! use sirius_columnar::{DataType, Field, Schema, Scalar};
//!
//! let plan = PlanBuilder::scan(
//!     "t",
//!     Schema::new(vec![Field::new("x", DataType::Int64)]),
//! )
//! .filter(expr::gt(expr::col(0), expr::lit(Scalar::Int64(5))))
//! .build();
//!
//! let wire = json::to_json(&plan).unwrap();
//! let back = json::from_json(&wire).unwrap();
//! assert_eq!(plan, back);
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod expr;
pub mod fingerprint;
pub mod json;
pub mod normalize;
pub mod rel;
pub mod validate;
pub mod visit;

pub use expr::{AggExpr, AggFunc, BinOp, Expr, SortExpr, UnOp};
pub use fingerprint::{fingerprint, PlanFingerprint};
pub use rel::{ExchangeKind, JoinKind, Rel};

/// Errors from plan construction, inference, or validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// An expression referenced a column ordinal outside its input schema.
    ColumnOutOfRange {
        /// The out-of-range ordinal.
        index: usize,
        /// The input schema width.
        width: usize,
    },
    /// An operator/function was applied to incompatible types.
    TypeError(String),
    /// Structural invariant violated (e.g. key-count mismatch in a join).
    Invalid(String),
    /// Serialization failure.
    Serde(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::ColumnOutOfRange { index, width } => {
                write!(f, "column ordinal {index} out of range for width {width}")
            }
            PlanError::TypeError(m) => write!(f, "type error: {m}"),
            PlanError::Invalid(m) => write!(f, "invalid plan: {m}"),
            PlanError::Serde(m) => write!(f, "plan serialization error: {m}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Result alias for plan operations.
pub type Result<T> = std::result::Result<T, PlanError>;
