//! Structural and type validation of plan trees.
//!
//! The paper's engine falls back to the host on "an error or missing
//! features" (§3.2.2); validation is the first gate — a plan that fails
//! here is routed back to the host engine before execution starts.

use crate::rel::{ExchangeKind, JoinKind, Rel};
use crate::{PlanError, Result};
use sirius_columnar::DataType;

/// Validate a plan tree: every expression type-checks against its input,
/// filter predicates are boolean, join key lists are aligned and
/// equi-comparable, and limits/projections are in range.
pub fn validate(plan: &Rel) -> Result<()> {
    // Validate children first.
    for c in plan.children() {
        validate(c)?;
    }
    match plan {
        Rel::Read {
            schema, projection, ..
        } => {
            if let Some(p) = projection {
                for &i in p {
                    if i >= schema.len() {
                        return Err(PlanError::ColumnOutOfRange {
                            index: i,
                            width: schema.len(),
                        });
                    }
                }
            }
            Ok(())
        }
        Rel::Filter { input, predicate } => {
            let s = input.schema()?;
            let t = predicate.data_type(&s)?;
            if t != DataType::Bool {
                return Err(PlanError::TypeError(format!(
                    "filter predicate must be bool, got {t}"
                )));
            }
            Ok(())
        }
        Rel::Project { input, exprs } => {
            let s = input.schema()?;
            if exprs.is_empty() {
                return Err(PlanError::Invalid("empty projection".into()));
            }
            for (e, _) in exprs {
                e.data_type(&s)?;
            }
            Ok(())
        }
        Rel::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            let s = input.schema()?;
            for g in group_by {
                g.data_type(&s)?;
            }
            if aggregates.is_empty() && group_by.is_empty() {
                return Err(PlanError::Invalid(
                    "aggregate with no keys and no aggregates".into(),
                ));
            }
            for a in aggregates {
                let it = a.input.as_ref().map(|e| e.data_type(&s)).transpose()?;
                a.func.result_type(it)?;
                if a.input.is_none() && a.func != crate::expr::AggFunc::CountStar {
                    return Err(PlanError::Invalid(format!(
                        "{:?} requires an argument",
                        a.func
                    )));
                }
            }
            Ok(())
        }
        Rel::Join {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            residual,
        } => {
            if left_keys.len() != right_keys.len() {
                return Err(PlanError::Invalid(format!(
                    "join key count mismatch: {} vs {}",
                    left_keys.len(),
                    right_keys.len()
                )));
            }
            if *kind == JoinKind::Cross && !left_keys.is_empty() {
                return Err(PlanError::Invalid("cross join with keys".into()));
            }
            // `Single` may be keyless: an uncorrelated scalar subquery joins
            // its one-row result against every outer row.
            if !matches!(kind, JoinKind::Cross | JoinKind::Single) && left_keys.is_empty() {
                return Err(PlanError::Invalid(format!("{kind:?} join without keys")));
            }
            let (ls, rs) = (left.schema()?, right.schema()?);
            for (l, r) in left_keys.iter().zip(right_keys.iter()) {
                let (lt, rt) = (l.data_type(&ls)?, r.data_type(&rs)?);
                let comparable = lt == rt || (lt.is_numeric() && rt.is_numeric());
                if !comparable {
                    return Err(PlanError::TypeError(format!(
                        "join keys not comparable: {lt} vs {rt}"
                    )));
                }
            }
            if let Some(res) = residual {
                let combined = ls.join(&rs);
                let t = res.data_type(&combined)?;
                if t != DataType::Bool {
                    return Err(PlanError::TypeError(format!(
                        "join residual must be bool, got {t}"
                    )));
                }
            }
            Ok(())
        }
        Rel::Sort { input, keys } => {
            let s = input.schema()?;
            if keys.is_empty() {
                return Err(PlanError::Invalid("sort with no keys".into()));
            }
            for k in keys {
                k.expr.data_type(&s)?;
            }
            Ok(())
        }
        Rel::Limit { fetch, .. } => {
            if fetch == &Some(0) {
                return Err(PlanError::Invalid("fetch of zero rows".into()));
            }
            Ok(())
        }
        Rel::Distinct { .. } => Ok(()),
        Rel::Exchange { input, kind } => {
            if let ExchangeKind::Shuffle { keys } = kind {
                let s = input.schema()?;
                if keys.is_empty() {
                    return Err(PlanError::Invalid("shuffle without keys".into()));
                }
                for k in keys {
                    k.data_type(&s)?;
                }
            }
            Ok(())
        }
    }
}

/// Features the GPU engine supports. Used by the fallback check: a valid
/// plan may still contain features Sirius lacks (mirroring the paper's
/// limited distributed SQL coverage), in which case the host executes it.
#[derive(Debug, Clone)]
pub struct FeatureSet {
    /// Sorts supported.
    pub sort: bool,
    /// Left/Single outer joins supported.
    pub outer_joins: bool,
    /// `AVG` supported (the paper's distributed mode lacks it).
    pub avg: bool,
    /// `COUNT(DISTINCT)` supported.
    pub count_distinct: bool,
}

impl FeatureSet {
    /// Everything on (single-node Sirius).
    pub fn full() -> Self {
        Self {
            sort: true,
            outer_joins: true,
            avg: true,
            count_distinct: true,
        }
    }

    /// First unsupported feature found in `plan`, or `None` if fully
    /// supported.
    pub fn first_unsupported(&self, plan: &Rel) -> Option<String> {
        let here = match plan {
            Rel::Sort { .. } if !self.sort => Some("Sort".to_string()),
            Rel::Join {
                kind: JoinKind::Left | JoinKind::Single,
                ..
            } if !self.outer_joins => Some("OuterJoin".to_string()),
            Rel::Aggregate { aggregates, .. } => aggregates.iter().find_map(|a| match a.func {
                crate::expr::AggFunc::Avg if !self.avg => Some("Avg".to_string()),
                crate::expr::AggFunc::CountDistinct if !self.count_distinct => {
                    Some("CountDistinct".to_string())
                }
                _ => None,
            }),
            _ => None,
        };
        here.or_else(|| {
            plan.children()
                .iter()
                .find_map(|c| self.first_unsupported(c))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlanBuilder;
    use crate::expr::{self, AggExpr, AggFunc, Expr, SortExpr};
    use sirius_columnar::{Field, Scalar, Schema};

    fn scan() -> PlanBuilder {
        PlanBuilder::scan(
            "t",
            Schema::new(vec![
                Field::new("k", DataType::Int64),
                Field::new("s", DataType::Utf8),
            ]),
        )
    }

    #[test]
    fn valid_plan_passes() {
        let p = scan()
            .filter(expr::gt(expr::col(0), expr::lit_i64(1)))
            .aggregate(
                vec![expr::col(1)],
                vec![AggExpr {
                    func: AggFunc::CountStar,
                    input: None,
                    name: "n".into(),
                }],
            )
            .sort(vec![SortExpr {
                expr: expr::col(1),
                ascending: true,
            }])
            .build();
        validate(&p).unwrap();
    }

    #[test]
    fn non_bool_filter_rejected() {
        let p = scan()
            .filter(expr::add(expr::col(0), expr::lit_i64(1)))
            .build();
        assert!(matches!(validate(&p), Err(PlanError::TypeError(_))));
    }

    #[test]
    fn join_key_mismatch_rejected() {
        let p = scan()
            .join(
                scan(),
                JoinKind::Inner,
                vec![expr::col(0), expr::col(1)],
                vec![expr::col(0)],
                None,
            )
            .build();
        assert!(matches!(validate(&p), Err(PlanError::Invalid(_))));
    }

    #[test]
    fn join_key_types_must_be_comparable() {
        let p = scan()
            .join(
                scan(),
                JoinKind::Inner,
                vec![expr::col(0)],
                vec![expr::col(1)],
                None,
            )
            .build();
        assert!(matches!(validate(&p), Err(PlanError::TypeError(_))));
    }

    #[test]
    fn inner_errors_surface_from_depth() {
        let bad = scan()
            .filter(expr::lit(Scalar::Int64(1)))
            .distinct()
            .build();
        assert!(validate(&bad).is_err());
    }

    #[test]
    fn cross_join_rules() {
        let with_keys = scan()
            .join(
                scan(),
                JoinKind::Cross,
                vec![expr::col(0)],
                vec![expr::col(0)],
                None,
            )
            .build();
        assert!(validate(&with_keys).is_err());
        let keyless = scan()
            .join(scan(), JoinKind::Cross, vec![], vec![], None)
            .build();
        validate(&keyless).unwrap();
        let inner_keyless = scan()
            .join(scan(), JoinKind::Inner, vec![], vec![], None)
            .build();
        assert!(validate(&inner_keyless).is_err());
    }

    #[test]
    fn residual_must_be_bool() {
        let p = scan()
            .join(
                scan(),
                JoinKind::Inner,
                vec![expr::col(0)],
                vec![expr::col(0)],
                Some(Expr::Column(1)),
            )
            .build();
        assert!(matches!(validate(&p), Err(PlanError::TypeError(_))));
    }

    #[test]
    fn feature_set_detects_avg() {
        let p = scan()
            .aggregate(
                vec![],
                vec![AggExpr {
                    func: AggFunc::Avg,
                    input: Some(expr::col(0)),
                    name: "a".into(),
                }],
            )
            .build();
        let mut fs = FeatureSet::full();
        assert_eq!(fs.first_unsupported(&p), None);
        fs.avg = false;
        assert_eq!(fs.first_unsupported(&p), Some("Avg".to_string()));
    }
}
