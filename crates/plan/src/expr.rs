//! Scalar expression trees with ordinal column references.

use crate::{PlanError, Result};
use serde::{Deserialize, Serialize};
use sirius_columnar::{DataType, Scalar, Schema};

/// Binary operators (evaluated by each engine's kernel library).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// True for comparison operators.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum UnOp {
    Not,
    Neg,
    IsNull,
    IsNotNull,
    ExtractYear,
}

/// A scalar expression over an input relation's columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Input column by ordinal (Substrait field reference).
    Column(usize),
    /// Constant.
    Literal(Scalar),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        input: Box<Expr>,
    },
    /// Type cast.
    Cast {
        /// Operand.
        input: Box<Expr>,
        /// Target type.
        to: DataType,
    },
    /// SQL LIKE.
    Like {
        /// String operand.
        input: Box<Expr>,
        /// Pattern with `%`/`_` wildcards.
        pattern: String,
        /// NOT LIKE when true.
        negated: bool,
    },
    /// Membership in a literal list.
    InList {
        /// Tested operand.
        input: Box<Expr>,
        /// Literal candidates.
        list: Vec<Scalar>,
        /// NOT IN when true.
        negated: bool,
    },
    /// Searched CASE.
    Case {
        /// `(condition, value)` branches, first match wins.
        branches: Vec<(Expr, Expr)>,
        /// `ELSE` value (NULL if absent).
        otherwise: Option<Box<Expr>>,
    },
    /// `SUBSTRING(input FROM start FOR len)`, 1-based.
    Substring {
        /// String operand.
        input: Box<Expr>,
        /// 1-based start position.
        start: usize,
        /// Length in characters.
        len: usize,
    },
}

impl Expr {
    /// Inferred output type against `input` (the operand relation's schema).
    /// NULL literals type as `Bool` in isolation; engines special-case them.
    pub fn data_type(&self, input: &Schema) -> Result<DataType> {
        match self {
            Expr::Column(i) => {
                input
                    .fields
                    .get(*i)
                    .map(|f| f.data_type)
                    .ok_or(PlanError::ColumnOutOfRange {
                        index: *i,
                        width: input.len(),
                    })
            }
            Expr::Literal(s) => Ok(s.data_type().unwrap_or(DataType::Bool)),
            Expr::Binary { op, left, right } => {
                let (lt, rt) = (left.data_type(input)?, right.data_type(input)?);
                binop_result(*op, lt, rt)
                    .ok_or_else(|| PlanError::TypeError(format!("{op:?} on ({lt}, {rt})")))
            }
            Expr::Unary { op, input: e } => {
                let t = e.data_type(input)?;
                Ok(match op {
                    UnOp::Not | UnOp::IsNull | UnOp::IsNotNull => DataType::Bool,
                    UnOp::ExtractYear => DataType::Int64,
                    UnOp::Neg => match t {
                        DataType::Float64 => DataType::Float64,
                        DataType::Int32 | DataType::Int64 => DataType::Int64,
                        other => return Err(PlanError::TypeError(format!("Neg on {other}"))),
                    },
                })
            }
            Expr::Cast { to, .. } => Ok(*to),
            Expr::Like { .. } | Expr::InList { .. } => Ok(DataType::Bool),
            Expr::Case {
                branches,
                otherwise,
            } => {
                // First non-null-literal branch value fixes the type.
                for (_, v) in branches {
                    if !matches!(v, Expr::Literal(Scalar::Null)) {
                        return v.data_type(input);
                    }
                }
                match otherwise {
                    Some(o) => o.data_type(input),
                    None => Err(PlanError::TypeError("untyped CASE".into())),
                }
            }
            Expr::Substring { .. } => Ok(DataType::Utf8),
        }
    }

    /// True when the expression may produce NULL given the input schema.
    pub fn nullable(&self, input: &Schema) -> bool {
        match self {
            Expr::Column(i) => input.fields.get(*i).map(|f| f.nullable).unwrap_or(true),
            Expr::Literal(s) => s.is_null(),
            Expr::Unary {
                op: UnOp::IsNull | UnOp::IsNotNull,
                ..
            } => false,
            Expr::Unary { input: e, .. }
            | Expr::Cast { input: e, .. }
            | Expr::Like { input: e, .. }
            | Expr::InList { input: e, .. }
            | Expr::Substring { input: e, .. } => e.nullable(input),
            Expr::Binary { left, right, .. } => left.nullable(input) || right.nullable(input),
            Expr::Case {
                branches,
                otherwise,
            } => {
                branches.iter().any(|(_, v)| v.nullable(input))
                    || otherwise
                        .as_ref()
                        .map(|o| o.nullable(input))
                        .unwrap_or(true)
            }
        }
    }

    /// Column ordinals referenced anywhere in this expression.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Column(i) => out.push(*i),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            Expr::Unary { input, .. }
            | Expr::Cast { input, .. }
            | Expr::Like { input, .. }
            | Expr::InList { input, .. }
            | Expr::Substring { input, .. } => input.referenced_columns(out),
            Expr::Case {
                branches,
                otherwise,
            } => {
                for (c, v) in branches {
                    c.referenced_columns(out);
                    v.referenced_columns(out);
                }
                if let Some(o) = otherwise {
                    o.referenced_columns(out);
                }
            }
        }
    }

    /// Rewrite every column ordinal through `f` (projection pushdown,
    /// fragment-boundary remapping).
    pub fn remap_columns(&self, f: &impl Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Column(i) => Expr::Column(f(*i)),
            Expr::Literal(s) => Expr::Literal(s.clone()),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.remap_columns(f)),
                right: Box::new(right.remap_columns(f)),
            },
            Expr::Unary { op, input } => Expr::Unary {
                op: *op,
                input: Box::new(input.remap_columns(f)),
            },
            Expr::Cast { input, to } => Expr::Cast {
                input: Box::new(input.remap_columns(f)),
                to: *to,
            },
            Expr::Like {
                input,
                pattern,
                negated,
            } => Expr::Like {
                input: Box::new(input.remap_columns(f)),
                pattern: pattern.clone(),
                negated: *negated,
            },
            Expr::InList {
                input,
                list,
                negated,
            } => Expr::InList {
                input: Box::new(input.remap_columns(f)),
                list: list.clone(),
                negated: *negated,
            },
            Expr::Case {
                branches,
                otherwise,
            } => Expr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| (c.remap_columns(f), v.remap_columns(f)))
                    .collect(),
                otherwise: otherwise.as_ref().map(|o| Box::new(o.remap_columns(f))),
            },
            Expr::Substring { input, start, len } => Expr::Substring {
                input: Box::new(input.remap_columns(f)),
                start: *start,
                len: *len,
            },
        }
    }
}

fn binop_result(op: BinOp, l: DataType, r: DataType) -> Option<DataType> {
    use DataType::*;
    if op.is_comparison() {
        let ok = l == r || (l.is_numeric() && r.is_numeric());
        return ok.then_some(Bool);
    }
    match op {
        BinOp::And | BinOp::Or => (l == Bool && r == Bool).then_some(Bool),
        BinOp::Div => (l.is_numeric() && r.is_numeric()).then_some(Float64),
        BinOp::Mod => matches!((l, r), (Int32 | Int64, Int32 | Int64)).then_some(Int64),
        _ => match (l, r) {
            (Float64, x) | (x, Float64) if x.is_numeric() => Some(Float64),
            (Int32 | Int64, Int32 | Int64) => Some(Int64),
            (Date32, Int32 | Int64) if matches!(op, BinOp::Add | BinOp::Sub) => Some(Date32),
            (Date32, Date32) if op == BinOp::Sub => Some(Int64),
            _ => None,
        },
    }
}

/// Aggregate function names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum AggFunc {
    CountStar,
    Count,
    CountDistinct,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    /// Output type given the input expression type.
    pub fn result_type(&self, input: Option<DataType>) -> Result<DataType> {
        Ok(match self {
            AggFunc::CountStar | AggFunc::Count | AggFunc::CountDistinct => DataType::Int64,
            AggFunc::Avg => DataType::Float64,
            AggFunc::Sum => match input {
                Some(DataType::Float64) => DataType::Float64,
                Some(DataType::Int32 | DataType::Int64) => DataType::Int64,
                other => return Err(PlanError::TypeError(format!("SUM over {other:?}"))),
            },
            AggFunc::Min | AggFunc::Max => {
                input.ok_or_else(|| PlanError::TypeError("MIN/MAX need an argument".into()))?
            }
        })
    }
}

/// One aggregate in an `Aggregate` relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggExpr {
    /// The function.
    pub func: AggFunc,
    /// Argument expression (`None` only for `CountStar`).
    pub input: Option<Expr>,
    /// Output column name.
    pub name: String,
}

/// One sort key in a `Sort` relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SortExpr {
    /// Key expression.
    pub expr: Expr,
    /// Ascending order when true.
    pub ascending: bool,
}

// -- convenience constructors (used everywhere in tests and the binder) ------

/// Column reference.
pub fn col(i: usize) -> Expr {
    Expr::Column(i)
}

/// Literal.
pub fn lit(s: Scalar) -> Expr {
    Expr::Literal(s)
}

/// Integer literal.
pub fn lit_i64(v: i64) -> Expr {
    Expr::Literal(Scalar::Int64(v))
}

/// String literal.
pub fn lit_str(v: &str) -> Expr {
    Expr::Literal(Scalar::Utf8(v.to_string()))
}

fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
    Expr::Binary {
        op,
        left: Box::new(l),
        right: Box::new(r),
    }
}

/// `l = r`
pub fn eq(l: Expr, r: Expr) -> Expr {
    bin(BinOp::Eq, l, r)
}
/// `l <> r`
pub fn ne(l: Expr, r: Expr) -> Expr {
    bin(BinOp::Ne, l, r)
}
/// `l < r`
pub fn lt(l: Expr, r: Expr) -> Expr {
    bin(BinOp::Lt, l, r)
}
/// `l <= r`
pub fn le(l: Expr, r: Expr) -> Expr {
    bin(BinOp::Le, l, r)
}
/// `l > r`
pub fn gt(l: Expr, r: Expr) -> Expr {
    bin(BinOp::Gt, l, r)
}
/// `l >= r`
pub fn ge(l: Expr, r: Expr) -> Expr {
    bin(BinOp::Ge, l, r)
}
/// `l AND r`
pub fn and(l: Expr, r: Expr) -> Expr {
    bin(BinOp::And, l, r)
}
/// `l OR r`
pub fn or(l: Expr, r: Expr) -> Expr {
    bin(BinOp::Or, l, r)
}
/// `l + r`
pub fn add(l: Expr, r: Expr) -> Expr {
    bin(BinOp::Add, l, r)
}
/// `l - r`
pub fn sub(l: Expr, r: Expr) -> Expr {
    bin(BinOp::Sub, l, r)
}
/// `l * r`
pub fn mul(l: Expr, r: Expr) -> Expr {
    bin(BinOp::Mul, l, r)
}

/// Conjunction of all expressions (`TRUE` literal when empty).
pub fn and_all(exprs: impl IntoIterator<Item = Expr>) -> Expr {
    exprs
        .into_iter()
        .reduce(and)
        .unwrap_or(Expr::Literal(Scalar::Bool(true)))
}

/// Split a conjunction into its conjunct list.
pub fn split_conjunction(e: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        if let Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } = e
        {
            walk(left, out);
            walk(right, out);
        } else {
            out.push(e);
        }
    }
    walk(e, &mut out);
    out
}

/// Split a disjunction into its disjunct list.
pub fn split_disjunction(e: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        if let Expr::Binary {
            op: BinOp::Or,
            left,
            right,
        } = e
        {
            walk(left, out);
            walk(right, out);
        } else {
            out.push(e);
        }
    }
    walk(e, &mut out);
    out
}

/// Factor conjuncts common to every disjunct out of an OR:
/// `(a AND b) OR (a AND c)` ⇒ `a AND (b OR c)`. TPC-H Q19 hides its join
/// key this way; without factoring the planner would build a cross join.
/// Returns the input unchanged when there is nothing to factor.
pub fn factor_or_common(e: &Expr) -> Expr {
    let disjuncts = split_disjunction(e);
    if disjuncts.len() < 2 {
        return e.clone();
    }
    let branch_conjuncts: Vec<Vec<&Expr>> =
        disjuncts.iter().map(|d| split_conjunction(d)).collect();
    let common: Vec<Expr> = branch_conjuncts[0]
        .iter()
        .filter(|c| branch_conjuncts[1..].iter().all(|b| b.contains(c)))
        .map(|c| (*c).clone())
        .collect();
    if common.is_empty() {
        return e.clone();
    }
    // Rebuild each branch without the common conjuncts.
    let residual_branches: Vec<Expr> = branch_conjuncts
        .iter()
        .map(|b| {
            and_all(
                b.iter()
                    .filter(|c| !common.contains(c))
                    .map(|c| (*c).clone()),
            )
        })
        .collect();
    let residual_or = residual_branches
        .into_iter()
        .reduce(or)
        .expect("at least two branches");
    and(and_all(common), residual_or)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirius_columnar::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Float64),
            Field::new("c", DataType::Utf8),
            Field::new("d", DataType::Date32),
        ])
    }

    #[test]
    fn type_inference() {
        let s = schema();
        assert_eq!(add(col(0), col(0)).data_type(&s).unwrap(), DataType::Int64);
        assert_eq!(
            mul(col(0), col(1)).data_type(&s).unwrap(),
            DataType::Float64
        );
        assert_eq!(
            Expr::Binary {
                op: BinOp::Div,
                left: Box::new(col(0)),
                right: Box::new(col(0))
            }
            .data_type(&s)
            .unwrap(),
            DataType::Float64
        );
        assert_eq!(gt(col(3), col(3)).data_type(&s).unwrap(), DataType::Bool);
        assert!(add(col(2), col(0)).data_type(&s).is_err());
        assert!(matches!(
            col(9).data_type(&s),
            Err(PlanError::ColumnOutOfRange { index: 9, width: 4 })
        ));
    }

    #[test]
    fn case_typing_skips_null_branches() {
        let s = schema();
        let c = Expr::Case {
            branches: vec![
                (gt(col(0), lit_i64(0)), lit(Scalar::Null)),
                (gt(col(0), lit_i64(1)), lit_str("x")),
            ],
            otherwise: None,
        };
        assert_eq!(c.data_type(&s).unwrap(), DataType::Utf8);
    }

    #[test]
    fn referenced_and_remap() {
        let e = and(gt(col(2), lit_str("m")), eq(col(0), col(3)));
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        cols.sort_unstable();
        assert_eq!(cols, vec![0, 2, 3]);
        let shifted = e.remap_columns(&|i| i + 10);
        let mut cols2 = Vec::new();
        shifted.referenced_columns(&mut cols2);
        cols2.sort_unstable();
        assert_eq!(cols2, vec![10, 12, 13]);
    }

    #[test]
    fn conjunction_split_round_trip() {
        let e = and_all([
            gt(col(0), lit_i64(1)),
            lt(col(0), lit_i64(5)),
            eq(col(2), lit_str("x")),
        ]);
        let parts = split_conjunction(&e);
        assert_eq!(parts.len(), 3);
        let rebuilt = and_all(parts.into_iter().cloned());
        assert_eq!(rebuilt, e);
        assert_eq!(
            and_all(std::iter::empty::<Expr>()),
            Expr::Literal(Scalar::Bool(true))
        );
    }

    #[test]
    fn factor_or_common_hoists_shared_conjuncts() {
        // (k=1 AND a>2) OR (k=1 AND b<3)  =>  k=1 AND (a>2 OR b<3)
        let k = eq(col(0), lit_i64(1));
        let e = or(
            and(k.clone(), gt(col(1), lit_i64(2))),
            and(k.clone(), lt(col(2), lit_i64(3))),
        );
        let f = factor_or_common(&e);
        let conjuncts = split_conjunction(&f);
        assert_eq!(conjuncts.len(), 2);
        assert_eq!(conjuncts[0], &k);
        // Nothing common => unchanged.
        let g = or(gt(col(1), lit_i64(2)), lt(col(2), lit_i64(3)));
        assert_eq!(factor_or_common(&g), g);
        // Non-OR => unchanged.
        let h = gt(col(1), lit_i64(0));
        assert_eq!(factor_or_common(&h), h);
    }

    #[test]
    fn factor_or_three_branches() {
        let k = eq(col(0), col(3));
        let e = or(
            or(
                and(k.clone(), gt(col(1), lit_i64(1))),
                and(k.clone(), gt(col(1), lit_i64(2))),
            ),
            and(k.clone(), gt(col(1), lit_i64(3))),
        );
        let f = factor_or_common(&e);
        assert_eq!(split_conjunction(&f)[0], &k);
    }

    #[test]
    fn nullability() {
        let mut s = schema();
        s.fields[0].nullable = true;
        assert!(col(0).nullable(&s));
        assert!(!col(1).nullable(&s));
        assert!(!Expr::Unary {
            op: UnOp::IsNull,
            input: Box::new(col(0))
        }
        .nullable(&s));
        assert!(add(col(0), col(1)).nullable(&s));
    }

    #[test]
    fn agg_result_types() {
        assert_eq!(
            AggFunc::Sum.result_type(Some(DataType::Int32)).unwrap(),
            DataType::Int64
        );
        assert_eq!(
            AggFunc::Avg.result_type(Some(DataType::Int64)).unwrap(),
            DataType::Float64
        );
        assert_eq!(
            AggFunc::CountStar.result_type(None).unwrap(),
            DataType::Int64
        );
        assert!(AggFunc::Sum.result_type(Some(DataType::Utf8)).is_err());
    }
}
