//! JSON wire encoding for plans crossing the host ↔ Sirius boundary.
//!
//! Substrait's text serialization is JSON; this module provides the same
//! role for our IR. The encoding is self-describing (enum tags), versioned
//! by an envelope, and round-trips exactly.

use crate::rel::Rel;
use crate::{PlanError, Result};
use serde::{Deserialize, Serialize};

/// Wire envelope: version + plan.
#[derive(Debug, Serialize, Deserialize)]
struct Envelope {
    /// Format version, bumped on breaking IR changes.
    version: u32,
    /// The plan tree.
    plan: Rel,
}

/// Current wire version.
pub const WIRE_VERSION: u32 = 1;

/// Serialize a plan to its JSON wire form.
pub fn to_json(plan: &Rel) -> Result<String> {
    serde_json::to_string(&Envelope {
        version: WIRE_VERSION,
        plan: plan.clone(),
    })
    .map_err(|e| PlanError::Serde(e.to_string()))
}

/// Deserialize a plan from its JSON wire form, checking the version.
pub fn from_json(s: &str) -> Result<Rel> {
    let env: Envelope = serde_json::from_str(s).map_err(|e| PlanError::Serde(e.to_string()))?;
    if env.version != WIRE_VERSION {
        return Err(PlanError::Serde(format!(
            "unsupported wire version {} (expected {WIRE_VERSION})",
            env.version
        )));
    }
    Ok(env.plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlanBuilder;
    use crate::expr::{self, AggExpr, AggFunc, SortExpr};
    use crate::rel::JoinKind;
    use sirius_columnar::{DataType, Field, Scalar, Schema};

    fn sample_plan() -> Rel {
        let s = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Float64),
            Field::new("s", DataType::Utf8),
        ]);
        PlanBuilder::scan("t", s.clone())
            .filter(expr::and(
                expr::ge(expr::col(1), expr::lit(Scalar::Float64(0.5))),
                Expr::Like {
                    input: Box::new(expr::col(2)),
                    pattern: "%x%".into(),
                    negated: true,
                },
            ))
            .join(
                PlanBuilder::scan("u", s),
                JoinKind::Left,
                vec![expr::col(0)],
                vec![expr::col(0)],
                Some(expr::ne(expr::col(2), expr::col(5))),
            )
            .aggregate(
                vec![expr::col(2)],
                vec![AggExpr {
                    func: AggFunc::Avg,
                    input: Some(expr::col(1)),
                    name: "avg_v".into(),
                }],
            )
            .sort(vec![SortExpr {
                expr: expr::col(1),
                ascending: false,
            }])
            .limit(5, Some(20))
            .build()
    }

    use crate::expr::Expr;

    #[test]
    fn round_trip_preserves_plan() {
        let plan = sample_plan();
        let wire = to_json(&plan).unwrap();
        let back = from_json(&wire).unwrap();
        assert_eq!(plan, back);
        // Schema inference survives the round trip too.
        assert_eq!(plan.schema().unwrap(), back.schema().unwrap());
    }

    #[test]
    fn version_mismatch_rejected() {
        let wire = to_json(&sample_plan()).unwrap();
        let bumped = wire.replacen("\"version\":1", "\"version\":99", 1);
        assert!(matches!(from_json(&bumped), Err(PlanError::Serde(_))));
    }

    #[test]
    fn garbage_rejected() {
        assert!(from_json("not json").is_err());
        assert!(from_json("{}").is_err());
    }

    #[test]
    fn wire_is_self_describing() {
        let wire = to_json(&sample_plan()).unwrap();
        assert!(wire.contains("\"Read\""));
        assert!(wire.contains("\"Join\""));
        assert!(wire.contains("\"Like\""));
    }
}
