//! Relational operators of the plan IR, with output-schema inference.

use crate::expr::{AggExpr, Expr, SortExpr};
use crate::Result;
use serde::{Deserialize, Serialize};
use sirius_columnar::{Field, Schema};

/// Join kinds carried by the IR. `Cross` has no equality keys; `Single` is
/// the scalar-subquery left join (at most one match per left row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum JoinKind {
    Inner,
    Left,
    Semi,
    Anti,
    Single,
    Cross,
}

/// Distributed exchange patterns (§3.2.4): all implemented over the NCCL
/// layer by the Sirius exchange service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExchangeKind {
    /// Hash-partition rows across nodes by the given key expressions.
    Shuffle {
        /// Partition key expressions.
        keys: Vec<Expr>,
    },
    /// Replicate the full input to every node.
    Broadcast,
    /// Gather all partitions onto one node.
    Merge,
    /// Send the full input to an explicit set of nodes.
    MultiCast {
        /// Target node ids.
        targets: Vec<usize>,
    },
}

/// A relational operator tree. The IR is both logical and physical — like
/// Substrait, the same representation flows from the host optimizer into
/// the execution engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Rel {
    /// Base-table scan. Carries the base schema (Substrait `ReadRel` base
    /// schema) and an optional projection pushed into the scan.
    Read {
        /// Table name in the host catalog.
        table: String,
        /// Full base schema of the table.
        schema: Schema,
        /// Column ordinals to read (`None` = all).
        projection: Option<Vec<usize>>,
    },
    /// Row filter.
    Filter {
        /// Input relation.
        input: Box<Rel>,
        /// Boolean predicate over the input columns.
        predicate: Expr,
    },
    /// Column projection / computation. Each output is a named expression.
    Project {
        /// Input relation.
        input: Box<Rel>,
        /// `(expression, output name)` pairs.
        exprs: Vec<(Expr, String)>,
    },
    /// Grouped or global aggregation. Output columns: group keys (named
    /// `key0..` unless they are simple column refs), then aggregates.
    Aggregate {
        /// Input relation.
        input: Box<Rel>,
        /// Group-key expressions (empty = global aggregate, one row out).
        group_by: Vec<Expr>,
        /// Aggregates.
        aggregates: Vec<AggExpr>,
    },
    /// Equi-join with optional residual predicate. The residual is
    /// evaluated over the concatenated `[left ++ right]` schema.
    Join {
        /// Left input.
        left: Box<Rel>,
        /// Right input (build side for hash joins).
        right: Box<Rel>,
        /// Join kind.
        kind: JoinKind,
        /// Equality keys from the left input.
        left_keys: Vec<Expr>,
        /// Equality keys from the right input.
        right_keys: Vec<Expr>,
        /// Residual predicate over `[left ++ right]`.
        residual: Option<Expr>,
    },
    /// Total order.
    Sort {
        /// Input relation.
        input: Box<Rel>,
        /// Sort keys, major first.
        keys: Vec<SortExpr>,
    },
    /// Offset/fetch.
    Limit {
        /// Input relation.
        input: Box<Rel>,
        /// Rows to skip.
        offset: usize,
        /// Max rows to return (`None` = unbounded).
        fetch: Option<usize>,
    },
    /// Duplicate elimination over all columns.
    Distinct {
        /// Input relation.
        input: Box<Rel>,
    },
    /// Distributed data movement (inserted by the distributed planner).
    Exchange {
        /// Input relation.
        input: Box<Rel>,
        /// Movement pattern.
        kind: ExchangeKind,
    },
}

impl Rel {
    /// Inferred output schema.
    pub fn schema(&self) -> Result<Schema> {
        Ok(match self {
            Rel::Read {
                schema, projection, ..
            } => match projection {
                Some(p) => schema.project(p),
                None => schema.clone(),
            },
            Rel::Filter { input, .. }
            | Rel::Limit { input, .. }
            | Rel::Distinct { input }
            | Rel::Exchange { input, .. }
            | Rel::Sort { input, .. } => input.schema()?,
            Rel::Project { input, exprs } => {
                let in_schema = input.schema()?;
                let mut fields = Vec::with_capacity(exprs.len());
                for (e, name) in exprs {
                    let dt = e.data_type(&in_schema)?;
                    fields.push(Field {
                        name: name.clone(),
                        data_type: dt,
                        nullable: e.nullable(&in_schema),
                    });
                }
                Schema::new(fields)
            }
            Rel::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                let in_schema = input.schema()?;
                let mut fields = Vec::new();
                for (i, g) in group_by.iter().enumerate() {
                    let dt = g.data_type(&in_schema)?;
                    let name = match g {
                        Expr::Column(c) => in_schema.fields[*c].name.clone(),
                        _ => format!("key{i}"),
                    };
                    fields.push(Field {
                        name,
                        data_type: dt,
                        nullable: g.nullable(&in_schema),
                    });
                }
                for a in aggregates {
                    let it = a
                        .input
                        .as_ref()
                        .map(|e| e.data_type(&in_schema))
                        .transpose()?;
                    fields.push(Field {
                        name: a.name.clone(),
                        data_type: a.func.result_type(it)?,
                        nullable: true,
                    });
                }
                Schema::new(fields)
            }
            Rel::Join {
                left, right, kind, ..
            } => {
                let l = left.schema()?;
                match kind {
                    JoinKind::Semi | JoinKind::Anti => l,
                    JoinKind::Left | JoinKind::Single => {
                        let mut r = right.schema()?;
                        for f in &mut r.fields {
                            f.nullable = true;
                        }
                        l.join(&r)
                    }
                    JoinKind::Inner | JoinKind::Cross => l.join(&right.schema()?),
                }
            }
        })
    }

    /// Child relations, for generic traversal.
    pub fn children(&self) -> Vec<&Rel> {
        match self {
            Rel::Read { .. } => vec![],
            Rel::Filter { input, .. }
            | Rel::Project { input, .. }
            | Rel::Aggregate { input, .. }
            | Rel::Sort { input, .. }
            | Rel::Limit { input, .. }
            | Rel::Distinct { input }
            | Rel::Exchange { input, .. } => vec![input],
            Rel::Join { left, right, .. } => vec![left, right],
        }
    }

    /// Names of all base tables read anywhere in the tree.
    pub fn tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        fn walk(r: &Rel, out: &mut Vec<String>) {
            if let Rel::Read { table, .. } = r {
                out.push(table.clone());
            }
            for c in r.children() {
                walk(c, out);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Operator count (diagnostics / plan-complexity metrics).
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// One-line-per-operator indented rendering (EXPLAIN-style).
    pub fn explain(&self) -> String {
        fn walk(r: &Rel, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            let line = match r {
                Rel::Read {
                    table, projection, ..
                } => match projection {
                    Some(p) => format!("Read {table} (cols {p:?})"),
                    None => format!("Read {table}"),
                },
                Rel::Filter { .. } => "Filter".into(),
                Rel::Project { exprs, .. } => format!("Project ({} cols)", exprs.len()),
                Rel::Aggregate {
                    group_by,
                    aggregates,
                    ..
                } => format!(
                    "Aggregate ({} keys, {} aggs)",
                    group_by.len(),
                    aggregates.len()
                ),
                Rel::Join {
                    kind, left_keys, ..
                } => {
                    format!("Join {kind:?} ({} keys)", left_keys.len())
                }
                Rel::Sort { keys, .. } => format!("Sort ({} keys)", keys.len()),
                Rel::Limit { offset, fetch, .. } => {
                    format!("Limit offset={offset} fetch={fetch:?}")
                }
                Rel::Distinct { .. } => "Distinct".into(),
                Rel::Exchange { kind, .. } => match kind {
                    ExchangeKind::Shuffle { keys } => {
                        format!("Exchange Shuffle ({} keys)", keys.len())
                    }
                    ExchangeKind::Broadcast => "Exchange Broadcast".into(),
                    ExchangeKind::Merge => "Exchange Merge".into(),
                    ExchangeKind::MultiCast { targets } => {
                        format!("Exchange MultiCast {targets:?}")
                    }
                },
            };
            out.push_str(&pad);
            out.push_str(&line);
            out.push('\n');
            for c in r.children() {
                walk(c, depth + 1, out);
            }
        }
        let mut s = String::new();
        walk(self, 0, &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{self, AggFunc};
    use sirius_columnar::DataType;

    fn read() -> Rel {
        Rel::Read {
            table: "t".into(),
            schema: Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Utf8),
            ]),
            projection: None,
        }
    }

    #[test]
    fn read_projection_schema() {
        let r = Rel::Read {
            table: "t".into(),
            schema: Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Utf8),
            ]),
            projection: Some(vec![1]),
        };
        let s = r.schema().unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.fields[0].name, "b");
    }

    #[test]
    fn project_schema_types_and_names() {
        let p = Rel::Project {
            input: Box::new(read()),
            exprs: vec![
                (expr::add(expr::col(0), expr::lit_i64(1)), "a1".into()),
                (expr::col(1), "b".into()),
            ],
        };
        let s = p.schema().unwrap();
        assert_eq!(s.fields[0].name, "a1");
        assert_eq!(s.fields[0].data_type, DataType::Int64);
        assert_eq!(s.fields[1].data_type, DataType::Utf8);
    }

    #[test]
    fn aggregate_schema() {
        let a = Rel::Aggregate {
            input: Box::new(read()),
            group_by: vec![expr::col(1)],
            aggregates: vec![
                AggExpr {
                    func: AggFunc::Sum,
                    input: Some(expr::col(0)),
                    name: "s".into(),
                },
                AggExpr {
                    func: AggFunc::CountStar,
                    input: None,
                    name: "n".into(),
                },
            ],
        };
        let s = a.schema().unwrap();
        assert_eq!(
            s.fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>(),
            vec!["b", "s", "n"]
        );
        assert_eq!(s.fields[1].data_type, DataType::Int64);
    }

    #[test]
    fn join_schemas_by_kind() {
        let j = |kind| Rel::Join {
            left: Box::new(read()),
            right: Box::new(read()),
            kind,
            left_keys: vec![expr::col(0)],
            right_keys: vec![expr::col(0)],
            residual: None,
        };
        assert_eq!(j(JoinKind::Inner).schema().unwrap().len(), 4);
        assert_eq!(j(JoinKind::Semi).schema().unwrap().len(), 2);
        assert_eq!(j(JoinKind::Anti).schema().unwrap().len(), 2);
        let left = j(JoinKind::Left).schema().unwrap();
        assert_eq!(left.len(), 4);
        assert!(
            left.fields[2].nullable,
            "right side of LEFT join is nullable"
        );
        assert!(!left.fields[0].nullable);
    }

    #[test]
    fn tables_and_node_count() {
        let j = Rel::Join {
            left: Box::new(read()),
            right: Box::new(Rel::Filter {
                input: Box::new(read()),
                predicate: expr::gt(expr::col(0), expr::lit_i64(0)),
            }),
            kind: JoinKind::Inner,
            left_keys: vec![expr::col(0)],
            right_keys: vec![expr::col(0)],
            residual: None,
        };
        assert_eq!(j.tables(), vec!["t".to_string(), "t".to_string()]);
        assert_eq!(j.node_count(), 4);
        let e = j.explain();
        assert!(e.starts_with("Join Inner"));
        assert!(e.contains("  Filter"));
    }
}
