//! # sirius-clickhouse — the ClickHouse baseline stand-in
//!
//! The second CPU baseline of the paper's evaluation (§4.2/§4.3): a
//! columnar OLAP engine with outstanding scan/aggregation performance but
//! weak join machinery — no cost-based join reordering (plans keep FROM
//! order), heavy join materialization (modeled by the engine profile's
//! join multiplier), no correlated subqueries (queries must arrive
//! pre-rewritten; the Q21 pattern — correlated EXISTS with non-equi
//! conditions — is rejected outright), and a statement time budget that
//! reproduces the paper's "Q9 does not finish".

#![warn(missing_docs)]

use sirius_columnar::Table;
use sirius_exec_cpu::{Catalog, CpuEngine, EngineProfile, ExecError};
use sirius_hw::{catalog as hw, Device, DeviceSpec};
use sirius_plan::Rel;
use sirius_sql::{plan_sql, BinderCatalog, JoinOrderPolicy};

/// Errors surfaced by the baseline.
#[derive(Debug)]
pub enum ClickHouseError {
    /// SQL frontend failure.
    Sql(sirius_sql::SqlError),
    /// Execution failure — including `TimeBudgetExceeded` ("did not
    /// finish") and `Unsupported` (Q21's correlated-EXISTS shape).
    Exec(ExecError),
}

impl std::fmt::Display for ClickHouseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClickHouseError::Sql(e) => write!(f, "sql error: {e}"),
            ClickHouseError::Exec(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for ClickHouseError {}

/// The baseline instance.
pub struct ClickHouse {
    tables: Catalog,
    binder: BinderCatalog,
    engine: CpuEngine,
}

impl Default for ClickHouse {
    fn default() -> Self {
        Self::new()
    }
}

impl ClickHouse {
    /// Baseline on the paper's cost-normalized CPU instance.
    pub fn new() -> Self {
        Self::on_device(hw::m7i_16xlarge())
    }

    /// Baseline on an explicit device spec.
    pub fn on_device(spec: DeviceSpec) -> Self {
        Self {
            tables: Catalog::new(),
            binder: BinderCatalog::new(),
            engine: CpuEngine::new(spec, EngineProfile::clickhouse()),
        }
    }

    /// Override the statement time budget (the harness scales it with the
    /// generated scale factor so "did not finish" reproduces at any SF).
    pub fn with_time_budget(self, budget: std::time::Duration) -> Self {
        let mut profile = EngineProfile::clickhouse();
        profile.time_budget = Some(budget);
        Self {
            engine: CpuEngine::new(hw::m7i_16xlarge(), profile),
            ..self
        }
    }

    /// Register a table.
    pub fn create_table(&mut self, name: impl Into<String>, table: Table) {
        let name = name.into();
        self.binder.add_table(
            name.clone(),
            table.schema().clone(),
            table.num_rows() as u64,
        );
        self.tables.register(name, table);
    }

    /// Plan a query — joins stay in FROM order (no reordering).
    pub fn plan(&self, sql: &str) -> Result<Rel, ClickHouseError> {
        plan_sql(sql, &self.binder, JoinOrderPolicy::FromOrder).map_err(ClickHouseError::Sql)
    }

    /// Run a SQL query on the baseline engine.
    pub fn sql(&self, sql: &str) -> Result<Table, ClickHouseError> {
        let plan = self.plan(sql)?;
        self.execute_plan(&plan)
    }

    /// Execute an already-planned query.
    pub fn execute_plan(&self, plan: &Rel) -> Result<Table, ClickHouseError> {
        self.engine
            .execute(plan, &self.tables)
            .map_err(ClickHouseError::Exec)
    }

    /// The CPU device (simulated-time ledger).
    pub fn device(&self) -> &Device {
        self.engine.device()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirius_columnar::{Array, DataType, Field, Schema};

    fn ch() -> ClickHouse {
        let mut ch = ClickHouse::new();
        ch.create_table(
            "t",
            Table::new(
                Schema::new(vec![
                    Field::new("k", DataType::Int64),
                    Field::new("v", DataType::Int64),
                ]),
                vec![Array::from_i64([1, 2, 3]), Array::from_i64([10, 20, 30])],
            ),
        );
        ch
    }

    #[test]
    fn scans_and_aggregates_run() {
        let ch = ch();
        let out = ch.sql("select sum(v) as s from t where k >= 2").unwrap();
        assert_eq!(out.column(0).i64_value(0), Some(50));
    }

    #[test]
    fn correlated_exists_with_inequality_is_rejected() {
        let ch = ch();
        // The Q21 pattern: correlated EXISTS with an extra non-equi
        // condition decorrelates to a residual semi join — unsupported.
        let q = "select k from t t1 where exists (select * from t t2 where t2.k = t1.k and t2.v <> t1.v)";
        match ch.sql(q) {
            Err(ClickHouseError::Exec(ExecError::Unsupported(_))) => {}
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    fn big() -> Table {
        let n = 50_000i64;
        Table::new(
            Schema::new(vec![
                Field::new("k", DataType::Int64),
                Field::new("v", DataType::Int64),
            ]),
            vec![
                Array::from_i64((0..n).collect::<Vec<_>>()),
                Array::from_i64((0..n).map(|x| x * 10).collect::<Vec<_>>()),
            ],
        )
    }

    #[test]
    fn joins_cost_more_than_duckdb() {
        // Same query, same data: the ClickHouse profile must charge more
        // simulated join time than the DuckDB profile (large enough input
        // that per-kernel launch overhead is negligible).
        let q = "select count(*) as n from t a, t b where a.k = b.k";
        let mut ch = ClickHouse::new();
        ch.create_table("t", big());
        ch.sql(q).unwrap();
        let ch_join = ch.device().breakdown().get(sirius_hw::CostCategory::Join);

        let mut duck = sirius_duckdb::DuckDb::new();
        duck.create_table("t", big());
        duck.sql(q).unwrap();
        let duck_join = duck.device().breakdown().get(sirius_hw::CostCategory::Join);
        assert!(ch_join > duck_join * 3);
    }
}
