//! The bottom-up plan interpreter with cost accounting.
//!
//! The interpreter is a [`Fold`] over the shared plan walk
//! ([`sirius_plan::visit`]) — the same traversal the GPU pipeline compiler
//! uses — so there is exactly one way to walk a plan in the workspace.
//! Scan+filter fusion keeps its single-pass charge through the
//! [`Fold::enter`] hook, which claims the two-node subtree whole.

use crate::catalog::Catalog;
use crate::eval::evaluate;
use crate::ops;
use crate::profile::EngineProfile;
use crate::{ExecError, Result};
use sirius_columnar::{Array, Table};
use sirius_hw::{CostCategory, Device, DeviceSpec, WorkProfile};
use sirius_plan::expr::Expr;
use sirius_plan::visit::{self, Fold, Node};
use sirius_plan::{JoinKind, Rel};

/// A CPU query engine: a simulated device plus an engine personality.
pub struct CpuEngine {
    device: Device,
    profile: EngineProfile,
    /// Ledger value at the start of the current statement — the time
    /// budget applies per statement, not cumulatively.
    budget_base: parking_lot::Mutex<std::time::Duration>,
}

impl CpuEngine {
    /// Build an engine on a device spec with a personality profile.
    pub fn new(spec: DeviceSpec, profile: EngineProfile) -> Self {
        Self {
            device: Device::new(spec),
            profile,
            budget_base: parking_lot::Mutex::new(std::time::Duration::ZERO),
        }
    }

    /// The underlying simulated device (ledger access).
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The engine profile.
    pub fn profile(&self) -> &EngineProfile {
        &self.profile
    }

    /// Execute a plan against a catalog, charging simulated time.
    pub fn execute(&self, plan: &Rel, catalog: &Catalog) -> Result<Table> {
        sirius_plan::validate::validate(plan)?;
        if self.profile.reject_residual_semi_joins {
            check_no_residual_semi(plan)?;
        }
        *self.budget_base.lock() = self.device.elapsed();
        self.device
            .charge_duration(CostCategory::Other, self.profile.per_query_overhead);
        visit::fold(&mut Interp { eng: self, catalog }, plan)
    }

    fn charge(&self, category: CostCategory, work: WorkProfile) -> Result<()> {
        let scaled = work.scaled(self.profile.multiplier(category));
        self.device.charge(category, &scaled);
        if let Some(budget) = self.profile.time_budget {
            let elapsed = self
                .device
                .elapsed()
                .saturating_sub(*self.budget_base.lock());
            if elapsed > budget {
                return Err(ExecError::TimeBudgetExceeded { elapsed, budget });
            }
        }
        Ok(())
    }

    /// Resolve a base-table scan (with its stored projection), uncharged.
    fn scan_table(
        &self,
        table: &str,
        projection: &Option<Vec<usize>>,
        cat: &Catalog,
    ) -> Result<Table> {
        let t = cat
            .get(table)
            .ok_or_else(|| ExecError::TableNotFound(table.to_string()))?;
        Ok(match projection {
            Some(p) => t.project(p),
            None => (*t).clone(),
        })
    }

    /// Apply a filter over its materialized input, charging one pass.
    fn op_filter(&self, predicate: &Expr, t: Table) -> Result<Table> {
        let mask = evaluate(predicate, &t)?;
        let sel = mask.as_bool()?.to_selection();
        let out = t.filter(&sel);
        self.charge(
            CostCategory::Filter,
            WorkProfile::scan(t.byte_size() as u64)
                .with_streamed(out.byte_size() as u64)
                .with_flops(t.num_rows() as u64)
                .with_rows(t.num_rows() as u64),
        )?;
        Ok(out)
    }
}

/// The interpreter as a [`Fold`]: children are materialized bottom-up by
/// the shared driver and combined per operator here.
struct Interp<'a> {
    eng: &'a CpuEngine,
    catalog: &'a Catalog,
}

impl Fold for Interp<'_> {
    type Output = Table;
    type Error = ExecError;

    fn enter(&mut self, _node: Node, rel: &Rel) -> Option<std::result::Result<Table, ExecError>> {
        // Scan+filter fusion (mirrors the GPU engine): a filter directly
        // over a base scan charges a single pass, so this claims the
        // two-node subtree whole instead of letting the scan charge first.
        let Rel::Filter { input, predicate } = rel else {
            return None;
        };
        let Rel::Read {
            table, projection, ..
        } = &**input
        else {
            return None;
        };
        Some(
            self.eng
                .scan_table(table, projection, self.catalog)
                .and_then(|t| self.eng.op_filter(predicate, t)),
        )
    }

    fn fold(
        &mut self,
        _node: Node,
        plan: &Rel,
        children: Vec<Table>,
    ) -> std::result::Result<Table, ExecError> {
        let mut children = children.into_iter();
        let mut input = move || children.next().expect("one folded child per input");
        match plan {
            Rel::Read {
                table, projection, ..
            } => {
                let t = self.eng.scan_table(table, projection, self.catalog)?;
                self.eng.charge(
                    CostCategory::Filter,
                    WorkProfile::scan(t.byte_size() as u64).with_rows(t.num_rows() as u64),
                )?;
                Ok(t)
            }
            Rel::Filter { predicate, .. } => self.eng.op_filter(predicate, input()),
            Rel::Project { exprs, .. } => {
                let t = input();
                let schema = plan.schema()?;
                let mut cols = Vec::with_capacity(exprs.len());
                for (e, _) in exprs {
                    cols.push(evaluate(e, &t)?);
                }
                let out = Table::new(schema, cols);
                self.eng.charge(
                    CostCategory::Project,
                    WorkProfile::scan(t.byte_size() as u64)
                        .with_streamed(out.byte_size() as u64)
                        .with_flops((t.num_rows() * exprs.len()) as u64)
                        .with_rows(t.num_rows() as u64),
                )?;
                Ok(out)
            }
            Rel::Aggregate {
                group_by,
                aggregates,
                ..
            } => {
                let t = input();
                let key_cols: Vec<Array> = group_by
                    .iter()
                    .map(|g| evaluate(g, &t))
                    .collect::<Result<_>>()?;
                let agg_inputs: Vec<(sirius_plan::AggFunc, Option<Array>)> = aggregates
                    .iter()
                    .map(|a| {
                        Ok((
                            a.func,
                            a.input.as_ref().map(|e| evaluate(e, &t)).transpose()?,
                        ))
                    })
                    .collect::<Result<_>>()?;
                let (keys, aggs) = ops::aggregate(&t, &key_cols, &agg_inputs)?;
                let schema = plan.schema()?;
                let out = Table::new(schema, keys.into_iter().chain(aggs).collect());
                let category = if group_by.is_empty() {
                    CostCategory::Aggregate
                } else {
                    CostCategory::GroupBy
                };
                self.eng.charge(
                    category,
                    WorkProfile::scan(t.byte_size() as u64)
                        .with_random((t.num_rows() * 8 * aggregates.len().max(1)) as u64)
                        .with_flops((t.num_rows() * (group_by.len() + aggregates.len())) as u64)
                        .with_rows(t.num_rows() as u64),
                )?;
                Ok(out)
            }
            Rel::Join {
                kind,
                left_keys,
                right_keys,
                residual,
                ..
            } => {
                let lt = input();
                let rt = input();
                let lk: Vec<Array> = left_keys
                    .iter()
                    .map(|e| evaluate(e, &lt))
                    .collect::<Result<_>>()?;
                let rk: Vec<Array> = right_keys
                    .iter()
                    .map(|e| evaluate(e, &rt))
                    .collect::<Result<_>>()?;
                let pairs = ops::find_pairs(&lk, &rk, lt.num_rows(), rt.num_rows());
                // Residual predicate: evaluated vectorized over the
                // candidate-pair tables.
                let mask = match residual {
                    None => None,
                    Some(res) => {
                        let lp = lt.gather(&pairs.left);
                        let rp = rt.gather(&pairs.right);
                        let combined = lp.hstack(&rp);
                        let col = evaluate(res, &combined)?;
                        Some(col.as_bool()?.to_selection())
                    }
                };
                let out_idx = ops::resolve_pairs(*kind, &pairs, mask.as_ref())?;
                // Materialize output table.
                let out = match kind {
                    JoinKind::Semi | JoinKind::Anti => lt.gather(&out_idx.left),
                    _ => {
                        let l = lt.gather(&out_idx.left);
                        let rcols: Vec<Array> = rt
                            .columns()
                            .iter()
                            .map(|c| c.gather_opt(&out_idx.right))
                            .collect();
                        let r = Table::new(
                            plan.schema()?.project(
                                &(lt.num_columns()..lt.num_columns() + rt.num_columns())
                                    .collect::<Vec<_>>(),
                            ),
                            rcols,
                        );
                        l.hstack(&r)
                    }
                };
                let key_bytes: u64 = lk
                    .iter()
                    .chain(rk.iter())
                    .map(|a| a.byte_size() as u64)
                    .sum();
                // CPU hash joins materialize the whole build side (keys +
                // payload) into the hash table; engines that leave large
                // inputs on the build side (ClickHouse's FROM-order plans)
                // pay for it.
                self.eng.charge(
                    CostCategory::Join,
                    WorkProfile::scan(key_bytes)
                        .with_random(((lt.num_rows() + rt.num_rows()) * 16) as u64)
                        .with_random(rt.byte_size() as u64)
                        .with_random(out.byte_size() as u64)
                        .with_flops(pairs.len() as u64)
                        .with_rows(out.num_rows() as u64),
                )?;
                Ok(out)
            }
            Rel::Sort { keys, .. } => {
                let t = input();
                let key_cols: Vec<(Array, bool)> = keys
                    .iter()
                    .map(|k| Ok((evaluate(&k.expr, &t)?, k.ascending)))
                    .collect::<Result<_>>()?;
                let order = ops::sort_order(&key_cols, t.num_rows());
                let out = t.gather(&order);
                let n = t.num_rows().max(2) as u64;
                let log_n = (n as f64).log2().ceil() as u64;
                self.eng.charge(
                    CostCategory::OrderBy,
                    WorkProfile::scan(t.byte_size() as u64)
                        .with_flops(n * log_n)
                        .with_random(out.byte_size() as u64)
                        .with_rows(t.num_rows() as u64),
                )?;
                Ok(out)
            }
            Rel::Limit { offset, fetch, .. } => {
                let t = input();
                let start = (*offset).min(t.num_rows());
                let end = match fetch {
                    Some(f) => (start + f).min(t.num_rows()),
                    None => t.num_rows(),
                };
                let idx: Vec<usize> = (start..end).collect();
                let out = t.gather(&idx);
                self.eng.charge(
                    CostCategory::Other,
                    WorkProfile::scan(out.byte_size() as u64).with_rows(out.num_rows() as u64),
                )?;
                Ok(out)
            }
            Rel::Distinct { .. } => {
                let t = input();
                let key_cols: Vec<Array> = t.columns().to_vec();
                let (keys, _aggs) = ops::aggregate(&t, &key_cols, &[])?;
                let out = Table::new(t.schema().clone(), keys);
                self.eng.charge(
                    CostCategory::GroupBy,
                    WorkProfile::scan(t.byte_size() as u64)
                        .with_random((t.num_rows() * 16) as u64)
                        .with_rows(t.num_rows() as u64),
                )?;
                Ok(out)
            }
            // Single-node interpretation: exchange is the identity.
            Rel::Exchange { .. } => Ok(input()),
        }
    }
}

fn check_no_residual_semi(plan: &Rel) -> Result<()> {
    visit::try_visit(plan, &mut |_node, rel| {
        if let Rel::Join {
            kind: JoinKind::Semi | JoinKind::Anti,
            residual: Some(_),
            ..
        } = rel
        {
            return Err(ExecError::Unsupported(
                "correlated EXISTS with non-equi conditions (residual semi/anti join)".into(),
            ));
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirius_columnar::{DataType, Field, Scalar, Schema};
    use sirius_hw::catalog as hw;
    use sirius_plan::builder::PlanBuilder;
    use sirius_plan::expr::{self, AggExpr, AggFunc, SortExpr};

    fn setup() -> (CpuEngine, Catalog, Schema) {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("grp", DataType::Utf8),
            Field::new("v", DataType::Float64),
        ]);
        let t = Table::new(
            schema.clone(),
            vec![
                Array::from_i64([1, 2, 3, 4]),
                Array::from_strs(["a", "b", "a", "b"]),
                Array::from_f64([10.0, 20.0, 30.0, 40.0]),
            ],
        );
        let mut cat = Catalog::new();
        cat.register("t", t);
        (
            CpuEngine::new(hw::m7i_16xlarge(), EngineProfile::duckdb()),
            cat,
            schema,
        )
    }

    #[test]
    fn scan_filter_project() {
        let (eng, cat, schema) = setup();
        let plan = PlanBuilder::scan("t", schema)
            .filter(expr::gt(expr::col(2), expr::lit(Scalar::Float64(15.0))))
            .project(vec![(expr::col(0), "k".into())])
            .build();
        let out = eng.execute(&plan, &cat).unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.num_columns(), 1);
        assert!(eng.device().elapsed().as_nanos() > 0);
    }

    #[test]
    fn group_by_and_sort() {
        let (eng, cat, schema) = setup();
        let plan = PlanBuilder::scan("t", schema)
            .aggregate(
                vec![expr::col(1)],
                vec![AggExpr {
                    func: AggFunc::Sum,
                    input: Some(expr::col(2)),
                    name: "s".into(),
                }],
            )
            .sort(vec![SortExpr {
                expr: expr::col(1),
                ascending: false,
            }])
            .build();
        let out = eng.execute(&plan, &cat).unwrap();
        assert_eq!(out.num_rows(), 2);
        // Sorted by sum desc: b (60) then a (40).
        assert_eq!(out.column(0).utf8_value(0), Some("b"));
        assert_eq!(out.column(1).f64_value(0), Some(60.0));
    }

    #[test]
    fn join_and_limit() {
        let (eng, cat, schema) = setup();
        let plan = PlanBuilder::scan("t", schema.clone())
            .join(
                PlanBuilder::scan("t", schema),
                JoinKind::Inner,
                vec![expr::col(1)],
                vec![expr::col(1)],
                None,
            )
            .limit(0, Some(3))
            .build();
        let out = eng.execute(&plan, &cat).unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.num_columns(), 6);
    }

    #[test]
    fn missing_table() {
        let (eng, cat, schema) = setup();
        let plan = PlanBuilder::scan("nope", schema).build();
        assert!(matches!(
            eng.execute(&plan, &cat),
            Err(ExecError::TableNotFound(_))
        ));
    }

    #[test]
    fn clickhouse_rejects_residual_semi_joins() {
        let (_eng, cat, schema) = setup();
        let ch = CpuEngine::new(hw::m7i_16xlarge(), EngineProfile::clickhouse());
        let plan = PlanBuilder::scan("t", schema.clone())
            .join(
                PlanBuilder::scan("t", schema),
                JoinKind::Anti,
                vec![expr::col(0)],
                vec![expr::col(0)],
                Some(expr::ne(expr::col(1), expr::col(4))),
            )
            .build();
        assert!(matches!(
            ch.execute(&plan, &cat),
            Err(ExecError::Unsupported(_))
        ));
    }

    #[test]
    fn time_budget_trips() {
        let (_e, cat, schema) = setup();
        let mut profile = EngineProfile::duckdb();
        profile.time_budget = Some(std::time::Duration::from_nanos(1));
        let eng = CpuEngine::new(hw::m7i_16xlarge(), profile);
        let plan = PlanBuilder::scan("t", schema).build();
        assert!(matches!(
            eng.execute(&plan, &cat),
            Err(ExecError::TimeBudgetExceeded { .. })
        ));
    }

    #[test]
    fn distinct_via_engine() {
        let (eng, mut cat, _schema) = setup();
        let s2 = Schema::new(vec![Field::new("x", DataType::Int64)]);
        cat.register(
            "dup",
            Table::new(s2.clone(), vec![Array::from_i64([1, 1, 2])]),
        );
        let plan = PlanBuilder::scan("dup", s2).distinct().build();
        let out = eng.execute(&plan, &cat).unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn left_join_null_padding() {
        let (eng, cat, schema) = setup();
        let plan = PlanBuilder::scan("t", schema.clone())
            .join(
                PlanBuilder::from_rel(
                    PlanBuilder::scan("t", schema)
                        .filter(expr::eq(expr::col(0), expr::lit_i64(1)))
                        .build(),
                ),
                JoinKind::Left,
                vec![expr::col(0)],
                vec![expr::col(0)],
                None,
            )
            .build();
        let out = eng.execute(&plan, &cat).unwrap();
        assert_eq!(out.num_rows(), 4);
        // Exactly one matched row, three null-padded.
        let nulls = (0..4)
            .filter(|&i| out.column(3).scalar(i) == Scalar::Null)
            .count();
        assert_eq!(nulls, 3);
    }
}
