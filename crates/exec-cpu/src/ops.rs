//! CPU operator implementations: hash join, group-by, sort, limit.
//!
//! These are deliberately independent of the `sirius-cudf` kernels — same
//! semantics, different code — so the integration suite's cross-engine
//! result comparison is a meaningful oracle.
//!
//! Joins follow the same two-phase shape as the GPU path: a pair-finding
//! phase over the equality keys, then (after the engine evaluates any
//! residual predicate *vectorized* over the candidate pairs) a resolution
//! phase that applies the join type.

use crate::{ExecError, Result};
use sirius_columnar::{Array, Bitmap, Scalar, Table};
use sirius_plan::{AggFunc, JoinKind};
use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

type Key = Vec<Scalar>;

fn keys_of(key_cols: &[Array], n: usize) -> (Vec<Key>, Vec<bool>) {
    let mut keys = Vec::with_capacity(n);
    let mut nulls = Vec::with_capacity(n);
    for i in 0..n {
        let k: Key = key_cols.iter().map(|c| c.scalar(i)).collect();
        nulls.push(k.iter().any(|s| s.is_null()));
        keys.push(k);
    }
    (keys, nulls)
}

/// Equality-key candidate pairs in inner form.
pub struct CandidatePairs {
    /// Left row of each pair.
    pub left: Vec<usize>,
    /// Right row of each pair.
    pub right: Vec<usize>,
    /// Number of left input rows (for semi/anti/left resolution).
    pub left_rows: usize,
}

impl CandidatePairs {
    /// Number of candidate pairs.
    pub fn len(&self) -> usize {
        self.left.len()
    }

    /// True if no candidates matched.
    pub fn is_empty(&self) -> bool {
        self.left.is_empty()
    }
}

/// Phase 1: all equality matches (hash table built over the right input),
/// or the full cross product when `key`less.
pub fn find_pairs(
    left_keys: &[Array],
    right_keys: &[Array],
    left_rows: usize,
    right_rows: usize,
) -> CandidatePairs {
    let mut pairs = CandidatePairs {
        left: Vec::new(),
        right: Vec::new(),
        left_rows,
    };
    if left_keys.is_empty() {
        for l in 0..left_rows {
            for r in 0..right_rows {
                pairs.left.push(l);
                pairs.right.push(r);
            }
        }
        return pairs;
    }
    let (rk, rn) = keys_of(right_keys, right_rows);
    let mut table: HashMap<Key, Vec<usize>> = HashMap::new();
    for (i, k) in rk.into_iter().enumerate() {
        if !rn[i] {
            table.entry(k).or_default().push(i);
        }
    }
    let (lk, ln) = keys_of(left_keys, left_rows);
    for (l, k) in lk.iter().enumerate() {
        if ln[l] {
            continue;
        }
        if let Some(rs) = table.get(k) {
            for &r in rs {
                pairs.left.push(l);
                pairs.right.push(r);
            }
        }
    }
    pairs
}

/// Final join output indices.
pub struct CpuJoinOut {
    /// Left input row per output row.
    pub left: Vec<usize>,
    /// Right input row per output row (`None` ⇒ null padding).
    pub right: Vec<Option<usize>>,
}

/// Phase 2: apply the join type given an optional per-pair residual mask.
pub fn resolve_pairs(
    kind: JoinKind,
    pairs: &CandidatePairs,
    mask: Option<&Bitmap>,
) -> Result<CpuJoinOut> {
    if let Some(m) = mask {
        assert_eq!(m.len(), pairs.len(), "residual mask length mismatch");
    }
    let pass = |i: usize| mask.map(|m| m.get(i)).unwrap_or(true);
    let mut out = CpuJoinOut {
        left: Vec::new(),
        right: Vec::new(),
    };
    match kind {
        JoinKind::Inner | JoinKind::Cross => {
            for i in 0..pairs.len() {
                if pass(i) {
                    out.left.push(pairs.left[i]);
                    out.right.push(Some(pairs.right[i]));
                }
            }
        }
        JoinKind::Semi | JoinKind::Anti => {
            let mut matched = vec![false; pairs.left_rows];
            for i in 0..pairs.len() {
                if pass(i) {
                    matched[pairs.left[i]] = true;
                }
            }
            let want = kind == JoinKind::Semi;
            for (l, &m) in matched.iter().enumerate() {
                if m == want {
                    out.left.push(l);
                    out.right.push(None);
                }
            }
        }
        JoinKind::Left | JoinKind::Single => {
            let mut count = vec![0u32; pairs.left_rows];
            for i in 0..pairs.len() {
                if pass(i) {
                    count[pairs.left[i]] += 1;
                }
            }
            if kind == JoinKind::Single {
                if let Some(l) = count.iter().position(|&c| c > 1) {
                    return Err(ExecError::Eval(format!(
                        "scalar subquery returned {} rows for outer row {l}",
                        count[l]
                    )));
                }
            }
            for i in 0..pairs.len() {
                if pass(i) {
                    out.left.push(pairs.left[i]);
                    out.right.push(Some(pairs.right[i]));
                }
            }
            for (l, &c) in count.iter().enumerate() {
                if c == 0 {
                    out.left.push(l);
                    out.right.push(None);
                }
            }
        }
    }
    Ok(out)
}

/// Grouped / global aggregation. Group output order: first appearance.
pub fn aggregate(
    input: &Table,
    key_cols: &[Array],
    aggs: &[(AggFunc, Option<Array>)],
) -> Result<(Vec<Array>, Vec<Array>)> {
    struct Acc {
        sum_f: f64,
        sum_i: i64,
        seen: bool,
        count: i64,
        distinct: HashSet<Scalar>,
        min: Option<Scalar>,
        max: Option<Scalar>,
    }
    impl Acc {
        fn new() -> Self {
            Self {
                sum_f: 0.0,
                sum_i: 0,
                seen: false,
                count: 0,
                distinct: HashSet::new(),
                min: None,
                max: None,
            }
        }
    }

    let n = input.num_rows();
    let global = key_cols.is_empty();
    let (keys, _nulls) = keys_of(key_cols, n);

    let mut group_ids: HashMap<Key, usize> = HashMap::new();
    let mut order: Vec<Key> = Vec::new();
    let mut accs: Vec<Vec<Acc>> = Vec::new();
    if global {
        order.push(vec![]);
        accs.push(aggs.iter().map(|_| Acc::new()).collect());
    }

    // `row` indexes both `keys` and every aggregate input column.
    #[allow(clippy::needless_range_loop)]
    for row in 0..n {
        let gid = if global {
            0
        } else {
            match group_ids.entry(keys[row].clone()) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    let id = order.len();
                    e.insert(id);
                    order.push(keys[row].clone());
                    accs.push(aggs.iter().map(|_| Acc::new()).collect());
                    id
                }
            }
        };
        for (ai, (func, col)) in aggs.iter().enumerate() {
            let acc = &mut accs[gid][ai];
            let v = col.as_ref().map(|c| c.scalar(row));
            match func {
                AggFunc::CountStar => acc.count += 1,
                AggFunc::Count => {
                    if v.as_ref().map(|s| !s.is_null()).unwrap_or(false) {
                        acc.count += 1;
                    }
                }
                AggFunc::CountDistinct => {
                    if let Some(s) = v {
                        if !s.is_null() {
                            acc.distinct.insert(s);
                        }
                    }
                }
                AggFunc::Sum | AggFunc::Avg => {
                    if let Some(s) = v {
                        if !s.is_null() {
                            if let Some(f) = s.as_f64() {
                                acc.sum_f += f;
                            }
                            if let Some(i) = s.as_i64() {
                                acc.sum_i += i;
                            }
                            acc.count += 1;
                            acc.seen = true;
                        }
                    }
                }
                AggFunc::Min | AggFunc::Max => {
                    if let Some(s) = v {
                        if !s.is_null() {
                            let slot = if *func == AggFunc::Min {
                                &mut acc.min
                            } else {
                                &mut acc.max
                            };
                            let replace = match slot {
                                None => true,
                                Some(cur) => {
                                    if *func == AggFunc::Min {
                                        s < *cur
                                    } else {
                                        s > *cur
                                    }
                                }
                            };
                            if replace {
                                *slot = Some(s);
                            }
                        }
                    }
                }
            }
        }
    }

    let key_arrays: Vec<Array> = (0..key_cols.len())
        .map(|ki| {
            let scalars: Vec<Scalar> = order.iter().map(|k| k[ki].clone()).collect();
            Array::from_scalars(&scalars, key_cols[ki].data_type())
        })
        .collect();

    let agg_arrays: Vec<Array> = aggs
        .iter()
        .enumerate()
        .map(|(ai, (func, col))| {
            let in_type = col.as_ref().map(|c| c.data_type());
            let out_type = func.result_type(in_type).map_err(ExecError::Plan)?;
            let scalars: Vec<Scalar> = accs
                .iter()
                .map(|g| {
                    let a = &g[ai];
                    match func {
                        AggFunc::CountStar | AggFunc::Count => Scalar::Int64(a.count),
                        AggFunc::CountDistinct => Scalar::Int64(a.distinct.len() as i64),
                        AggFunc::Sum => {
                            if !a.seen {
                                Scalar::Null
                            } else if out_type == sirius_columnar::DataType::Float64 {
                                Scalar::Float64(a.sum_f)
                            } else {
                                Scalar::Int64(a.sum_i)
                            }
                        }
                        AggFunc::Avg => {
                            if a.count == 0 {
                                Scalar::Null
                            } else {
                                Scalar::Float64(a.sum_f / a.count as f64)
                            }
                        }
                        AggFunc::Min => a.min.clone().unwrap_or(Scalar::Null),
                        AggFunc::Max => a.max.clone().unwrap_or(Scalar::Null),
                    }
                })
                .collect();
            Ok(Array::from_scalars(&scalars, out_type))
        })
        .collect::<Result<_>>()?;

    Ok((key_arrays, agg_arrays))
}

/// Stable multi-key sort; returns row order.
pub fn sort_order(key_cols: &[(Array, bool)], num_rows: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..num_rows).collect();
    idx.sort_by(|&a, &b| {
        for (col, asc) in key_cols {
            let ord = col.scalar(a).cmp(&col.scalar(b));
            let ord = if *asc { ord } else { ord.reverse() };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirius_columnar::{DataType, Field, Schema};

    fn tbl(keys: &[i64], vals: &[&str]) -> Table {
        Table::new(
            Schema::new(vec![
                Field::new("k", DataType::Int64),
                Field::new("v", DataType::Utf8),
            ]),
            vec![
                Array::from_i64(keys.iter().copied()),
                Array::from_strs(vals.iter().copied()),
            ],
        )
    }

    fn pairs(l: &Table, r: &Table) -> CandidatePairs {
        find_pairs(
            &[l.column(0).clone()],
            &[r.column(0).clone()],
            l.num_rows(),
            r.num_rows(),
        )
    }

    #[test]
    fn inner_join_pairs() {
        let l = tbl(&[1, 2, 3], &["a", "b", "c"]);
        let r = tbl(&[2, 3, 3], &["x", "y", "z"]);
        let p = pairs(&l, &r);
        let out = resolve_pairs(JoinKind::Inner, &p, None).unwrap();
        assert_eq!(out.left.len(), 3);
    }

    #[test]
    fn residual_mask_resolution() {
        let l = tbl(&[1, 1], &["a", "b"]);
        let r = tbl(&[1, 1], &["b", "c"]);
        let p = pairs(&l, &r);
        assert_eq!(p.len(), 4);
        // Keep pairs where left value != right value.
        let mask = Bitmap::from_iter(
            (0..p.len())
                .map(|i| l.column(1).utf8_value(p.left[i]) != r.column(1).utf8_value(p.right[i])),
        );
        let inner = resolve_pairs(JoinKind::Inner, &p, Some(&mask)).unwrap();
        assert_eq!(inner.left.len(), 3);
        let anti = resolve_pairs(JoinKind::Anti, &p, Some(&mask)).unwrap();
        assert!(anti.left.is_empty());
    }

    #[test]
    fn semi_anti_left_single() {
        let l = tbl(&[1, 2], &["a", "b"]);
        let r = tbl(&[2], &["x"]);
        let p = pairs(&l, &r);
        let semi = resolve_pairs(JoinKind::Semi, &p, None).unwrap();
        assert_eq!(semi.left, vec![1]);
        let anti = resolve_pairs(JoinKind::Anti, &p, None).unwrap();
        assert_eq!(anti.left, vec![0]);
        let left = resolve_pairs(JoinKind::Left, &p, None).unwrap();
        assert_eq!(left.left.len(), 2);
        assert!(left.right.contains(&None));
        let single = resolve_pairs(JoinKind::Single, &p, None).unwrap();
        assert_eq!(single.left.len(), 2);
        // Duplicate matches break Single.
        let r2 = tbl(&[2, 2], &["x", "y"]);
        let p2 = pairs(&l, &r2);
        assert!(resolve_pairs(JoinKind::Single, &p2, None).is_err());
    }

    #[test]
    fn cross_pairs() {
        let p = find_pairs(&[], &[], 2, 3);
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn null_keys_never_match() {
        let l = Array::from_scalars(&[Scalar::Int64(1), Scalar::Null], DataType::Int64);
        let r = Array::from_scalars(&[Scalar::Null, Scalar::Int64(1)], DataType::Int64);
        let p = find_pairs(&[l], &[r], 2, 2);
        assert_eq!(p.len(), 1);
        assert_eq!((p.left[0], p.right[0]), (0, 1));
    }

    #[test]
    fn grouped_aggregation() {
        let t = tbl(&[1, 2, 1], &["a", "b", "c"]);
        let (keys, aggs) = aggregate(
            &t,
            &[t.column(0).clone()],
            &[
                (AggFunc::CountStar, None),
                (AggFunc::Min, Some(t.column(1).clone())),
            ],
        )
        .unwrap();
        assert_eq!(keys[0].len(), 2);
        assert_eq!(aggs[0].i64_value(0), Some(2));
        assert_eq!(aggs[1].utf8_value(0), Some("a"));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let t = tbl(&[], &[]);
        let (keys, aggs) = aggregate(
            &t,
            &[],
            &[
                (AggFunc::Sum, Some(t.column(0).clone())),
                (AggFunc::CountStar, None),
            ],
        )
        .unwrap();
        assert!(keys.is_empty());
        assert_eq!(aggs[0].scalar(0), Scalar::Null);
        assert_eq!(aggs[1].i64_value(0), Some(0));
    }

    #[test]
    fn sort_order_multi_key() {
        let t = tbl(&[2, 1, 2], &["b", "z", "a"]);
        let order = sort_order(
            &[(t.column(0).clone(), true), (t.column(1).clone(), true)],
            3,
        );
        assert_eq!(order, vec![1, 2, 0]);
    }
}
