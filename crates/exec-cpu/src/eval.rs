//! CPU expression evaluator: `Expr` × input table → column.
//!
//! An independent implementation from the GPU kernel path (`sirius-cudf`);
//! the two are cross-validated by the integration suite.

use crate::{ExecError, Result};
use sirius_columnar::scalar::date32_year;
#[cfg(test)]
use sirius_columnar::DataType;
use sirius_columnar::{Array, Scalar, Table};
use sirius_plan::{BinOp, Expr, UnOp};
use std::cmp::Ordering;

/// Evaluate an expression over every row of `input`.
pub fn evaluate(expr: &Expr, input: &Table) -> Result<Array> {
    let n = input.num_rows();
    let out_type = expr.data_type(input.schema()).map_err(ExecError::Plan)?;
    // Fast path: bare column reference is zero-copy.
    if let Expr::Column(i) = expr {
        return Ok(input.column(*i).clone());
    }
    let mut out = Vec::with_capacity(n);
    for row in 0..n {
        out.push(eval_row(expr, input, row)?);
    }
    Ok(Array::from_scalars(&out, out_type))
}

/// Evaluate an expression at a single row (used for residual join predicates
/// over candidate pairs as well).
pub fn eval_row(expr: &Expr, input: &Table, row: usize) -> Result<Scalar> {
    Ok(match expr {
        Expr::Column(i) => input.column(*i).scalar(row),
        Expr::Literal(s) => s.clone(),
        Expr::Binary { op, left, right } => {
            let l = eval_row(left, input, row)?;
            let r = eval_row(right, input, row)?;
            eval_binop(*op, &l, &r)?
        }
        Expr::Unary { op, input: e } => {
            let v = eval_row(e, input, row)?;
            match op {
                UnOp::IsNull => Scalar::Bool(v.is_null()),
                UnOp::IsNotNull => Scalar::Bool(!v.is_null()),
                _ if v.is_null() => Scalar::Null,
                UnOp::Not => Scalar::Bool(
                    !v.as_bool()
                        .ok_or_else(|| ExecError::Eval("NOT on non-bool".into()))?,
                ),
                UnOp::Neg => match v {
                    Scalar::Float64(f) => Scalar::Float64(-f),
                    other => Scalar::Int64(
                        -other
                            .as_i64()
                            .ok_or_else(|| ExecError::Eval("Neg on non-numeric".into()))?,
                    ),
                },
                UnOp::ExtractYear => match v {
                    Scalar::Date32(d) => Scalar::Int64(date32_year(d) as i64),
                    other => return Err(ExecError::Eval(format!("EXTRACT(YEAR) on {other:?}"))),
                },
            }
        }
        Expr::Cast { input: e, to } => {
            let v = eval_row(e, input, row)?;
            v.cast(*to)
                .ok_or_else(|| ExecError::Eval(format!("cast {v:?} to {to}")))?
        }
        Expr::Like {
            input: e,
            pattern,
            negated,
        } => {
            let v = eval_row(e, input, row)?;
            match v.as_str() {
                Some(s) => Scalar::Bool(like_match(s, pattern) != *negated),
                None => Scalar::Null,
            }
        }
        Expr::InList {
            input: e,
            list,
            negated,
        } => {
            let v = eval_row(e, input, row)?;
            if v.is_null() {
                Scalar::Null
            } else {
                Scalar::Bool(list.contains(&v) != *negated)
            }
        }
        Expr::Case {
            branches,
            otherwise,
        } => {
            let mut chosen = None;
            for (c, v) in branches {
                if eval_row(c, input, row)?.as_bool() == Some(true) {
                    chosen = Some(eval_row(v, input, row)?);
                    break;
                }
            }
            match (chosen, otherwise) {
                (Some(v), _) => v,
                (None, Some(o)) => eval_row(o, input, row)?,
                (None, None) => Scalar::Null,
            }
        }
        Expr::Substring {
            input: e,
            start,
            len,
        } => {
            let v = eval_row(e, input, row)?;
            match v.as_str() {
                Some(s) => {
                    Scalar::Utf8(s.chars().skip(start.saturating_sub(1)).take(*len).collect())
                }
                None => Scalar::Null,
            }
        }
    })
}

fn eval_binop(op: BinOp, l: &Scalar, r: &Scalar) -> Result<Scalar> {
    use BinOp::*;
    // Kleene logic first (null-aware).
    if matches!(op, And | Or) {
        let (a, b) = (l.as_bool(), r.as_bool());
        return Ok(match (op, a, b) {
            (And, Some(false), _) | (And, _, Some(false)) => Scalar::Bool(false),
            (And, Some(true), Some(true)) => Scalar::Bool(true),
            (Or, Some(true), _) | (Or, _, Some(true)) => Scalar::Bool(true),
            (Or, Some(false), Some(false)) => Scalar::Bool(false),
            _ => Scalar::Null,
        });
    }
    if l.is_null() || r.is_null() {
        return Ok(Scalar::Null);
    }
    if op.is_comparison() {
        let ord = l.cmp(r);
        return Ok(Scalar::Bool(match op {
            Eq => ord == Ordering::Equal,
            Ne => ord != Ordering::Equal,
            Lt => ord == Ordering::Less,
            Le => ord != Ordering::Greater,
            Gt => ord == Ordering::Greater,
            Ge => ord != Ordering::Less,
            _ => unreachable!(),
        }));
    }
    let numeric = |s: &Scalar| s.as_f64();
    Ok(match op {
        Div => {
            let (a, b) = (
                numeric(l).ok_or_else(|| ExecError::Eval("div non-numeric".into()))?,
                numeric(r).ok_or_else(|| ExecError::Eval("div non-numeric".into()))?,
            );
            if b == 0.0 {
                Scalar::Null
            } else {
                Scalar::Float64(a / b)
            }
        }
        Mod => {
            let (a, b) = (
                l.as_i64()
                    .ok_or_else(|| ExecError::Eval("mod non-int".into()))?,
                r.as_i64()
                    .ok_or_else(|| ExecError::Eval("mod non-int".into()))?,
            );
            if b == 0 {
                Scalar::Null
            } else {
                Scalar::Int64(a % b)
            }
        }
        Add | Sub | Mul => {
            match (l, r) {
                // Date ± days
                (Scalar::Date32(d), other) if other.as_i64().is_some() => {
                    let days = other.as_i64().expect("checked");
                    Scalar::Date32(match op {
                        Add => d + days as i32,
                        Sub => d - days as i32,
                        _ => return Err(ExecError::Eval("date mul".into())),
                    })
                }
                (Scalar::Float64(_), _) | (_, Scalar::Float64(_)) => {
                    let (a, b) = (
                        numeric(l).ok_or_else(|| ExecError::Eval("arith non-numeric".into()))?,
                        numeric(r).ok_or_else(|| ExecError::Eval("arith non-numeric".into()))?,
                    );
                    Scalar::Float64(match op {
                        Add => a + b,
                        Sub => a - b,
                        Mul => a * b,
                        _ => unreachable!(),
                    })
                }
                _ => {
                    let (a, b) = (
                        l.as_i64()
                            .ok_or_else(|| ExecError::Eval("arith non-int".into()))?,
                        r.as_i64()
                            .ok_or_else(|| ExecError::Eval("arith non-int".into()))?,
                    );
                    Scalar::Int64(match op {
                        Add => a.wrapping_add(b),
                        Sub => a.wrapping_sub(b),
                        Mul => a.wrapping_mul(b),
                        _ => unreachable!(),
                    })
                }
            }
        }
        _ => unreachable!("handled above"),
    })
}

/// LIKE matcher (`%`/`_`), shared semantics with the GPU kernel.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star_p, mut star_s): (Option<usize>, usize) = (None, 0);
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star_p = Some(pi);
            star_s = si;
            pi += 1;
        } else if let Some(sp) = star_p {
            pi = sp + 1;
            star_s += 1;
            si = star_s;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirius_columnar::{Field, Schema};
    use sirius_plan::expr::*;

    fn t() -> Table {
        Table::new(
            Schema::new(vec![
                Field::new("i", DataType::Int64),
                Field::new("f", DataType::Float64),
                Field::new("s", DataType::Utf8),
            ]),
            vec![
                Array::from_i64([1, 2, 3]),
                Array::from_f64([0.5, 1.5, 2.5]),
                Array::from_strs(["apple", "banana", "cherry"]),
            ],
        )
    }

    #[test]
    fn column_fast_path_is_zero_copy() {
        let table = t();
        let r = evaluate(&col(0), &table).unwrap();
        assert_eq!(r.i64_value(2), Some(3));
    }

    #[test]
    fn arithmetic_and_comparison() {
        let table = t();
        let r = evaluate(&mul(col(0), col(1)), &table).unwrap();
        assert_eq!(r.f64_value(1), Some(3.0));
        let c = evaluate(&ge(col(0), lit_i64(2)), &table).unwrap();
        assert_eq!(c.scalar(0), Scalar::Bool(false));
        assert_eq!(c.scalar(2), Scalar::Bool(true));
    }

    #[test]
    fn like_and_in_list() {
        let table = t();
        let l = evaluate(
            &Expr::Like {
                input: Box::new(col(2)),
                pattern: "%an%".into(),
                negated: false,
            },
            &table,
        )
        .unwrap();
        assert_eq!(l.scalar(1), Scalar::Bool(true));
        assert_eq!(l.scalar(0), Scalar::Bool(false));
        let i = evaluate(
            &Expr::InList {
                input: Box::new(col(2)),
                list: vec![Scalar::Utf8("apple".into())],
                negated: true,
            },
            &table,
        )
        .unwrap();
        assert_eq!(i.scalar(0), Scalar::Bool(false));
        assert_eq!(i.scalar(1), Scalar::Bool(true));
    }

    #[test]
    fn case_expression() {
        let table = t();
        let e = Expr::Case {
            branches: vec![(gt(col(0), lit_i64(2)), lit_str("big"))],
            otherwise: Some(Box::new(lit_str("small"))),
        };
        let r = evaluate(&e, &table).unwrap();
        assert_eq!(r.utf8_value(0), Some("small"));
        assert_eq!(r.utf8_value(2), Some("big"));
    }

    #[test]
    fn division_by_zero_is_null() {
        let table = t();
        let r = evaluate(
            &Expr::Binary {
                op: BinOp::Div,
                left: Box::new(col(0)),
                right: Box::new(lit_i64(0)),
            },
            &table,
        )
        .unwrap();
        assert_eq!(r.scalar(0), Scalar::Null);
    }

    #[test]
    fn date_plus_days() {
        let table = Table::new(
            Schema::new(vec![Field::new("d", DataType::Date32)]),
            vec![Array::from_date32([100])],
        );
        let r = evaluate(&add(col(0), lit_i64(30)), &table).unwrap();
        assert_eq!(r.data_type(), DataType::Date32);
        assert_eq!(r.i64_value(0), Some(130));
    }

    #[test]
    fn substring_eval() {
        let table = t();
        let r = evaluate(
            &Expr::Substring {
                input: Box::new(col(2)),
                start: 2,
                len: 3,
            },
            &table,
        )
        .unwrap();
        assert_eq!(r.utf8_value(0), Some("ppl"));
    }
}
