//! In-memory table catalog shared by the host engines.

use sirius_columnar::Table;
use std::collections::HashMap;
use std::sync::Arc;

/// A name → table map. Cheap to clone (tables share buffers).
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Arc<Table>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a table.
    pub fn register(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), Arc::new(table));
    }

    /// Look up a table.
    pub fn get(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.get(name).cloned()
    }

    /// Registered table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.keys().cloned().collect();
        v.sort();
        v
    }

    /// Total bytes across all registered tables.
    pub fn total_bytes(&self) -> u64 {
        self.tables.values().map(|t| t.byte_size() as u64).sum()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirius_columnar::{Array, DataType, Field, Schema};

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        c.register(
            "t",
            Table::new(
                Schema::new(vec![Field::new("x", DataType::Int64)]),
                vec![Array::from_i64([1, 2])],
            ),
        );
        assert_eq!(c.get("t").unwrap().num_rows(), 2);
        assert!(c.get("missing").is_none());
        assert_eq!(c.table_names(), vec!["t".to_string()]);
        assert!(c.total_bytes() > 0);
        assert_eq!(c.len(), 1);
    }
}
