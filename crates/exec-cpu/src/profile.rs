//! Engine personalities: per-category work multipliers and budgets.

use sirius_hw::CostCategory;
use std::time::Duration;

/// How a particular host engine's implementation quality scales the work of
/// each operator class, relative to a well-tuned vectorized engine (1.0).
/// These factors are the *engine-level* part of the calibration; the
/// *device-level* part (memory bandwidth, efficiency) lives in
/// `sirius_hw::catalog`.
#[derive(Debug, Clone)]
pub struct EngineProfile {
    /// Engine name (diagnostics and harness output).
    pub name: &'static str,
    /// Scan + predicate work multiplier.
    pub filter: f64,
    /// Join work multiplier.
    pub join: f64,
    /// Group-by work multiplier.
    pub group_by: f64,
    /// Ungrouped aggregation multiplier.
    pub aggregate: f64,
    /// Sort multiplier.
    pub order_by: f64,
    /// Projection multiplier.
    pub project: f64,
    /// Fixed planning/coordination overhead charged once per query.
    pub per_query_overhead: Duration,
    /// Abort execution when simulated time exceeds this budget.
    pub time_budget: Option<Duration>,
    /// Refuse plans containing Semi/Anti joins with residual predicates
    /// (the decorrelated form of Q21-style correlated EXISTS with
    /// inequality — the pattern the paper reports ClickHouse cannot run).
    pub reject_residual_semi_joins: bool,
}

impl EngineProfile {
    /// A neutral, well-tuned vectorized engine: the DuckDB stand-in.
    pub fn duckdb() -> Self {
        Self {
            name: "duckdb",
            filter: 1.0,
            join: 1.0,
            group_by: 1.0,
            aggregate: 1.0,
            order_by: 1.0,
            project: 1.0,
            per_query_overhead: Duration::from_micros(300),
            time_budget: None,
            reject_residual_semi_joins: false,
        }
    }

    /// The ClickHouse stand-in: excellent scans, weak joins (§4.2: "not
    /// optimized for join-heavy workloads"), no correlated subqueries.
    pub fn clickhouse() -> Self {
        Self {
            name: "clickhouse",
            filter: 0.7,
            join: 8.0,
            group_by: 0.9,
            aggregate: 0.8,
            order_by: 1.2,
            project: 0.9,
            per_query_overhead: Duration::from_micros(500),
            time_budget: Some(Duration::from_secs(300)),
            reject_residual_semi_joins: true,
        }
    }

    /// The Apache Doris stand-in: a general-purpose distributed warehouse,
    /// slower per-operator than the embedded engines but join-capable.
    pub fn doris() -> Self {
        Self {
            name: "doris",
            filter: 1.2,
            join: 1.6,
            group_by: 1.5,
            aggregate: 1.2,
            order_by: 1.4,
            project: 1.0,
            // Doris' heavy coordination cost is charged by the cluster
            // coordinator, not per node-fragment.
            per_query_overhead: Duration::from_micros(500),
            time_budget: None,
            reject_residual_semi_joins: false,
        }
    }

    /// The multiplier for one category.
    pub fn multiplier(&self, c: CostCategory) -> f64 {
        match c {
            // CPU engines stream scans through the same vectorized path as
            // predicate evaluation, so scans share the filter multiplier.
            CostCategory::Scan | CostCategory::Filter => self.filter,
            CostCategory::Join => self.join,
            CostCategory::GroupBy => self.group_by,
            CostCategory::Aggregate => self.aggregate,
            CostCategory::OrderBy => self.order_by,
            CostCategory::Project => self.project,
            CostCategory::Exchange | CostCategory::Other => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn personalities_differ_where_the_paper_says() {
        let d = EngineProfile::duckdb();
        let c = EngineProfile::clickhouse();
        assert!(c.join > 3.0 * d.join, "ClickHouse joins are the weak spot");
        assert!(c.filter < d.filter, "ClickHouse scans are fast");
        assert!(c.reject_residual_semi_joins);
        assert!(!d.reject_residual_semi_joins);
        let doris = EngineProfile::doris();
        assert!(doris.per_query_overhead > d.per_query_overhead);
    }

    #[test]
    fn multiplier_lookup_covers_all_categories() {
        let p = EngineProfile::duckdb();
        for c in CostCategory::ALL {
            assert!(p.multiplier(c) > 0.0);
        }
    }
}
