//! # sirius-exec-cpu — vectorized CPU execution engine
//!
//! The CPU counterpart to `sirius-cudf`: a complete, independent
//! implementation of the plan IR's operators that the host-database
//! baselines (DuckDB, ClickHouse, Doris stand-ins) execute on. Results are
//! real and must agree with the GPU engine — the integration suite runs
//! TPC-H on both and compares — while simulated time is charged to a CPU
//! [`sirius_hw::Device`].
//!
//! Engine personalities are expressed through an [`EngineProfile`]: per
//! operator-category work multipliers that capture how efficient each
//! baseline is at that operator class (e.g. the ClickHouse stand-in scans
//! fast but pays heavily for joins, reproducing the paper's "ClickHouse is
//! not optimized for join-heavy workloads"), plus an optional simulated-time
//! budget (the paper reports Q9 "does not finish" on ClickHouse).

#![warn(missing_docs)]

pub mod catalog;
pub mod engine;
pub mod eval;
pub mod ops;
pub mod profile;

pub use catalog::Catalog;
pub use engine::CpuEngine;
pub use profile::EngineProfile;

/// Errors produced during CPU execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Referenced table missing from the catalog.
    TableNotFound(String),
    /// Plan-level error (typing/validation).
    Plan(sirius_plan::PlanError),
    /// Columnar-layer error.
    Columnar(sirius_columnar::ColumnarError),
    /// Expression/operator evaluation failure.
    Eval(String),
    /// The engine's simulated-time budget was exhausted (models the paper's
    /// "does not finish" annotation for ClickHouse Q9).
    TimeBudgetExceeded {
        /// Simulated time accumulated when the budget tripped.
        elapsed: std::time::Duration,
        /// The configured budget.
        budget: std::time::Duration,
    },
    /// The engine does not support a plan feature (ClickHouse Q21).
    Unsupported(String),
}

impl From<sirius_plan::PlanError> for ExecError {
    fn from(e: sirius_plan::PlanError) -> Self {
        ExecError::Plan(e)
    }
}

impl From<sirius_columnar::ColumnarError> for ExecError {
    fn from(e: sirius_columnar::ColumnarError) -> Self {
        ExecError::Columnar(e)
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::TableNotFound(t) => write!(f, "table not found: {t}"),
            ExecError::Plan(e) => write!(f, "plan error: {e}"),
            ExecError::Columnar(e) => write!(f, "columnar error: {e}"),
            ExecError::Eval(m) => write!(f, "evaluation error: {m}"),
            ExecError::TimeBudgetExceeded { elapsed, budget } => write!(
                f,
                "query did not finish: simulated {elapsed:?} exceeded budget {budget:?}"
            ),
            ExecError::Unsupported(m) => write!(f, "unsupported by this engine: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Result alias for CPU execution.
pub type Result<T> = std::result::Result<T, ExecError>;
