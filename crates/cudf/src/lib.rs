//! # sirius-cudf — GPU relational kernels (libcudf-equivalent)
//!
//! The paper implements "most physical operators … using the libcudf
//! library" (§3.2.2). This crate is the libcudf stand-in: a library of
//! columnar relational kernels — element-wise expressions, filters, hash
//! joins, hash/sort group-by, sorts, distinct, and reductions — that compute
//! *real* results on host buffers while charging simulated GPU time to a
//! [`sirius_hw::Device`] through a [`GpuContext`].
//!
//! Behavioural fidelity notes, matching the paper:
//!
//! * **Row indices are `i32`**, as in libcudf; §3.2.3 calls out the
//!   `uint64`/`int32` index-type mismatch between Sirius and libcudf, and the
//!   conversion lives in Sirius' buffer manager, not here.
//! * **Group-by on string keys is sort-based** (libcudf's default), which
//!   the paper blames for the Q10/Q18 group-by overhead in Figure 5.
//!   Fixed-width keys use hash group-by.
//! * **Group-by with few distinct groups pays atomic contention**, the
//!   paper's explanation for Q1's group-by share; the cost model charges a
//!   contention surcharge when the group count is small.

#![warn(missing_docs)]

pub mod binary;
pub mod filter;
pub mod fused;
pub mod groupby;
pub mod hash;
pub mod join;
pub mod materialize;
pub mod partition;
pub mod reduce;
pub mod sort;
pub mod unary;
pub mod unique;

pub use groupby::{AggKind, AggRequest, PartialAggPlan, PartialSpec};
pub use join::{JoinHashTable, JoinIndices, JoinType};
pub use partition::hash_partition;

use sirius_hw::{CostCategory, Device, WorkProfile};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What a context does with the work its kernels describe.
#[derive(Clone)]
enum ChargeMode {
    /// Charge the device ledger directly (the default).
    Live,
    /// Drop charges entirely (inside an already-fused region).
    Muted,
    /// Accumulate work profiles into a shared [`WorkCollector`] instead of
    /// the ledger: the caller derives one fused charge from the collected
    /// totals (operator-chain fusion).
    Collect(WorkCollector),
}

/// Accumulator for the work a group of kernel launches *would* have
/// charged. Cloning shares the accumulator.
#[derive(Clone, Default)]
pub struct WorkCollector {
    inner: Arc<Mutex<WorkProfile>>,
}

impl WorkCollector {
    /// A fresh, empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    fn add(&self, work: &WorkProfile) {
        let mut acc = self.inner.lock().expect("collector lock");
        *acc = acc.merge(*work);
    }

    /// Drain the accumulated profile, leaving the collector empty.
    pub fn take(&self) -> WorkProfile {
        std::mem::take(&mut *self.inner.lock().expect("collector lock"))
    }
}

/// Execution context for a batch of kernel launches: the device to charge
/// and the operator category the charges are attributed to.
#[derive(Clone)]
pub struct GpuContext {
    device: Device,
    category: CostCategory,
    mode: ChargeMode,
}

impl GpuContext {
    /// Context charging `device` under `category`.
    pub fn new(device: Device, category: CostCategory) -> Self {
        Self {
            device,
            category,
            mode: ChargeMode::Live,
        }
    }

    /// Same device, different attribution category.
    pub fn with_category(&self, category: CostCategory) -> Self {
        Self {
            device: self.device.clone(),
            category,
            mode: self.mode.clone(),
        }
    }

    /// Same category, charging onto device stream `stream`. Morsel workers
    /// use one stream each so their kernels overlap in the ledger.
    pub fn on_stream(&self, stream: usize) -> Self {
        Self {
            device: self.device.on_stream(stream),
            category: self.category,
            mode: self.mode.clone(),
        }
    }

    /// Context whose charges are dropped. Callers that replace a group of
    /// per-node launches with one fused charge (e.g. AST expression fusion)
    /// compute through a muted context, then charge the fused kernel
    /// themselves.
    pub fn muted(&self) -> Self {
        Self {
            device: self.device.clone(),
            category: self.category,
            mode: ChargeMode::Muted,
        }
    }

    /// Context whose charges accumulate into `collector` instead of the
    /// ledger. Operator-chain fusion runs each stage through a collecting
    /// context, then derives a single fused kernel charge from the totals
    /// (keeping the collected random-access bytes and flops honest while
    /// replacing the per-stage streamed traffic with one read + one write).
    pub fn collecting(&self, collector: &WorkCollector) -> Self {
        Self {
            device: self.device.clone(),
            category: self.category,
            mode: ChargeMode::Collect(collector.clone()),
        }
    }

    /// Whether charges on this context are dropped.
    pub fn is_muted(&self) -> bool {
        matches!(self.mode, ChargeMode::Muted)
    }

    /// The underlying device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The attribution category.
    pub fn category(&self) -> CostCategory {
        self.category
    }

    /// Charge one kernel's work. Muted contexts drop the charge; collecting
    /// contexts accumulate it without touching the ledger.
    pub fn charge(&self, work: &WorkProfile) -> Duration {
        match &self.mode {
            ChargeMode::Live => self.device.charge(self.category, work),
            ChargeMode::Muted => Duration::ZERO,
            ChargeMode::Collect(c) => {
                c.add(work);
                Duration::ZERO
            }
        }
    }

    /// Charge one kernel's work under a kernel name. When the device has a
    /// trace sink attached, the emitted kernel event carries `name` (e.g.
    /// `"join.probe"`) plus the profile's bytes and rows; otherwise this is
    /// exactly [`charge`](Self::charge). Muted and collecting contexts
    /// behave as in [`charge`](Self::charge).
    pub fn charge_named(&self, name: &'static str, work: &WorkProfile) -> Duration {
        match &self.mode {
            ChargeMode::Live => self.device.charge_labeled(self.category, name, work),
            ChargeMode::Muted => Duration::ZERO,
            ChargeMode::Collect(c) => {
                c.add(work);
                Duration::ZERO
            }
        }
    }
}

/// Errors from kernels (type mismatches, unsupported combinations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// Operand types not supported by the kernel.
    UnsupportedTypes(String),
    /// Columnar-layer error.
    Columnar(sirius_columnar::ColumnarError),
    /// A `Single` join found more than one match for a left row.
    NonScalarSubquery {
        /// The offending left row.
        left_row: usize,
        /// How many matches it found.
        matches: usize,
    },
}

impl From<sirius_columnar::ColumnarError> for KernelError {
    fn from(e: sirius_columnar::ColumnarError) -> Self {
        KernelError::Columnar(e)
    }
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::UnsupportedTypes(m) => write!(f, "unsupported types: {m}"),
            KernelError::Columnar(e) => write!(f, "columnar error: {e}"),
            KernelError::NonScalarSubquery { left_row, matches } => write!(
                f,
                "scalar subquery returned {matches} rows for outer row {left_row}"
            ),
        }
    }
}

impl std::error::Error for KernelError {}

/// Kernel result alias.
pub type Result<T> = std::result::Result<T, KernelError>;

#[cfg(test)]
pub(crate) fn test_ctx() -> GpuContext {
    GpuContext::new(
        Device::new(sirius_hw::catalog::gh200_gpu()),
        CostCategory::Other,
    )
}
