//! Selection-vector plumbing for operator-chain fusion.
//!
//! A fused pipeline segment executes its filter/project/probe stages over
//! one morsel in a single logical kernel pass: predicate results are carried
//! as a *selection* over the current view instead of materializing the
//! filtered table, and the selection is applied (one gather) only when a
//! downstream stage — or the segment sink — actually consumes compacted
//! rows. This is the operator-level generalization of the AST expression
//! fusion in the expression evaluator: intermediates live "in registers",
//! so the segment charges one read of its input plus one write of its
//! output, never the per-stage traffic.
//!
//! The executor that drives this lives in `sirius-core`; this module owns
//! the data movement so the no-intermediate-materialization discipline is
//! testable (and lintable) in one place.

#![deny(clippy::needless_collect)]

use crate::Result;
use sirius_columnar::{Array, Bitmap, Table};

/// A morsel flowing through a fused segment: the current table plus a
/// pending selection that has not been applied yet.
///
/// Invariant: `pending` (when present) has one bit per row of `table`.
pub struct FusedView {
    table: Table,
    pending: Option<Bitmap>,
}

impl FusedView {
    /// Start a segment pass over `morsel` with every row selected.
    pub fn new(morsel: Table) -> Self {
        Self {
            table: morsel,
            pending: None,
        }
    }

    /// Rows currently selected (without applying the selection).
    pub fn num_rows(&self) -> usize {
        match &self.pending {
            Some(sel) => sel.count_set(),
            None => self.table.num_rows(),
        }
    }

    /// Estimated bytes of the selected rows: exact when no selection is
    /// pending, row-proportional otherwise (diagnostics only — the fused
    /// pass never materializes the intermediate these bytes describe).
    pub fn byte_estimate(&self) -> u64 {
        match &self.pending {
            None => self.table.byte_size() as u64,
            Some(sel) => {
                let total = self.table.num_rows();
                if total == 0 {
                    0
                } else {
                    (self.table.byte_size() as u64).saturating_mul(sel.count_set() as u64)
                        / total as u64
                }
            }
        }
    }

    /// Fold a boolean predicate column (evaluated over the *compacted*
    /// view) into the selection. SQL WHERE semantics: null does not select.
    pub fn select(&mut self, mask: &Array) -> Result<()> {
        let mask = mask.as_bool()?.to_selection();
        match self.pending.take() {
            // Stacked selections compose by gathering the new mask through
            // the old selection's surviving rows; normalization coalesces
            // adjacent filters, so in practice this arm only runs when a
            // caller skipped the compaction point.
            Some(old) => {
                self.table = self.table.filter(&old);
                self.pending = Some(mask);
            }
            None => self.pending = Some(mask),
        }
        Ok(())
    }

    /// The compacted table: applies any pending selection (the segment's
    /// one gather for this stage boundary) and returns the current view.
    pub fn compacted(&mut self) -> &Table {
        if let Some(sel) = self.pending.take() {
            self.table = self.table.filter(&sel);
        }
        &self.table
    }

    /// Replace the view with a stage's output (projection, probe result);
    /// the new table starts fully selected.
    pub fn replace(&mut self, table: Table) {
        self.table = table;
        self.pending = None;
    }

    /// Finish the segment: compact and hand the output to the sink.
    pub fn finish(mut self) -> Table {
        if let Some(sel) = self.pending.take() {
            self.table = self.table.filter(&sel);
        }
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirius_columnar::{DataType, Field, Scalar, Schema};

    fn t() -> Table {
        Table::new(
            Schema::new(vec![
                Field::new("k", DataType::Int64),
                Field::new("v", DataType::Int64),
            ]),
            vec![Array::from_i64([1, 2, 3, 4]), Array::from_i64([5, 6, 7, 8])],
        )
    }

    fn mask(bits: [bool; 4]) -> Array {
        let scalars: Vec<Scalar> = bits.iter().map(|b| Scalar::Bool(*b)).collect();
        Array::from_scalars(&scalars, DataType::Bool)
    }

    #[test]
    fn selection_is_lazy_until_compaction() {
        let mut v = FusedView::new(t());
        v.select(&mask([true, false, true, false])).unwrap();
        // Selected count reflects the mask, but nothing moved yet.
        assert_eq!(v.num_rows(), 2);
        let out = v.finish();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.column(0).i64_value(1), Some(3));
    }

    #[test]
    fn compacted_applies_once() {
        let mut v = FusedView::new(t());
        v.select(&mask([false, true, true, true])).unwrap();
        assert_eq!(v.compacted().num_rows(), 3);
        // Idempotent: a second call gathers nothing.
        assert_eq!(v.compacted().num_rows(), 3);
        assert_eq!(v.finish().num_rows(), 3);
    }

    #[test]
    fn replace_resets_selection() {
        let mut v = FusedView::new(t());
        v.select(&mask([true, false, false, false])).unwrap();
        v.replace(t());
        assert_eq!(v.num_rows(), 4);
        assert_eq!(v.finish().num_rows(), 4);
    }

    #[test]
    fn stacked_selections_compose() {
        let mut v = FusedView::new(t());
        v.select(&mask([true, true, true, false])).unwrap();
        // Second mask is over the 3-row compacted view.
        let second = Array::from_scalars(
            &[Scalar::Bool(false), Scalar::Bool(true), Scalar::Bool(true)],
            DataType::Bool,
        );
        v.select(&second).unwrap();
        let out = v.finish();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.column(0).i64_value(0), Some(2));
    }

    #[test]
    fn null_mask_rows_do_not_select() {
        let mut v = FusedView::new(t());
        let m = Array::from_scalars(
            &[
                Scalar::Bool(true),
                Scalar::Null,
                Scalar::Bool(false),
                Scalar::Bool(true),
            ],
            DataType::Bool,
        );
        v.select(&m).unwrap();
        assert_eq!(v.num_rows(), 2);
    }

    #[test]
    fn byte_estimate_scales_with_selection() {
        let mut v = FusedView::new(t());
        let full = v.byte_estimate();
        v.select(&mask([true, false, true, false])).unwrap();
        assert_eq!(v.byte_estimate(), full / 2);
    }
}
