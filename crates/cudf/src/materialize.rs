//! Late materialization: decode dictionary-encoded string columns back to
//! payload bytes. The engine calls this only at the result sink (and at
//! operators that genuinely need bytes) — everywhere else strings travel
//! as 4-byte codes.

use crate::{GpuContext, Result};
use sirius_columnar::Table;
use sirius_hw::WorkProfile;

/// Decode every dictionary-encoded column of `t`, charging one kernel that
/// reads the codes plus each shared dictionary and writes the decoded
/// payload. Tables without encoded columns pass through untouched (and
/// uncharged — there is nothing to launch).
pub fn materialize_strings(ctx: &GpuContext, t: &Table) -> Result<Table> {
    if !t.has_dict_columns() {
        return Ok(t.clone());
    }
    let encoded_bytes: u64 = t
        .columns()
        .iter()
        .filter(|c| c.is_dict())
        .map(|c| c.byte_size() as u64)
        .sum();
    let dict_bytes = t.dict_byte_size() as u64;
    let out = t.decode_strings();
    let decoded_bytes: u64 = out
        .columns()
        .iter()
        .zip(t.columns())
        .filter(|(_, src)| src.is_dict())
        .map(|(c, _)| c.byte_size() as u64)
        .sum();
    ctx.charge_named(
        "materialize",
        &WorkProfile::scan(encoded_bytes + decoded_bytes)
            .with_random(dict_bytes)
            .with_rows(t.num_rows() as u64),
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_ctx;
    use sirius_columnar::{Array, DataType, Field, Schema};

    #[test]
    fn decodes_and_charges_only_when_encoded() {
        let ctx = test_ctx();
        let t = Table::new(
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("name", DataType::Utf8),
            ]),
            vec![
                Array::from_i64([1, 2, 1]),
                Array::from_strs(["ada", "grace", "ada"]).dict_encode(),
            ],
        );
        let out = materialize_strings(&ctx, &t).unwrap();
        assert!(!out.has_dict_columns());
        assert_eq!(out.column(1).utf8_value(1), Some("grace"));
        assert!(ctx.device().elapsed() > std::time::Duration::ZERO);

        let ctx2 = test_ctx();
        let plain = materialize_strings(&ctx2, &out).unwrap();
        assert_eq!(plain, out);
        assert_eq!(ctx2.device().elapsed(), std::time::Duration::ZERO);
    }
}
