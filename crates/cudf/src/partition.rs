//! Hash partitioning: the kernel behind Grace-style out-of-core joins and
//! group-by. Rows are routed by a hash of their key columns, so equal keys
//! always land in the same partition — per-partition build+probe (or
//! per-partition aggregation) is then exact. The recursion `level` salts the
//! hash, so repartitioning an oversized partition redistributes its rows
//! instead of mapping them all to one bucket again.

use crate::hash::{key_bytes, row_keys, FxBuildHasher};
use crate::{GpuContext, Result};
use sirius_columnar::{Array, Table};
use sirius_hw::WorkProfile;
use std::hash::BuildHasher;

/// Split `table` into `parts` partitions by a hash of `key_columns`
/// (salted with `level` for recursive repartitioning). Rows whose key
/// contains NULL are routed like any other key value: they must surface in
/// exactly one partition for left/anti join semantics to hold. Partitions
/// concatenated in order contain every input row exactly once.
pub fn hash_partition(
    ctx: &GpuContext,
    key_columns: &[&Array],
    table: &Table,
    parts: usize,
    level: u32,
) -> Result<Vec<Table>> {
    let parts = parts.max(1);
    let n = table.num_rows();
    // One pass over the keys to compute bucket ids, one streamed read of the
    // table plus a scattered write per partition.
    ctx.charge_named(
        "partition.hash",
        &WorkProfile::scan(key_bytes(key_columns) + table.byte_size() as u64)
            .with_random(table.byte_size() as u64)
            .with_rows(n as u64)
            .with_launches(2),
    );
    if parts == 1 {
        return Ok(vec![table.clone()]);
    }
    let (keys, _has_null) = row_keys(key_columns, n);
    let hasher = FxBuildHasher::default();
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); parts];
    for (row, key) in keys.iter().enumerate() {
        let h = finalize(hasher.hash_one((level, key)));
        buckets[(h % parts as u64) as usize].push(row);
    }
    Ok(buckets.into_iter().map(|ix| table.gather(&ix)).collect())
}

/// Avalanche finalizer (splitmix64). FxHash is multiplicative and its low
/// bits correlate across rows that already share a bucket residue, so a
/// recursive repartition taking `hash % parts` directly can dump an entire
/// parent partition into one child bucket and never converge.
fn finalize(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_ctx;
    use sirius_columnar::{DataType, Field, Scalar, Schema};

    fn table() -> Table {
        Table::new(
            Schema::new(vec![
                Field::new("k", DataType::Int64),
                Field::new("v", DataType::Float64),
            ]),
            vec![
                Array::from_i64([1, 2, 3, 1, 2, 3, 7, 8]),
                Array::from_f64([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]),
            ],
        )
    }

    #[test]
    fn partitions_cover_all_rows_exactly_once() {
        let ctx = test_ctx();
        let t = table();
        let parts = hash_partition(&ctx, &[t.column(0)], &t, 4, 0).unwrap();
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(|p| p.num_rows()).sum();
        assert_eq!(total, t.num_rows());
        let mut vals: Vec<f64> = parts
            .iter()
            .flat_map(|p| (0..p.num_rows()).map(|i| p.column(1).f64_value(i).unwrap()))
            .collect();
        vals.sort_by(f64::total_cmp);
        assert_eq!(vals, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert!(ctx.device().elapsed().as_nanos() > 0);
    }

    #[test]
    fn equal_keys_collocate() {
        let ctx = test_ctx();
        let t = table();
        let parts = hash_partition(&ctx, &[t.column(0)], &t, 3, 1).unwrap();
        // Every key value must appear in exactly one partition.
        for key in [1i64, 2, 3] {
            let hosting = parts
                .iter()
                .filter(|p| (0..p.num_rows()).any(|i| p.column(0).i64_value(i) == Some(key)))
                .count();
            assert_eq!(hosting, 1, "key {key} split across partitions");
        }
    }

    #[test]
    fn level_salts_the_routing() {
        let ctx = test_ctx();
        let t = Table::new(
            Schema::new(vec![Field::new("k", DataType::Int64)]),
            vec![Array::from_i64((0..256).collect::<Vec<_>>())],
        );
        let members = |level: u32| -> Vec<Vec<i64>> {
            hash_partition(&ctx, &[t.column(0)], &t, 4, level)
                .unwrap()
                .iter()
                .map(|p| {
                    (0..p.num_rows())
                        .map(|i| p.column(0).i64_value(i).unwrap())
                        .collect()
                })
                .collect()
        };
        // Same level is deterministic; a different level reshuffles.
        assert_eq!(members(0), members(0));
        assert_ne!(members(0), members(1), "level must change the assignment");
    }

    #[test]
    fn null_keys_land_in_one_partition() {
        let ctx = test_ctx();
        let t = Table::new(
            Schema::new(vec![Field::new("k", DataType::Int64)]),
            vec![Array::from_scalars(
                &[Scalar::Null, Scalar::Int64(1), Scalar::Null],
                DataType::Int64,
            )],
        );
        let parts = hash_partition(&ctx, &[t.column(0)], &t, 2, 0).unwrap();
        let total: usize = parts.iter().map(|p| p.num_rows()).sum();
        assert_eq!(total, 3);
        let null_hosting = parts
            .iter()
            .filter(|p| (0..p.num_rows()).any(|i| p.column(0).scalar(i).is_null()))
            .count();
        assert_eq!(null_hosting, 1, "null keys must collocate");
    }

    #[test]
    fn single_partition_is_identity() {
        let ctx = test_ctx();
        let t = table();
        let parts = hash_partition(&ctx, &[t.column(0)], &t, 1, 0).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].num_rows(), t.num_rows());
    }
}
