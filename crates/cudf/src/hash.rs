//! FxHash-style hashing and multi-column key extraction.
//!
//! The perf-book guidance is to avoid SipHash for hot integer keys; rather
//! than pull in a dependency, this is the classic Fx multiply-rotate hasher
//! (the one rustc uses), plus helpers that turn a set of key columns into
//! per-row [`Key`] values usable in hash maps.

use sirius_columnar::{Array, Scalar};
use std::hash::{BuildHasherDefault, Hasher};

/// The Fx hash constant (64-bit golden-ratio multiplier).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for in-process hash tables.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// A multi-column row key. `None` marks a row whose key contains SQL NULL:
/// such rows never match in joins (but do form groups in GROUP BY).
pub type Key = Vec<Scalar>;

/// Extract per-row keys from key columns. Returns `(keys, has_null)` where
/// `has_null[i]` is true when any key column is null at row `i`.
pub fn row_keys(columns: &[&Array], num_rows: usize) -> (Vec<Key>, Vec<bool>) {
    let mut keys = Vec::with_capacity(num_rows);
    let mut has_null = Vec::with_capacity(num_rows);
    for i in 0..num_rows {
        let mut k = Vec::with_capacity(columns.len());
        let mut null = false;
        for c in columns {
            let s = c.scalar(i);
            null |= s.is_null();
            k.push(s);
        }
        keys.push(k);
        has_null.push(null);
    }
    (keys, has_null)
}

/// Total key bytes across the key columns (for cost accounting).
pub fn key_bytes(columns: &[&Array]) -> u64 {
    columns.iter().map(|c| c.byte_size() as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn fx(v: impl Hash) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_distinguishing() {
        assert_eq!(fx(42u64), fx(42u64));
        assert_ne!(fx(42u64), fx(43u64));
        assert_ne!(fx("a"), fx("b"));
    }

    #[test]
    fn row_keys_multi_column() {
        let a = Array::from_i64([1, 2, 1]);
        let b = Array::from_strs(["x", "y", "x"]);
        let (keys, nulls) = row_keys(&[&a, &b], 3);
        assert_eq!(keys[0], keys[2]);
        assert_ne!(keys[0], keys[1]);
        assert!(nulls.iter().all(|n| !n));
    }

    #[test]
    fn row_keys_flags_nulls() {
        let a = Array::from_scalars(
            &[Scalar::Int64(1), Scalar::Null],
            sirius_columnar::DataType::Int64,
        );
        let (keys, nulls) = row_keys(&[&a], 2);
        assert_eq!(nulls, vec![false, true]);
        assert_eq!(keys[1][0], Scalar::Null);
    }

    #[test]
    fn fx_map_works() {
        let mut m: FxHashMap<Key, usize> = FxHashMap::default();
        m.insert(vec![Scalar::Int64(1), Scalar::Utf8("k".into())], 7);
        assert_eq!(
            m.get(&vec![Scalar::Int64(1), Scalar::Utf8("k".into())]),
            Some(&7)
        );
    }
}
