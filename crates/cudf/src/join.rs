//! Hash join kernels.
//!
//! Following libcudf, the join is split into two phases: a *pair-finding*
//! kernel that hashes the build side and probes it to produce candidate
//! `(left, right)` index pairs for the equality keys, and a *resolution*
//! step that applies the join type (and any residual non-equi predicate the
//! engine evaluated on the candidate pairs) to produce the final gather
//! indices. Indices are `i32`, libcudf's row-index type (§3.2.3).

use crate::hash::{key_bytes, row_keys, FxHashMap, Key};
use crate::{GpuContext, KernelError, Result};
use sirius_columnar::{Array, Bitmap};
use sirius_hw::WorkProfile;

/// Supported join types. `Single` is a left join that requires at most one
/// match per left row (scalar correlated subqueries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinType {
    /// Inner equi-join.
    Inner,
    /// Left outer join.
    Left,
    /// Left semi join (EXISTS / IN).
    Semi,
    /// Left anti join (NOT EXISTS / NOT IN).
    Anti,
    /// Left single join (scalar subquery; errors on duplicate matches).
    Single,
}

/// Final join output: parallel index vectors into the left and right input
/// tables. `right[i] == None` produces a null-padded right row (Left/Single
/// unmatched rows); for Semi/Anti the right vector is all `None` and only
/// `left` is meaningful.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinIndices {
    /// Row indices into the left table.
    pub left: Vec<i32>,
    /// Row indices into the right table (`None` ⇒ null padding).
    pub right: Vec<Option<i32>>,
}

impl JoinIndices {
    /// Number of output rows.
    pub fn len(&self) -> usize {
        self.left.len()
    }

    /// True if no rows joined.
    pub fn is_empty(&self) -> bool {
        self.left.is_empty()
    }
}

/// Candidate equality matches in inner form: every `(left, right)` pair
/// whose keys compare equal (SQL semantics: null keys never match).
#[derive(Debug, Clone, Default)]
pub struct JoinPairs {
    /// Left row of each candidate pair.
    pub left: Vec<i32>,
    /// Right row of each candidate pair.
    pub right: Vec<i32>,
    left_rows: usize,
}

impl JoinPairs {
    /// Number of candidate pairs.
    pub fn len(&self) -> usize {
        self.left.len()
    }

    /// True if no candidates.
    pub fn is_empty(&self) -> bool {
        self.left.is_empty()
    }

    /// The number of rows in the left input these pairs index into.
    pub fn left_rows(&self) -> usize {
        self.left_rows
    }

    /// Assemble pairs from pre-computed index vectors. Used by the morsel
    /// engine to concatenate per-morsel probe outputs: because each morsel's
    /// probe emits *global* left indices (via `left_offset`), concatenating
    /// morsel outputs in morsel order reproduces the whole-column pair list
    /// exactly.
    pub fn from_parts(left: Vec<i32>, right: Vec<i32>, left_rows: usize) -> JoinPairs {
        assert_eq!(left.len(), right.len(), "pair vectors must be parallel");
        JoinPairs {
            left,
            right,
            left_rows,
        }
    }
}

/// A built join hash table over the right side, reusable across any number
/// of probe calls (libcudf's `hash_join` object). Building once and probing
/// per morsel is what makes morsel-parallel joins cheap: the build is a
/// pipeline breaker, the probes stream.
pub struct JoinHashTable {
    table: FxHashMap<Key, Vec<i32>>,
    key_columns: usize,
    right_rows: usize,
}

impl JoinHashTable {
    /// Number of rows the table was built over.
    pub fn right_rows(&self) -> usize {
        self.right_rows
    }
}

/// Build phase: hash the **right** side's keys into a multimap. Engines put
/// the smaller input on the right.
pub fn build_hash_table(
    ctx: &GpuContext,
    right_keys: &[&Array],
    right_rows: usize,
) -> Result<JoinHashTable> {
    if right_keys.is_empty() {
        return Err(KernelError::UnsupportedTypes(
            "join build requires at least one key column (use cross_join_pairs)".into(),
        ));
    }
    let (rkeys, rnull) = row_keys(right_keys, right_rows);
    let mut table: FxHashMap<Key, Vec<i32>> = FxHashMap::default();
    for (i, key) in rkeys.into_iter().enumerate() {
        if !rnull[i] {
            table.entry(key).or_default().push(i as i32);
        }
    }
    ctx.charge_named(
        "join.build",
        &WorkProfile::scan(key_bytes(right_keys))
            .with_random((right_rows * 16) as u64)
            .with_flops(right_rows as u64)
            .with_rows(right_rows as u64),
    );
    Ok(JoinHashTable {
        table,
        key_columns: right_keys.len(),
        right_rows,
    })
}

/// Probe phase: stream `left_keys` (a whole column or one morsel of it)
/// against a built table. Emitted left indices are offset by `left_offset`
/// so morsel probes produce global row indices; `left_rows` is the total
/// left row count (for later Semi/Anti/Left resolution).
pub fn probe_hash_table(
    ctx: &GpuContext,
    table: &JoinHashTable,
    left_keys: &[&Array],
    left_rows: usize,
    left_offset: usize,
) -> Result<JoinPairs> {
    if left_keys.len() != table.key_columns {
        return Err(KernelError::UnsupportedTypes(format!(
            "probe key count {} != build key count {}",
            left_keys.len(),
            table.key_columns
        )));
    }
    let probe_rows = left_keys[0].len();
    let (lkeys, lnull) = row_keys(left_keys, probe_rows);
    let mut pairs = JoinPairs {
        left: Vec::new(),
        right: Vec::new(),
        left_rows,
    };
    for (i, key) in lkeys.into_iter().enumerate() {
        if lnull[i] {
            continue;
        }
        if let Some(matches) = table.table.get(&key) {
            for &r in matches {
                pairs.left.push((left_offset + i) as i32);
                pairs.right.push(r);
            }
        }
    }
    ctx.charge_named(
        "join.probe",
        &WorkProfile::scan(key_bytes(left_keys))
            .with_random((probe_rows * 16) as u64)
            .with_streamed((pairs.len() * 8) as u64)
            .with_flops(probe_rows as u64)
            .with_rows(probe_rows as u64),
    );
    Ok(pairs)
}

/// Phase 1: find all equality-key candidate pairs. The hash table is built
/// over the **right** side; engines put the smaller input on the right.
/// Convenience wrapper over [`build_hash_table`] + [`probe_hash_table`].
pub fn hash_join_pairs(
    ctx: &GpuContext,
    left_keys: &[&Array],
    right_keys: &[&Array],
    left_rows: usize,
    right_rows: usize,
) -> Result<JoinPairs> {
    if left_keys.len() != right_keys.len() || left_keys.is_empty() {
        return Err(KernelError::UnsupportedTypes(
            "join requires equal, non-zero key column counts (use cross_join_pairs)".into(),
        ));
    }
    let table = build_hash_table(ctx, right_keys, right_rows)?;
    probe_hash_table(ctx, &table, left_keys, left_rows, 0)
}

/// Phase 1 alternative: all-pairs cross join (used when there are no
/// equality keys, e.g. joining against a one-row scalar subquery result).
pub fn cross_join_pairs(ctx: &GpuContext, left_rows: usize, right_rows: usize) -> JoinPairs {
    let n = left_rows * right_rows;
    let mut pairs = JoinPairs {
        left: Vec::with_capacity(n),
        right: Vec::with_capacity(n),
        left_rows,
    };
    for l in 0..left_rows {
        for r in 0..right_rows {
            pairs.left.push(l as i32);
            pairs.right.push(r as i32);
        }
    }
    ctx.charge_named(
        "join.cross",
        &WorkProfile::scan((n * 8) as u64).with_rows(n as u64),
    );
    pairs
}

/// Phase 2: apply the join type and an optional residual-predicate mask
/// (one bit per candidate pair) to produce final gather indices.
pub fn resolve_join(
    ctx: &GpuContext,
    join_type: JoinType,
    pairs: &JoinPairs,
    residual: Option<&Bitmap>,
) -> Result<JoinIndices> {
    if let Some(m) = residual {
        assert_eq!(m.len(), pairs.len(), "residual mask length mismatch");
    }
    let pass = |i: usize| residual.map(|m| m.get(i)).unwrap_or(true);
    let mut out = JoinIndices {
        left: Vec::new(),
        right: Vec::new(),
    };

    match join_type {
        JoinType::Inner => {
            for i in 0..pairs.len() {
                if pass(i) {
                    out.left.push(pairs.left[i]);
                    out.right.push(Some(pairs.right[i]));
                }
            }
        }
        JoinType::Semi | JoinType::Anti => {
            let mut matched = vec![false; pairs.left_rows];
            for i in 0..pairs.len() {
                if pass(i) {
                    matched[pairs.left[i] as usize] = true;
                }
            }
            let want = join_type == JoinType::Semi;
            for (l, &m) in matched.iter().enumerate() {
                if m == want {
                    out.left.push(l as i32);
                    out.right.push(None);
                }
            }
        }
        JoinType::Left | JoinType::Single => {
            let mut match_count = vec![0u32; pairs.left_rows];
            for i in 0..pairs.len() {
                if pass(i) {
                    match_count[pairs.left[i] as usize] += 1;
                }
            }
            if join_type == JoinType::Single {
                if let Some(l) = match_count.iter().position(|&c| c > 1) {
                    return Err(KernelError::NonScalarSubquery {
                        left_row: l,
                        matches: match_count[l] as usize,
                    });
                }
            }
            // Emit matches in pair order, then unmatched lefts null-padded.
            for i in 0..pairs.len() {
                if pass(i) {
                    out.left.push(pairs.left[i]);
                    out.right.push(Some(pairs.right[i]));
                }
            }
            for (l, &c) in match_count.iter().enumerate() {
                if c == 0 {
                    out.left.push(l as i32);
                    out.right.push(None);
                }
            }
        }
    }
    ctx.charge_named(
        "join.resolve",
        &WorkProfile::scan((pairs.len() * 8 + out.len() * 8) as u64).with_rows(out.len() as u64),
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_ctx;
    use sirius_columnar::Scalar;

    fn pairs_for(l: &[i64], r: &[i64]) -> JoinPairs {
        let ctx = test_ctx();
        let la = Array::from_i64(l.iter().copied());
        let ra = Array::from_i64(r.iter().copied());
        hash_join_pairs(&ctx, &[&la], &[&ra], l.len(), r.len()).unwrap()
    }

    #[test]
    fn inner_join_basics() {
        let ctx = test_ctx();
        let p = pairs_for(&[1, 2, 3, 2], &[2, 4, 2]);
        let j = resolve_join(&ctx, JoinType::Inner, &p, None).unwrap();
        // left rows 1 and 3 (value 2) each match right rows 0 and 2.
        assert_eq!(j.len(), 4);
        for (l, r) in j.left.iter().zip(j.right.iter()) {
            assert!([1, 3].contains(l));
            assert!([Some(0), Some(2)].contains(r));
        }
    }

    #[test]
    fn null_keys_never_match() {
        let ctx = test_ctx();
        let l = Array::from_scalars(
            &[Scalar::Int64(1), Scalar::Null],
            sirius_columnar::DataType::Int64,
        );
        let r = Array::from_scalars(
            &[Scalar::Null, Scalar::Int64(1)],
            sirius_columnar::DataType::Int64,
        );
        let p = hash_join_pairs(&ctx, &[&l], &[&r], 2, 2).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!((p.left[0], p.right[0]), (0, 1));
    }

    #[test]
    fn multi_column_keys() {
        let ctx = test_ctx();
        let l1 = Array::from_i64([1, 1]);
        let l2 = Array::from_strs(["a", "b"]);
        let r1 = Array::from_i64([1]);
        let r2 = Array::from_strs(["b"]);
        let p = hash_join_pairs(&ctx, &[&l1, &l2], &[&r1, &r2], 2, 1).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.left[0], 1);
    }

    #[test]
    fn semi_and_anti_partition_left() {
        let ctx = test_ctx();
        let p = pairs_for(&[1, 2, 3], &[2, 2]);
        let semi = resolve_join(&ctx, JoinType::Semi, &p, None).unwrap();
        assert_eq!(semi.left, vec![1]); // deduplicated despite two matches
        let anti = resolve_join(&ctx, JoinType::Anti, &p, None).unwrap();
        assert_eq!(anti.left, vec![0, 2]);
        assert_eq!(semi.len() + anti.len(), 3);
    }

    #[test]
    fn left_join_pads_unmatched() {
        let ctx = test_ctx();
        let p = pairs_for(&[1, 9], &[1]);
        let j = resolve_join(&ctx, JoinType::Left, &p, None).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.right[0], Some(0));
        assert_eq!((j.left[1], j.right[1]), (1, None));
    }

    #[test]
    fn single_join_rejects_duplicates() {
        let ctx = test_ctx();
        let ok = pairs_for(&[1, 2], &[1]);
        assert!(resolve_join(&ctx, JoinType::Single, &ok, None).is_ok());
        let dup = pairs_for(&[1], &[1, 1]);
        let err = resolve_join(&ctx, JoinType::Single, &dup, None).unwrap_err();
        assert!(matches!(
            err,
            KernelError::NonScalarSubquery { matches: 2, .. }
        ));
    }

    #[test]
    fn residual_mask_filters_pairs() {
        let ctx = test_ctx();
        let p = pairs_for(&[1, 2], &[1, 2]);
        assert_eq!(p.len(), 2);
        let mask = Bitmap::from_iter((0..p.len()).map(|i| p.left[i] == 1));
        let inner = resolve_join(&ctx, JoinType::Inner, &p, Some(&mask)).unwrap();
        assert_eq!(inner.len(), 1);
        assert_eq!(inner.left[0], 1);
        // Anti join with residual: row whose only match fails the residual
        // counts as unmatched.
        let anti = resolve_join(&ctx, JoinType::Anti, &p, Some(&mask)).unwrap();
        assert_eq!(anti.left, vec![0]);
    }

    #[test]
    fn cross_join_pairs_enumerates_all() {
        let ctx = test_ctx();
        let p = cross_join_pairs(&ctx, 2, 3);
        assert_eq!(p.len(), 6);
        let j = resolve_join(&ctx, JoinType::Inner, &p, None).unwrap();
        assert_eq!(j.len(), 6);
    }

    #[test]
    fn empty_key_error() {
        let ctx = test_ctx();
        let err = hash_join_pairs(&ctx, &[], &[], 1, 1);
        assert!(err.is_err());
    }

    #[test]
    fn morsel_probes_concatenate_to_whole_column_pairs() {
        let ctx = test_ctx();
        let l: Vec<i64> = (0..97).map(|i| i % 7).collect();
        let r: Vec<i64> = vec![1, 3, 3, 5];
        let la = Array::from_i64(l.iter().copied());
        let ra = Array::from_i64(r.iter().copied());
        let whole = hash_join_pairs(&ctx, &[&la], &[&ra], l.len(), r.len()).unwrap();

        // Same probe chopped into uneven morsels with global offsets.
        let table = build_hash_table(&ctx, &[&ra], r.len()).unwrap();
        let mut got = JoinPairs::from_parts(Vec::new(), Vec::new(), l.len());
        for (offset, chunk) in [(0usize, 0..10), (10, 10..33), (33, 33..97)] {
            let morsel = Array::from_i64(l[chunk].iter().copied());
            let p = probe_hash_table(&ctx, &table, &[&morsel], l.len(), offset).unwrap();
            got.left.extend_from_slice(&p.left);
            got.right.extend_from_slice(&p.right);
        }
        assert_eq!(got.left, whole.left);
        assert_eq!(got.right, whole.right);
        assert_eq!(got.left_rows(), whole.left_rows());
    }

    #[test]
    fn probe_rejects_key_count_mismatch() {
        let ctx = test_ctx();
        let r1 = Array::from_i64([1]);
        let r2 = Array::from_i64([2]);
        let table = build_hash_table(&ctx, &[&r1, &r2], 1).unwrap();
        let l = Array::from_i64([1]);
        assert!(probe_hash_table(&ctx, &table, &[&l], 1, 0).is_err());
    }
}
