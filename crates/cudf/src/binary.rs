//! Element-wise binary kernels with scalar broadcasting.
//!
//! Mirrors libcudf's `binary_operation(column_view|scalar, ...)`: either
//! operand may be a column or a broadcast scalar. Null handling follows SQL:
//! arithmetic and comparisons propagate null; AND/OR use Kleene logic.

use crate::{GpuContext, KernelError, Result};
use sirius_columnar::{Array, DataType, Scalar};
use sirius_hw::WorkProfile;

/// Binary operator kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (always produces `Float64`).
    Div,
    /// Integer modulo.
    Mod,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical AND (Kleene).
    And,
    /// Logical OR (Kleene).
    Or,
}

impl BinaryOp {
    /// True for comparison operators (result type `Bool`).
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        )
    }

    /// True for AND/OR.
    pub fn is_logical(&self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }

    /// Result type given operand types; `None` if unsupported.
    pub fn result_type(&self, l: DataType, r: DataType) -> Option<DataType> {
        use DataType::*;
        if self.is_comparison() {
            let comparable =
                l == r || (l.is_numeric() && r.is_numeric()) || matches!((l, r), (Date32, Date32));
            return comparable.then_some(Bool);
        }
        if self.is_logical() {
            return (l == Bool && r == Bool).then_some(Bool);
        }
        match self {
            BinaryOp::Div => (l.is_numeric() && r.is_numeric()).then_some(Float64),
            BinaryOp::Mod => match (l, r) {
                (Int32 | Int64, Int32 | Int64) => Some(Int64),
                _ => None,
            },
            _ => match (l, r) {
                (Float64, _) | (_, Float64) if l.is_numeric() && r.is_numeric() => Some(Float64),
                (Int32 | Int64, Int32 | Int64) => Some(Int64),
                // date +/- integer days
                (Date32, Int32 | Int64) if matches!(self, BinaryOp::Add | BinaryOp::Sub) => {
                    Some(Date32)
                }
                (Date32, Date32) if matches!(self, BinaryOp::Sub) => Some(Int64),
                _ => None,
            },
        }
    }
}

/// A kernel operand: a column or a broadcast scalar.
#[derive(Debug, Clone)]
pub enum Datum<'a> {
    /// Column operand.
    Column(&'a Array),
    /// Broadcast scalar operand.
    Scalar(Scalar),
}

impl<'a> Datum<'a> {
    /// Element `i` (the scalar for broadcast operands).
    pub fn value(&self, i: usize) -> Scalar {
        match self {
            Datum::Column(a) => a.scalar(i),
            Datum::Scalar(s) => s.clone(),
        }
    }

    /// The operand's logical type, `None` for a NULL literal.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Datum::Column(a) => Some(a.data_type()),
            Datum::Scalar(s) => s.data_type(),
        }
    }

    /// Bytes this operand contributes to the kernel's memory traffic.
    pub fn byte_size(&self) -> u64 {
        match self {
            Datum::Column(a) => a.byte_size() as u64,
            Datum::Scalar(_) => 0,
        }
    }
}

fn arith(op: BinaryOp, out: DataType, l: &Scalar, r: &Scalar) -> Scalar {
    if l.is_null() || r.is_null() {
        return Scalar::Null;
    }
    match op {
        BinaryOp::Div => {
            let (a, b) = (l.as_f64().expect("numeric"), r.as_f64().expect("numeric"));
            if b == 0.0 {
                Scalar::Null
            } else {
                Scalar::Float64(a / b)
            }
        }
        BinaryOp::Mod => {
            let (a, b) = (l.as_i64().expect("int"), r.as_i64().expect("int"));
            if b == 0 {
                Scalar::Null
            } else {
                Scalar::Int64(a % b)
            }
        }
        _ => match out {
            DataType::Float64 => {
                let (a, b) = (l.as_f64().expect("numeric"), r.as_f64().expect("numeric"));
                Scalar::Float64(match op {
                    BinaryOp::Add => a + b,
                    BinaryOp::Sub => a - b,
                    BinaryOp::Mul => a * b,
                    _ => unreachable!("arith op"),
                })
            }
            DataType::Int64 => {
                let (a, b) = (l.as_i64().expect("int"), r.as_i64().expect("int"));
                Scalar::Int64(match op {
                    BinaryOp::Add => a.wrapping_add(b),
                    BinaryOp::Sub => a.wrapping_sub(b),
                    BinaryOp::Mul => a.wrapping_mul(b),
                    _ => unreachable!("arith op"),
                })
            }
            DataType::Date32 => {
                let (a, b) = (l.as_i64().expect("date"), r.as_i64().expect("int"));
                let v = match op {
                    BinaryOp::Add => a + b,
                    BinaryOp::Sub => a - b,
                    _ => unreachable!("date arith"),
                };
                Scalar::Date32(v as i32)
            }
            _ => unreachable!("arith result type"),
        },
    }
}

fn compare(op: BinaryOp, l: &Scalar, r: &Scalar) -> Scalar {
    if l.is_null() || r.is_null() {
        return Scalar::Null;
    }
    let ord = l.cmp(r);
    let b = match op {
        BinaryOp::Eq => ord.is_eq(),
        BinaryOp::Ne => ord.is_ne(),
        BinaryOp::Lt => ord.is_lt(),
        BinaryOp::Le => ord.is_le(),
        BinaryOp::Gt => ord.is_gt(),
        BinaryOp::Ge => ord.is_ge(),
        _ => unreachable!("comparison op"),
    };
    Scalar::Bool(b)
}

fn kleene(op: BinaryOp, l: &Scalar, r: &Scalar) -> Scalar {
    let (a, b) = (l.as_bool(), r.as_bool());
    match op {
        BinaryOp::And => match (a, b) {
            (Some(false), _) | (_, Some(false)) => Scalar::Bool(false),
            (Some(true), Some(true)) => Scalar::Bool(true),
            _ => Scalar::Null,
        },
        BinaryOp::Or => match (a, b) {
            (Some(true), _) | (_, Some(true)) => Scalar::Bool(true),
            (Some(false), Some(false)) => Scalar::Bool(false),
            _ => Scalar::Null,
        },
        _ => unreachable!("logical op"),
    }
}

/// Element-wise binary kernel over `num_rows` rows.
pub fn binary_op(
    ctx: &GpuContext,
    op: BinaryOp,
    left: &Datum<'_>,
    right: &Datum<'_>,
    num_rows: usize,
) -> Result<Array> {
    // A NULL literal operand adopts the other side's type for typing.
    let lt = left
        .data_type()
        .or(right.data_type())
        .unwrap_or(DataType::Bool);
    let rt = right.data_type().unwrap_or(lt);
    let out_type = op
        .result_type(lt, rt)
        .ok_or_else(|| KernelError::UnsupportedTypes(format!("{op:?} on ({lt}, {rt})")))?;

    let mut out = Vec::with_capacity(num_rows);
    for i in 0..num_rows {
        let (l, r) = (left.value(i), right.value(i));
        out.push(if op.is_comparison() {
            compare(op, &l, &r)
        } else if op.is_logical() {
            kleene(op, &l, &r)
        } else {
            arith(op, out_type, &l, &r)
        });
    }
    let result = Array::from_scalars(&out, out_type);

    ctx.charge_named(
        "binary.op",
        &WorkProfile::scan(left.byte_size() + right.byte_size())
            .with_streamed(result.byte_size() as u64)
            .with_flops(num_rows as u64)
            .with_rows(num_rows as u64),
    );
    Ok(result)
}

/// SQL `LIKE` pattern match (`%` any run, `_` any single char). Returns a
/// `Bool` column; nulls propagate.
pub fn like(
    ctx: &GpuContext,
    input: &Datum<'_>,
    pattern: &str,
    negated: bool,
    num_rows: usize,
) -> Result<Array> {
    let pat: Vec<char> = pattern.chars().collect();
    // Dictionary fast path: match the pattern once per unique dictionary
    // entry, then map each row through its 4-byte code. The charge reads
    // the dictionary payload once plus the codes, instead of every row's
    // decoded bytes.
    if let Datum::Column(Array::Dict(d)) = input {
        let dict_hits: Vec<bool> = (0..d.values().len())
            .map(|e| {
                let s = d
                    .values()
                    .value(e)
                    .expect("dictionary entries are non-null");
                like_match(&s.chars().collect::<Vec<_>>(), &pat)
            })
            .collect();
        let out: Vec<Scalar> = (0..num_rows)
            .map(|i| match d.code(i) {
                Some(c) => Scalar::Bool(dict_hits[c as usize] != negated),
                None => Scalar::Null,
            })
            .collect();
        ctx.charge_named(
            "binary.like",
            &WorkProfile::scan(d.dict_byte_size() as u64 + d.byte_size() as u64)
                .with_flops((d.values().len() * pattern.len().max(1) + num_rows) as u64)
                .with_rows(num_rows as u64),
        );
        return Ok(Array::from_scalars(&out, DataType::Bool));
    }
    let mut out = Vec::with_capacity(num_rows);
    for i in 0..num_rows {
        let v = input.value(i);
        out.push(match v.as_str() {
            Some(s) => {
                let m = like_match(&s.chars().collect::<Vec<_>>(), &pat);
                Scalar::Bool(m != negated)
            }
            None => Scalar::Null,
        });
    }
    ctx.charge_named(
        "binary.like",
        &WorkProfile::scan(input.byte_size())
            .with_flops((num_rows * pattern.len().max(1)) as u64)
            .with_rows(num_rows as u64),
    );
    Ok(Array::from_scalars(&out, DataType::Bool))
}

/// Greedy-with-backtracking LIKE matcher (iterative, linear in practice).
fn like_match(s: &[char], p: &[char]) -> bool {
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star_p, mut star_s): (Option<usize>, usize) = (None, 0);
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star_p = Some(pi);
            star_s = si;
            pi += 1;
        } else if let Some(sp) = star_p {
            pi = sp + 1;
            star_s += 1;
            si = star_s;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

/// `expr IN (literal, ...)` kernel.
pub fn in_list(
    ctx: &GpuContext,
    input: &Datum<'_>,
    list: &[Scalar],
    negated: bool,
    num_rows: usize,
) -> Result<Array> {
    let mut out = Vec::with_capacity(num_rows);
    for i in 0..num_rows {
        let v = input.value(i);
        out.push(if v.is_null() {
            Scalar::Null
        } else {
            let found = list.contains(&v);
            Scalar::Bool(found != negated)
        });
    }
    ctx.charge_named(
        "binary.in_list",
        &WorkProfile::scan(input.byte_size())
            .with_flops((num_rows * list.len().max(1)) as u64)
            .with_rows(num_rows as u64),
    );
    Ok(Array::from_scalars(&out, DataType::Bool))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_ctx;

    fn col(a: &Array) -> Datum<'_> {
        Datum::Column(a)
    }

    #[test]
    fn integer_arithmetic_promotes_to_i64() {
        let ctx = test_ctx();
        let a = Array::from_i32([1, 2, 3]);
        let b = Array::from_i64([10, 20, 30]);
        let r = binary_op(&ctx, BinaryOp::Add, &col(&a), &col(&b), 3).unwrap();
        assert_eq!(r.data_type(), DataType::Int64);
        assert_eq!(r.i64_value(2), Some(33));
    }

    #[test]
    fn float_arithmetic() {
        let ctx = test_ctx();
        let a = Array::from_f64([1.5, 2.5]);
        let r = binary_op(
            &ctx,
            BinaryOp::Mul,
            &col(&a),
            &Datum::Scalar(Scalar::Float64(2.0)),
            2,
        )
        .unwrap();
        assert_eq!(r.f64_value(1), Some(5.0));
    }

    #[test]
    fn division_always_float_and_null_on_zero() {
        let ctx = test_ctx();
        let a = Array::from_i64([6, 7]);
        let b = Array::from_i64([3, 0]);
        let r = binary_op(&ctx, BinaryOp::Div, &col(&a), &col(&b), 2).unwrap();
        assert_eq!(r.data_type(), DataType::Float64);
        assert_eq!(r.f64_value(0), Some(2.0));
        assert_eq!(r.scalar(1), Scalar::Null);
    }

    #[test]
    fn comparisons_across_numeric_widths() {
        let ctx = test_ctx();
        let a = Array::from_i32([1, 5]);
        let r = binary_op(
            &ctx,
            BinaryOp::Lt,
            &col(&a),
            &Datum::Scalar(Scalar::Int64(3)),
            2,
        )
        .unwrap();
        assert_eq!(r.scalar(0), Scalar::Bool(true));
        assert_eq!(r.scalar(1), Scalar::Bool(false));
    }

    #[test]
    fn date_compare_and_arith() {
        let ctx = test_ctx();
        let d = Array::from_date32([100, 200]);
        let r = binary_op(
            &ctx,
            BinaryOp::Ge,
            &col(&d),
            &Datum::Scalar(Scalar::Date32(150)),
            2,
        )
        .unwrap();
        assert_eq!(r.scalar(0), Scalar::Bool(false));
        assert_eq!(r.scalar(1), Scalar::Bool(true));
        let plus = binary_op(
            &ctx,
            BinaryOp::Add,
            &col(&d),
            &Datum::Scalar(Scalar::Int64(7)),
            2,
        )
        .unwrap();
        assert_eq!(plus.data_type(), DataType::Date32);
        assert_eq!(plus.i64_value(0), Some(107));
    }

    #[test]
    fn kleene_logic() {
        let ctx = test_ctx();
        let t = Array::from_bool([true, false]);
        let n = Array::from_scalar(&Scalar::Null, DataType::Bool, 2);
        let and = binary_op(&ctx, BinaryOp::And, &col(&t), &col(&n), 2).unwrap();
        assert_eq!(and.scalar(0), Scalar::Null); // true AND null
        assert_eq!(and.scalar(1), Scalar::Bool(false)); // false AND null
        let or = binary_op(&ctx, BinaryOp::Or, &col(&t), &col(&n), 2).unwrap();
        assert_eq!(or.scalar(0), Scalar::Bool(true)); // true OR null
        assert_eq!(or.scalar(1), Scalar::Null); // false OR null
    }

    #[test]
    fn null_propagation_in_comparison() {
        let ctx = test_ctx();
        let a = Array::from_i64([1]);
        let r = binary_op(
            &ctx,
            BinaryOp::Eq,
            &col(&a),
            &Datum::Scalar(Scalar::Null),
            1,
        )
        .unwrap();
        assert_eq!(r.scalar(0), Scalar::Null);
    }

    #[test]
    fn unsupported_types_error() {
        let ctx = test_ctx();
        let a = Array::from_strs(["x"]);
        let err = binary_op(
            &ctx,
            BinaryOp::Add,
            &col(&a),
            &Datum::Scalar(Scalar::Int64(1)),
            1,
        );
        assert!(matches!(err, Err(KernelError::UnsupportedTypes(_))));
    }

    #[test]
    fn like_patterns() {
        let ctx = test_ctx();
        let s = Array::from_strs(["PROMO BURNISHED", "STANDARD", "forest green tin"]);
        let r = like(&ctx, &col(&s), "PROMO%", false, 3).unwrap();
        assert_eq!(r.scalar(0), Scalar::Bool(true));
        assert_eq!(r.scalar(1), Scalar::Bool(false));
        let mid = like(&ctx, &col(&s), "%green%", false, 3).unwrap();
        assert_eq!(mid.scalar(2), Scalar::Bool(true));
        let under = like(&ctx, &col(&s), "STAND_RD", false, 3).unwrap();
        assert_eq!(under.scalar(1), Scalar::Bool(true));
        let neg = like(&ctx, &col(&s), "%BURNISHED", true, 3).unwrap();
        assert_eq!(neg.scalar(0), Scalar::Bool(false));
    }

    #[test]
    fn like_multiple_wildcards() {
        let ctx = test_ctx();
        let s = Array::from_strs(["wake special packages requests", "plain"]);
        let r = like(&ctx, &col(&s), "%special%requests%", false, 2).unwrap();
        assert_eq!(r.scalar(0), Scalar::Bool(true));
        assert_eq!(r.scalar(1), Scalar::Bool(false));
    }

    #[test]
    fn in_list_kernel() {
        let ctx = test_ctx();
        let s = Array::from_strs(["a", "b", "c"]);
        let r = in_list(
            &ctx,
            &col(&s),
            &[Scalar::Utf8("a".into()), Scalar::Utf8("c".into())],
            false,
            3,
        )
        .unwrap();
        assert_eq!(r.scalar(0), Scalar::Bool(true));
        assert_eq!(r.scalar(1), Scalar::Bool(false));
        assert_eq!(r.scalar(2), Scalar::Bool(true));
    }

    #[test]
    fn charges_device_time() {
        let ctx = test_ctx();
        let before = ctx.device().elapsed();
        let a = Array::from_i64(0..1000);
        binary_op(&ctx, BinaryOp::Add, &col(&a), &col(&a), 1000).unwrap();
        assert!(ctx.device().elapsed() > before);
    }
}
