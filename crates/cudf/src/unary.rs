//! Element-wise unary kernels, casts, string functions, and CASE.

use crate::binary::Datum;
use crate::{GpuContext, KernelError, Result};
use sirius_columnar::scalar::date32_year;
use sirius_columnar::{Array, DataType, Scalar};
use sirius_hw::WorkProfile;

/// Unary operator kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Logical NOT (null in, null out).
    Not,
    /// Arithmetic negation.
    Neg,
    /// `IS NULL` predicate (never null).
    IsNull,
    /// `IS NOT NULL` predicate (never null).
    IsNotNull,
    /// `EXTRACT(YEAR FROM date)` → Int64.
    ExtractYear,
}

/// Element-wise unary kernel.
pub fn unary_op(
    ctx: &GpuContext,
    op: UnaryOp,
    input: &Datum<'_>,
    num_rows: usize,
) -> Result<Array> {
    let out_type = match op {
        UnaryOp::Not | UnaryOp::IsNull | UnaryOp::IsNotNull => DataType::Bool,
        UnaryOp::Neg => match input.data_type() {
            Some(t @ (DataType::Int32 | DataType::Int64)) => {
                if t == DataType::Int32 {
                    DataType::Int64
                } else {
                    t
                }
            }
            Some(DataType::Float64) => DataType::Float64,
            other => return Err(KernelError::UnsupportedTypes(format!("Neg on {other:?}"))),
        },
        UnaryOp::ExtractYear => DataType::Int64,
    };
    let mut out = Vec::with_capacity(num_rows);
    for i in 0..num_rows {
        let v = input.value(i);
        out.push(match op {
            UnaryOp::IsNull => Scalar::Bool(v.is_null()),
            UnaryOp::IsNotNull => Scalar::Bool(!v.is_null()),
            _ if v.is_null() => Scalar::Null,
            UnaryOp::Not => Scalar::Bool(
                !v.as_bool()
                    .ok_or_else(|| KernelError::UnsupportedTypes("NOT on non-bool".into()))?,
            ),
            UnaryOp::Neg => match out_type {
                DataType::Float64 => Scalar::Float64(-v.as_f64().expect("numeric")),
                _ => Scalar::Int64(-v.as_i64().expect("int")),
            },
            UnaryOp::ExtractYear => match v {
                Scalar::Date32(d) => Scalar::Int64(date32_year(d) as i64),
                other => {
                    return Err(KernelError::UnsupportedTypes(format!(
                        "EXTRACT(YEAR) on {other:?}"
                    )))
                }
            },
        });
    }
    ctx.charge_named(
        "unary.op",
        &WorkProfile::scan(input.byte_size())
            .with_flops(num_rows as u64)
            .with_rows(num_rows as u64),
    );
    Ok(Array::from_scalars(&out, out_type))
}

/// Cast kernel. Unsupported casts on any non-null element fail.
pub fn cast(ctx: &GpuContext, input: &Datum<'_>, to: DataType, num_rows: usize) -> Result<Array> {
    let mut out = Vec::with_capacity(num_rows);
    for i in 0..num_rows {
        let v = input.value(i);
        out.push(
            v.cast(to)
                .ok_or_else(|| KernelError::UnsupportedTypes(format!("cast {v:?} to {to}")))?,
        );
    }
    ctx.charge_named(
        "unary.cast",
        &WorkProfile::scan(input.byte_size())
            .with_flops(num_rows as u64)
            .with_rows(num_rows as u64),
    );
    Ok(Array::from_scalars(&out, to))
}

/// SQL `SUBSTRING(s FROM start FOR len)` with 1-based `start`, by character.
pub fn substring(
    ctx: &GpuContext,
    input: &Datum<'_>,
    start: usize,
    len: usize,
    num_rows: usize,
) -> Result<Array> {
    let mut out = Vec::with_capacity(num_rows);
    for i in 0..num_rows {
        let v = input.value(i);
        out.push(match v.as_str() {
            Some(s) => Scalar::Utf8(s.chars().skip(start.saturating_sub(1)).take(len).collect()),
            None => Scalar::Null,
        });
    }
    ctx.charge_named(
        "unary.substring",
        &WorkProfile::scan(input.byte_size())
            .with_flops(num_rows as u64)
            .with_rows(num_rows as u64),
    );
    Ok(Array::from_scalars(&out, DataType::Utf8))
}

/// CASE kernel: `branches` are `(condition, value)` pairs evaluated in
/// order; `otherwise` supplies the default (NULL literal if absent).
pub fn case_when(
    ctx: &GpuContext,
    branches: &[(Datum<'_>, Datum<'_>)],
    otherwise: &Datum<'_>,
    out_type: DataType,
    num_rows: usize,
) -> Result<Array> {
    let mut out = Vec::with_capacity(num_rows);
    for i in 0..num_rows {
        let mut chosen = None;
        for (cond, val) in branches {
            if cond.value(i).as_bool() == Some(true) {
                chosen = Some(val.value(i));
                break;
            }
        }
        out.push(chosen.unwrap_or_else(|| otherwise.value(i)));
    }
    let bytes: u64 = branches
        .iter()
        .map(|(c, v)| c.byte_size() + v.byte_size())
        .sum::<u64>()
        + otherwise.byte_size();
    ctx.charge_named(
        "unary.case_when",
        &WorkProfile::scan(bytes)
            .with_flops((num_rows * branches.len().max(1)) as u64)
            .with_rows(num_rows as u64),
    );
    Ok(Array::from_scalars(&out, out_type))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_ctx;
    use sirius_columnar::scalar::parse_date32;

    #[test]
    fn not_and_null_predicates() {
        let ctx = test_ctx();
        let b = Array::from_scalars(
            &[Scalar::Bool(true), Scalar::Null, Scalar::Bool(false)],
            DataType::Bool,
        );
        let not = unary_op(&ctx, UnaryOp::Not, &Datum::Column(&b), 3).unwrap();
        assert_eq!(not.scalar(0), Scalar::Bool(false));
        assert_eq!(not.scalar(1), Scalar::Null);
        let isn = unary_op(&ctx, UnaryOp::IsNull, &Datum::Column(&b), 3).unwrap();
        assert_eq!(isn.scalar(1), Scalar::Bool(true));
        assert_eq!(isn.scalar(0), Scalar::Bool(false));
        let notn = unary_op(&ctx, UnaryOp::IsNotNull, &Datum::Column(&b), 3).unwrap();
        assert_eq!(notn.scalar(1), Scalar::Bool(false));
    }

    #[test]
    fn neg_promotes_i32() {
        let ctx = test_ctx();
        let a = Array::from_i32([5]);
        let r = unary_op(&ctx, UnaryOp::Neg, &Datum::Column(&a), 1).unwrap();
        assert_eq!(r.data_type(), DataType::Int64);
        assert_eq!(r.i64_value(0), Some(-5));
    }

    #[test]
    fn extract_year() {
        let ctx = test_ctx();
        let d = Array::from_date32([
            parse_date32("1994-03-15").unwrap(),
            parse_date32("1998-12-31").unwrap(),
        ]);
        let r = unary_op(&ctx, UnaryOp::ExtractYear, &Datum::Column(&d), 2).unwrap();
        assert_eq!(r.i64_value(0), Some(1994));
        assert_eq!(r.i64_value(1), Some(1998));
    }

    #[test]
    fn cast_kernel() {
        let ctx = test_ctx();
        let a = Array::from_i32([1, 2]);
        let r = cast(&ctx, &Datum::Column(&a), DataType::Float64, 2).unwrap();
        assert_eq!(r.f64_value(1), Some(2.0));
        let bad = cast(
            &ctx,
            &Datum::Column(&Array::from_strs(["x"])),
            DataType::Int64,
            1,
        );
        assert!(bad.is_err());
    }

    #[test]
    fn substring_is_one_based() {
        let ctx = test_ctx();
        // Q22: substring(c_phone from 1 for 2) — country code prefix.
        let s = Array::from_strs(["13-702-6818-9125", "31-102"]);
        let r = substring(&ctx, &Datum::Column(&s), 1, 2, 2).unwrap();
        assert_eq!(r.utf8_value(0), Some("13"));
        assert_eq!(r.utf8_value(1), Some("31"));
    }

    #[test]
    fn case_when_first_match_wins() {
        let ctx = test_ctx();
        let c1 = Array::from_bool([true, false, false]);
        let c2 = Array::from_bool([true, true, false]);
        let v1 = Datum::Scalar(Scalar::Int64(1));
        let v2 = Datum::Scalar(Scalar::Int64(2));
        let r = case_when(
            &ctx,
            &[(Datum::Column(&c1), v1), (Datum::Column(&c2), v2)],
            &Datum::Scalar(Scalar::Int64(0)),
            DataType::Int64,
            3,
        )
        .unwrap();
        assert_eq!(r.i64_value(0), Some(1));
        assert_eq!(r.i64_value(1), Some(2));
        assert_eq!(r.i64_value(2), Some(0));
    }

    #[test]
    fn case_default_null() {
        let ctx = test_ctx();
        let c = Array::from_bool([false]);
        let r = case_when(
            &ctx,
            &[(Datum::Column(&c), Datum::Scalar(Scalar::Int64(1)))],
            &Datum::Scalar(Scalar::Null),
            DataType::Int64,
            1,
        )
        .unwrap();
        assert_eq!(r.scalar(0), Scalar::Null);
    }
}
