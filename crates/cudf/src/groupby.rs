//! Group-by kernels: hash-based for fixed-width keys, sort-based for string
//! keys (libcudf's behaviour, which the paper identifies as the source of
//! the Q10/Q18 group-by overhead in Figure 5).

use crate::hash::{key_bytes, row_keys, FxHashMap, FxHashSet, Key};
use crate::{GpuContext, KernelError, Result};
use sirius_columnar::{Array, DataType, PrimitiveArray, Scalar};
use sirius_hw::WorkProfile;

/// Aggregate function kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// `COUNT(*)` — counts rows.
    CountStar,
    /// `COUNT(expr)` — counts non-null values.
    Count,
    /// `COUNT(DISTINCT expr)`.
    CountDistinct,
    /// `SUM(expr)` — Int64 for integer input, Float64 for float.
    Sum,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `AVG(expr)` — always Float64.
    Avg,
}

impl AggKind {
    /// Output type given the input type (`None` input for `CountStar`).
    pub fn result_type(&self, input: Option<DataType>) -> Result<DataType> {
        Ok(match self {
            AggKind::CountStar | AggKind::Count | AggKind::CountDistinct => DataType::Int64,
            AggKind::Avg => DataType::Float64,
            AggKind::Sum => match input {
                Some(DataType::Float64) => DataType::Float64,
                Some(DataType::Int32 | DataType::Int64) => DataType::Int64,
                other => return Err(KernelError::UnsupportedTypes(format!("SUM on {other:?}"))),
            },
            AggKind::Min | AggKind::Max => input
                .ok_or_else(|| KernelError::UnsupportedTypes("MIN/MAX need an input".into()))?,
        })
    }
}

/// One aggregation over an optional input column (`None` for `COUNT(*)`).
pub struct AggRequest<'a> {
    /// The aggregate function.
    pub kind: AggKind,
    /// Input column (`None` only for `CountStar`).
    pub input: Option<&'a Array>,
}

/// Accumulating state for one aggregate within one group.
#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    Distinct(FxHashSet<Scalar>),
    SumI(i64, bool),
    SumF(f64, bool),
    MinMax(Option<Scalar>),
    Avg(f64, i64),
}

impl AggState {
    fn new(kind: AggKind, input_type: Option<DataType>) -> AggState {
        match kind {
            AggKind::CountStar | AggKind::Count => AggState::Count(0),
            AggKind::CountDistinct => AggState::Distinct(FxHashSet::default()),
            AggKind::Sum => match input_type {
                Some(DataType::Float64) => AggState::SumF(0.0, false),
                _ => AggState::SumI(0, false),
            },
            AggKind::Min | AggKind::Max => AggState::MinMax(None),
            AggKind::Avg => AggState::Avg(0.0, 0),
        }
    }

    fn update(&mut self, kind: AggKind, value: Option<Scalar>) {
        match self {
            AggState::Count(c) => {
                let counts = match kind {
                    AggKind::CountStar => true,
                    _ => value.map(|v| !v.is_null()).unwrap_or(false),
                };
                if counts {
                    *c += 1;
                }
            }
            AggState::Distinct(set) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        set.insert(v);
                    }
                }
            }
            AggState::SumI(s, seen) => {
                if let Some(v) = value.and_then(|v| v.as_i64()) {
                    *s += v;
                    *seen = true;
                }
            }
            AggState::SumF(s, seen) => {
                if let Some(v) = value.and_then(|v| v.as_f64()) {
                    *s += v;
                    *seen = true;
                }
            }
            AggState::MinMax(cur) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        let replace = match cur {
                            None => true,
                            Some(c) => {
                                if kind == AggKind::Min {
                                    v < *c
                                } else {
                                    v > *c
                                }
                            }
                        };
                        if replace {
                            *cur = Some(v);
                        }
                    }
                }
            }
            AggState::Avg(s, n) => {
                if let Some(v) = value.and_then(|v| v.as_f64()) {
                    *s += v;
                    *n += 1;
                }
            }
        }
    }

    fn finish(self) -> Scalar {
        match self {
            AggState::Count(c) => Scalar::Int64(c),
            AggState::Distinct(set) => Scalar::Int64(set.len() as i64),
            AggState::SumI(s, seen) => {
                if seen {
                    Scalar::Int64(s)
                } else {
                    Scalar::Null
                }
            }
            AggState::SumF(s, seen) => {
                if seen {
                    Scalar::Float64(s)
                } else {
                    Scalar::Null
                }
            }
            AggState::MinMax(cur) => cur.unwrap_or(Scalar::Null),
            AggState::Avg(s, n) => {
                if n > 0 {
                    Scalar::Float64(s / n as f64)
                } else {
                    Scalar::Null
                }
            }
        }
    }
}

/// Group-by output: key columns followed by one column per aggregate, with
/// one row per group.
pub struct GroupByResult {
    /// One column per grouping key.
    pub key_columns: Vec<Array>,
    /// One column per aggregate request.
    pub agg_columns: Vec<Array>,
    /// Number of groups.
    pub num_groups: usize,
    /// True if the sort-based strategy was used (string keys).
    pub sort_based: bool,
}

/// Keyed aggregation. Strategy selection mirrors libcudf: sort-based when
/// any key column is a string, hash-based otherwise. Group output order is
/// deterministic: first-appearance order for the hash path, key order for
/// the sort path.
pub fn group_by(
    ctx: &GpuContext,
    keys: &[&Array],
    aggs: &[AggRequest<'_>],
    num_rows: usize,
) -> Result<GroupByResult> {
    let sort_based = keys.iter().any(|k| k.data_type() == DataType::Utf8);

    // Dictionary-encoded key columns contribute 4-byte rank proxies instead
    // of decoded strings: `rank[code]` equates and orders exactly like the
    // value it encodes, so group assignment and the sort-based output order
    // are unchanged while per-row `Key` clones stop carrying payload bytes.
    // The one-time dictionary sort that produces the ranks is charged below.
    let mut dict_sort_bytes = 0u64;
    let mut dict_entries = 0u64;
    let proxies: Vec<Option<Array>> = keys
        .iter()
        .map(|k| match k {
            Array::Dict(d) => {
                let ranks = d.value_ranks();
                dict_sort_bytes += d.dict_byte_size() as u64;
                dict_entries += d.values().len() as u64;
                Some(Array::Int32(PrimitiveArray::from_options(
                    (0..d.len()).map(|i| d.code(i).map(|c| ranks[c as usize])),
                    0,
                )))
            }
            _ => None,
        })
        .collect();
    let proxy_refs: Vec<&Array> = keys
        .iter()
        .zip(&proxies)
        .map(|(k, p)| p.as_ref().unwrap_or(k))
        .collect();
    if dict_entries > 0 {
        let log_d = (dict_entries.max(2) as f64).log2().ceil() as u64;
        ctx.charge_named(
            "groupby.dict_sort",
            &WorkProfile::scan(dict_sort_bytes)
                .with_streamed(dict_sort_bytes * log_d / 2)
                .with_flops(dict_entries * log_d)
                .with_rows(dict_entries)
                .with_launches(2),
        );
    }

    let (row_keys, _nulls) = row_keys(&proxy_refs, num_rows);

    // Assign each row a dense group id, remembering the first row where
    // each group appeared (its representative, for key materialization).
    let mut group_of_key: FxHashMap<Key, usize> = FxHashMap::default();
    let mut group_order: Vec<Key> = Vec::new();
    let mut group_rep: Vec<usize> = Vec::new();
    let mut group_ids = Vec::with_capacity(num_rows);
    for (row, k) in row_keys.into_iter().enumerate() {
        let next = group_order.len();
        let id = *group_of_key.entry(k.clone()).or_insert_with(|| {
            group_order.push(k);
            group_rep.push(row);
            next
        });
        group_ids.push(id);
    }
    let num_groups = group_order.len();

    // Sort-based strategy orders groups by key. This sort is a real kernel
    // (the libcudf behaviour the paper blames for Q10/Q18), so it is charged
    // as its own span rather than riding along for free.
    let mut output_order: Vec<usize> = (0..num_groups).collect();
    if sort_based {
        output_order.sort_by(|&a, &b| group_order[a].cmp(&group_order[b]));
        if num_groups > 1 {
            let key_row_bytes = key_bytes(&proxy_refs) / (num_rows.max(1) as u64);
            let sorted_bytes = key_row_bytes * num_groups as u64;
            let log_k = (num_groups.max(2) as f64).log2().ceil() as u64;
            ctx.charge_named(
                "groupby.order",
                &WorkProfile::scan(sorted_bytes)
                    .with_streamed(sorted_bytes * log_k / 2)
                    .with_flops(num_groups as u64 * log_k)
                    .with_rows(num_groups as u64)
                    .with_launches(2),
            );
        }
    }

    // Accumulate.
    let mut states: Vec<Vec<AggState>> = (0..num_groups)
        .map(|_| {
            aggs.iter()
                .map(|a| AggState::new(a.kind, a.input.map(|c| c.data_type())))
                .collect()
        })
        .collect();
    for (row, &g) in group_ids.iter().enumerate() {
        for (ai, a) in aggs.iter().enumerate() {
            states[g][ai].update(a.kind, a.input.map(|c| c.scalar(row)));
        }
    }

    // Materialize key columns by gathering each group's representative row
    // from the original arrays: values match the first-appearance scalars
    // and dictionary-encoded keys stay encoded in the output.
    let rep_rows: Vec<usize> = output_order.iter().map(|&g| group_rep[g]).collect();
    let key_columns: Vec<Array> = keys.iter().map(|k| k.gather(&rep_rows)).collect();

    let mut finished: Vec<Vec<Scalar>> = (0..aggs.len()).map(|_| Vec::new()).collect();
    let mut states_by_group: Vec<Option<Vec<AggState>>> = states.into_iter().map(Some).collect();
    for &g in &output_order {
        let group_states = states_by_group[g].take().expect("each group emitted once");
        for (ai, st) in group_states.into_iter().enumerate() {
            finished[ai].push(st.finish());
        }
    }
    let agg_columns: Vec<Array> = finished
        .iter()
        .zip(aggs.iter())
        .map(|(scalars, a)| {
            let t = a.kind.result_type(a.input.map(|c| c.data_type()))?;
            Ok(Array::from_scalars(scalars, t))
        })
        .collect::<Result<_>>()?;

    // Cost model. Hash path: one streamed pass over keys + agg inputs plus
    // random accumulator traffic; with few groups, GPU atomics contend on
    // the same accumulators — surcharge mirrors the paper's Q1 observation.
    // Sort path: n log n key-exchange passes (the paper's Q10/Q18 penalty).
    let input_bytes = key_bytes(keys)
        + aggs
            .iter()
            .filter_map(|a| a.input)
            .map(|c| c.byte_size() as u64)
            .sum::<u64>();
    let mut work = WorkProfile::scan(input_bytes)
        .with_random((num_rows * 4 * aggs.len().max(1)) as u64)
        .with_flops((num_rows * (aggs.len() + keys.len())) as u64)
        .with_rows(num_rows as u64);
    if sort_based {
        let log_n = (num_rows.max(2) as f64).log2().ceil() as u64;
        work = work
            .with_streamed(key_bytes(keys) * log_n / 2)
            .with_launches(4);
    } else if num_groups > 0 && num_groups < 256 {
        // Atomic contention surcharge: the fewer the groups, the hotter the
        // accumulator cache lines.
        let contention = (256 / num_groups.max(1)).min(6) as u64;
        work = work.with_random((num_rows as u64) * 4 * contention);
    }
    ctx.charge_named(
        if sort_based {
            "groupby.sort"
        } else {
            "groupby.hash"
        },
        &work,
    );

    Ok(GroupByResult {
        key_columns,
        agg_columns,
        num_groups,
        sort_based,
    })
}

/// One partial aggregate computed per morsel.
#[derive(Debug, Clone, Copy)]
pub struct PartialSpec {
    /// Aggregate to run on each morsel.
    pub kind: AggKind,
    /// Index of the originating aggregate request, for input resolution.
    pub source: usize,
}

#[derive(Debug, Clone, Copy)]
enum FinalSpec {
    /// Final column is merged partial column `i` unchanged.
    Passthrough(usize),
    /// AVG decomposed into partials: divide merged sum by merged count.
    AvgOf {
        /// Partial column holding the per-group sum.
        sum: usize,
        /// Partial column holding the per-group non-null count.
        count: usize,
    },
}

/// Decomposition of a set of aggregates into morsel-wise partials.
///
/// Morsel-driven group-by computes per-morsel partial tables, concatenates
/// them, and merges with a second keyed aggregation:
///
/// * `SUM` partials merge with `SUM`;
/// * `COUNT`/`COUNT(*)` partials merge with `SUM` (counts add);
/// * `MIN`/`MAX` partials merge with themselves;
/// * `AVG` decomposes into `SUM` + `COUNT` partials and divides at the end.
///
/// `COUNT(DISTINCT)` cannot be decomposed without shipping whole distinct
/// sets, so [`PartialAggPlan::new`] returns `None` and the engine falls back
/// to the single-pass whole-column path.
pub struct PartialAggPlan {
    partials: Vec<PartialSpec>,
    finals: Vec<FinalSpec>,
}

impl PartialAggPlan {
    /// Build the decomposition, or `None` if any aggregate cannot be
    /// computed morsel-wise.
    pub fn new(kinds: &[AggKind]) -> Option<PartialAggPlan> {
        let mut partials = Vec::new();
        let mut finals = Vec::new();
        for (source, kind) in kinds.iter().enumerate() {
            match kind {
                AggKind::CountDistinct => return None,
                AggKind::Avg => {
                    let sum = partials.len();
                    partials.push(PartialSpec {
                        kind: AggKind::Sum,
                        source,
                    });
                    partials.push(PartialSpec {
                        kind: AggKind::Count,
                        source,
                    });
                    finals.push(FinalSpec::AvgOf {
                        sum,
                        count: sum + 1,
                    });
                }
                k => {
                    finals.push(FinalSpec::Passthrough(partials.len()));
                    partials.push(PartialSpec { kind: *k, source });
                }
            }
        }
        Some(PartialAggPlan { partials, finals })
    }

    /// The partial aggregates to run on each morsel, in partial-column order.
    pub fn partials(&self) -> &[PartialSpec] {
        &self.partials
    }

    /// The aggregate that merges partial column `i` across morsels.
    pub fn merge_kind(&self, i: usize) -> AggKind {
        match self.partials[i].kind {
            AggKind::Sum | AggKind::Count | AggKind::CountStar => AggKind::Sum,
            AggKind::Min => AggKind::Min,
            AggKind::Max => AggKind::Max,
            k => unreachable!("no partial of kind {k:?}"),
        }
    }

    /// Produce the final per-original-aggregate columns from the merged
    /// partial columns (one array per partial, one row per group).
    pub fn finalize(&self, ctx: &GpuContext, merged: &[Array]) -> Result<Vec<Array>> {
        let mut out = Vec::with_capacity(self.finals.len());
        for f in &self.finals {
            match *f {
                FinalSpec::Passthrough(i) => out.push(merged[i].clone()),
                FinalSpec::AvgOf { sum, count } => {
                    let (s, n) = (&merged[sum], &merged[count]);
                    let scalars: Vec<Scalar> = (0..s.len())
                        .map(|g| match (s.scalar(g).as_f64(), n.scalar(g).as_i64()) {
                            (Some(total), Some(rows)) if rows > 0 => {
                                Scalar::Float64(total / rows as f64)
                            }
                            _ => Scalar::Null,
                        })
                        .collect();
                    ctx.charge_named(
                        "groupby.finalize_avg",
                        &WorkProfile::scan((s.len() * 16) as u64)
                            .with_flops(s.len() as u64)
                            .with_rows(s.len() as u64),
                    );
                    out.push(Array::from_scalars(&scalars, DataType::Float64));
                }
            }
        }
        Ok(out)
    }

    /// Scalar form of [`finalize`](Self::finalize) for ungrouped reductions:
    /// `merged` holds one merged scalar per partial.
    pub fn finalize_scalars(&self, merged: &[Scalar]) -> Vec<Scalar> {
        self.finals
            .iter()
            .map(|f| match *f {
                FinalSpec::Passthrough(i) => merged[i].clone(),
                FinalSpec::AvgOf { sum, count } => {
                    match (merged[sum].as_f64(), merged[count].as_i64()) {
                        (Some(total), Some(rows)) if rows > 0 => {
                            Scalar::Float64(total / rows as f64)
                        }
                        _ => Scalar::Null,
                    }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_ctx;

    #[test]
    fn hash_groupby_sums() {
        let ctx = test_ctx();
        let k = Array::from_i64([1, 2, 1, 2, 1]);
        let v = Array::from_i64([10, 20, 30, 40, 50]);
        let r = group_by(
            &ctx,
            &[&k],
            &[
                AggRequest {
                    kind: AggKind::Sum,
                    input: Some(&v),
                },
                AggRequest {
                    kind: AggKind::CountStar,
                    input: None,
                },
            ],
            5,
        )
        .unwrap();
        assert!(!r.sort_based);
        assert_eq!(r.num_groups, 2);
        // First-appearance order: group 1 then group 2.
        assert_eq!(r.key_columns[0].i64_value(0), Some(1));
        assert_eq!(r.agg_columns[0].i64_value(0), Some(90));
        assert_eq!(r.agg_columns[0].i64_value(1), Some(60));
        assert_eq!(r.agg_columns[1].i64_value(0), Some(3));
    }

    #[test]
    fn string_keys_use_sort_strategy_and_key_order() {
        let ctx = test_ctx();
        let k = Array::from_strs(["b", "a", "b"]);
        let v = Array::from_f64([1.0, 2.0, 3.0]);
        let r = group_by(
            &ctx,
            &[&k],
            &[AggRequest {
                kind: AggKind::Sum,
                input: Some(&v),
            }],
            3,
        )
        .unwrap();
        assert!(r.sort_based);
        assert_eq!(r.key_columns[0].utf8_value(0), Some("a"));
        assert_eq!(r.key_columns[0].utf8_value(1), Some("b"));
        assert_eq!(r.agg_columns[0].f64_value(1), Some(4.0));
    }

    #[test]
    fn avg_min_max_count() {
        let ctx = test_ctx();
        let k = Array::from_i64([7, 7, 7]);
        let v = Array::from_i64([3, 1, 2]);
        let r = group_by(
            &ctx,
            &[&k],
            &[
                AggRequest {
                    kind: AggKind::Avg,
                    input: Some(&v),
                },
                AggRequest {
                    kind: AggKind::Min,
                    input: Some(&v),
                },
                AggRequest {
                    kind: AggKind::Max,
                    input: Some(&v),
                },
                AggRequest {
                    kind: AggKind::Count,
                    input: Some(&v),
                },
            ],
            3,
        )
        .unwrap();
        assert_eq!(r.agg_columns[0].f64_value(0), Some(2.0));
        assert_eq!(r.agg_columns[1].i64_value(0), Some(1));
        assert_eq!(r.agg_columns[2].i64_value(0), Some(3));
        assert_eq!(r.agg_columns[3].i64_value(0), Some(3));
    }

    #[test]
    fn count_distinct_and_null_handling() {
        let ctx = test_ctx();
        let k = Array::from_i64([1, 1, 1, 1]);
        let v = Array::from_scalars(
            &[
                Scalar::Int64(5),
                Scalar::Int64(5),
                Scalar::Null,
                Scalar::Int64(6),
            ],
            DataType::Int64,
        );
        let r = group_by(
            &ctx,
            &[&k],
            &[
                AggRequest {
                    kind: AggKind::CountDistinct,
                    input: Some(&v),
                },
                AggRequest {
                    kind: AggKind::Count,
                    input: Some(&v),
                },
                AggRequest {
                    kind: AggKind::CountStar,
                    input: None,
                },
            ],
            4,
        )
        .unwrap();
        assert_eq!(r.agg_columns[0].i64_value(0), Some(2)); // 5, 6
        assert_eq!(r.agg_columns[1].i64_value(0), Some(3)); // non-null
        assert_eq!(r.agg_columns[2].i64_value(0), Some(4)); // rows
    }

    #[test]
    fn multi_key_groups() {
        let ctx = test_ctx();
        let k1 = Array::from_i64([1, 1, 2]);
        let k2 = Array::from_bool([true, false, true]);
        let r = group_by(
            &ctx,
            &[&k1, &k2],
            &[AggRequest {
                kind: AggKind::CountStar,
                input: None,
            }],
            3,
        )
        .unwrap();
        assert_eq!(r.num_groups, 3);
    }

    #[test]
    fn null_keys_form_a_group() {
        let ctx = test_ctx();
        let k = Array::from_scalars(
            &[Scalar::Null, Scalar::Int64(1), Scalar::Null],
            DataType::Int64,
        );
        let r = group_by(
            &ctx,
            &[&k],
            &[AggRequest {
                kind: AggKind::CountStar,
                input: None,
            }],
            3,
        )
        .unwrap();
        assert_eq!(r.num_groups, 2);
        // Null group appeared first.
        assert_eq!(r.key_columns[0].scalar(0), Scalar::Null);
        assert_eq!(r.agg_columns[0].i64_value(0), Some(2));
    }

    #[test]
    fn few_groups_cost_more_per_row_than_many() {
        // The contention surcharge: same row count, fewer groups ⇒ more time.
        let ctx1 = test_ctx();
        let n = 10_000usize;
        let few = Array::from_i64((0..n as i64).map(|i| i % 4));
        group_by(
            &ctx1,
            &[&few],
            &[AggRequest {
                kind: AggKind::CountStar,
                input: None,
            }],
            n,
        )
        .unwrap();
        let ctx2 = test_ctx();
        let many = Array::from_i64((0..n as i64).map(|i| i % 100_000));
        group_by(
            &ctx2,
            &[&many],
            &[AggRequest {
                kind: AggKind::CountStar,
                input: None,
            }],
            n,
        )
        .unwrap();
        assert!(ctx1.device().elapsed() > ctx2.device().elapsed());
    }

    #[test]
    fn dict_keys_match_decoded_and_cost_less() {
        let n = 400_000usize;
        let words = [
            "whitesmoke-sandy-hued customer comment",
            "aquamarine-metallic packaging phrase",
            "burnished-rose special requests note",
            "azure furious deposit instruction",
        ];
        let decoded = Array::from_strs((0..n).map(|i| words[i % 4]));
        let encoded = decoded.dict_encode();
        let v = Array::from_i64((0..n as i64).map(|i| i % 100));
        let run = |ctx: &crate::GpuContext, key: &Array| {
            group_by(
                ctx,
                &[key],
                &[AggRequest {
                    kind: AggKind::Sum,
                    input: Some(&v),
                }],
                n,
            )
            .unwrap()
        };
        let ctx_dec = test_ctx();
        let plain = run(&ctx_dec, &decoded);
        let ctx_enc = test_ctx();
        let dict = run(&ctx_enc, &encoded);
        assert!(plain.sort_based && dict.sort_based);
        assert_eq!(dict.num_groups, plain.num_groups);
        // Same values in the same (sorted) order, and the encoded run's key
        // output is still dictionary-encoded, sharing the input dictionary.
        for g in 0..plain.num_groups {
            assert_eq!(
                dict.key_columns[0].utf8_value(g),
                plain.key_columns[0].utf8_value(g)
            );
            assert_eq!(
                dict.agg_columns[0].scalar(g),
                plain.agg_columns[0].scalar(g)
            );
        }
        assert!(dict.key_columns[0].is_dict());
        assert!(std::sync::Arc::ptr_eq(
            dict.key_columns[0].as_dict().unwrap().values(),
            encoded.as_dict().unwrap().values(),
        ));
        // Codes stream fewer bytes than payload: encoded run is cheaper
        // even after paying for the dictionary sort and the order span.
        assert!(ctx_enc.device().elapsed() < ctx_dec.device().elapsed());
    }

    #[test]
    fn sort_based_output_order_is_charged() {
        let ctx = test_ctx();
        let sink = sirius_hw::TraceSink::new();
        ctx.device().set_trace(sink.clone());
        let k = Array::from_strs(["b", "a", "c", "a"]);
        group_by(
            &ctx,
            &[&k],
            &[AggRequest {
                kind: AggKind::CountStar,
                input: None,
            }],
            4,
        )
        .unwrap();
        let events = sink.events();
        assert!(
            events.iter().any(|e| e.label == "groupby.order"),
            "output_order sort must appear as its own charged span"
        );
        // Replay of the recorded spans reproduces the ledger exactly.
        assert_eq!(
            sirius_hw::ledger::replay(&events).total(),
            ctx.device().breakdown().total()
        );
    }

    #[test]
    fn partial_merge_matches_single_pass() {
        let ctx = test_ctx();
        let keys: Vec<i64> = (0..50).map(|i| i % 5).collect();
        let vals: Vec<Scalar> = (0..50)
            .map(|i| {
                if i % 7 == 0 {
                    Scalar::Null
                } else {
                    Scalar::Int64(i)
                }
            })
            .collect();
        let k = Array::from_i64(keys.iter().copied());
        let v = Array::from_scalars(&vals, DataType::Int64);
        let kinds = [
            AggKind::Sum,
            AggKind::Avg,
            AggKind::Min,
            AggKind::Max,
            AggKind::Count,
        ];
        let whole = group_by(
            &ctx,
            &[&k],
            &kinds
                .iter()
                .map(|&kind| AggRequest {
                    kind,
                    input: Some(&v),
                })
                .collect::<Vec<_>>(),
            50,
        )
        .unwrap();

        // Morsel-wise: partials over three uneven chunks, concatenated,
        // merged with a second group-by, finalized.
        let plan = PartialAggPlan::new(&kinds).unwrap();
        let mut part_keys: Vec<Scalar> = Vec::new();
        let mut part_cols: Vec<Vec<Scalar>> = vec![Vec::new(); plan.partials().len()];
        for chunk in [0..13, 13..31, 31..50] {
            let mk = Array::from_i64(keys[chunk.clone()].iter().copied());
            let mv = Array::from_scalars(&vals[chunk], DataType::Int64);
            let reqs: Vec<AggRequest> = plan
                .partials()
                .iter()
                .map(|p| AggRequest {
                    kind: p.kind,
                    input: Some(&mv),
                })
                .collect();
            let partial = group_by(&ctx, &[&mk], &reqs, mk.len()).unwrap();
            for g in 0..partial.num_groups {
                part_keys.push(partial.key_columns[0].scalar(g));
                for (ci, col) in partial.agg_columns.iter().enumerate() {
                    part_cols[ci].push(col.scalar(g));
                }
            }
        }
        let merged_key = Array::from_scalars(&part_keys, DataType::Int64);
        let merged_inputs: Vec<Array> = part_cols
            .iter()
            .zip(plan.partials().iter())
            .map(|(scalars, p)| {
                let t = p.kind.result_type(Some(DataType::Int64)).unwrap();
                Array::from_scalars(scalars, t)
            })
            .collect();
        let merge_reqs: Vec<AggRequest> = merged_inputs
            .iter()
            .enumerate()
            .map(|(i, col)| AggRequest {
                kind: plan.merge_kind(i),
                input: Some(col),
            })
            .collect();
        let merged = group_by(&ctx, &[&merged_key], &merge_reqs, merged_key.len()).unwrap();
        let finals = plan.finalize(&ctx, &merged.agg_columns).unwrap();

        assert_eq!(merged.num_groups, whole.num_groups);
        for g in 0..whole.num_groups {
            // First-appearance order is preserved through the merge.
            assert_eq!(
                merged.key_columns[0].scalar(g),
                whole.key_columns[0].scalar(g)
            );
            for (ai, col) in finals.iter().enumerate() {
                assert_eq!(
                    col.scalar(g),
                    whole.agg_columns[ai].scalar(g),
                    "agg {ai} group {g}"
                );
            }
        }
    }

    #[test]
    fn partial_plan_gates_count_distinct() {
        assert!(PartialAggPlan::new(&[AggKind::Sum, AggKind::CountDistinct]).is_none());
        let plan = PartialAggPlan::new(&[AggKind::Avg]).unwrap();
        assert_eq!(plan.partials().len(), 2);
        assert_eq!(
            plan.finalize_scalars(&[Scalar::Int64(10), Scalar::Int64(4)]),
            vec![Scalar::Float64(2.5)]
        );
        assert_eq!(
            plan.finalize_scalars(&[Scalar::Null, Scalar::Int64(0)]),
            vec![Scalar::Null]
        );
    }

    #[test]
    fn zero_rows() {
        let ctx = test_ctx();
        let k = Array::from_i64([]);
        let r = group_by(
            &ctx,
            &[&k],
            &[AggRequest {
                kind: AggKind::CountStar,
                input: None,
            }],
            0,
        )
        .unwrap();
        assert_eq!(r.num_groups, 0);
        assert_eq!(r.key_columns[0].len(), 0);
    }
}
