//! Distinct-rows kernel.

use crate::hash::{row_keys, FxHashSet, Key};
use crate::{GpuContext, Result};
use sirius_columnar::Table;
use sirius_hw::WorkProfile;

/// Keep the first occurrence of each distinct row (SQL `SELECT DISTINCT`).
/// Output preserves first-appearance order.
pub fn distinct(ctx: &GpuContext, table: &Table) -> Result<Table> {
    let cols: Vec<_> = table.columns().iter().collect();
    let (keys, _null) = row_keys(&cols, table.num_rows());
    let mut seen: FxHashSet<Key> = FxHashSet::default();
    let mut keep = Vec::new();
    for (i, k) in keys.into_iter().enumerate() {
        if seen.insert(k) {
            keep.push(i);
        }
    }
    let out = table.gather(&keep);
    ctx.charge_named(
        "unique.distinct",
        &WorkProfile::scan(table.byte_size() as u64)
            .with_random((table.num_rows() * 16) as u64)
            .with_streamed(out.byte_size() as u64)
            .with_rows(table.num_rows() as u64),
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_ctx;
    use sirius_columnar::{Array, DataType, Field, Scalar, Schema};

    #[test]
    fn dedupes_preserving_first_appearance() {
        let ctx = test_ctx();
        let t = Table::new(
            Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Utf8),
            ]),
            vec![
                Array::from_i64([1, 2, 1, 2]),
                Array::from_strs(["x", "y", "x", "z"]),
            ],
        );
        let d = distinct(&ctx, &t).unwrap();
        assert_eq!(d.num_rows(), 3);
        assert_eq!(d.row(0), vec![Scalar::Int64(1), Scalar::Utf8("x".into())]);
        assert_eq!(d.row(2), vec![Scalar::Int64(2), Scalar::Utf8("z".into())]);
    }

    #[test]
    fn null_rows_dedupe_together() {
        let ctx = test_ctx();
        let t = Table::new(
            Schema::new(vec![Field::new("a", DataType::Int64)]),
            vec![Array::from_scalars(
                &[Scalar::Null, Scalar::Null, Scalar::Int64(1)],
                DataType::Int64,
            )],
        );
        let d = distinct(&ctx, &t).unwrap();
        assert_eq!(d.num_rows(), 2);
    }

    #[test]
    fn already_distinct_is_identity() {
        let ctx = test_ctx();
        let t = Table::new(
            Schema::new(vec![Field::new("a", DataType::Int64)]),
            vec![Array::from_i64([3, 1, 2])],
        );
        let d = distinct(&ctx, &t).unwrap();
        assert_eq!(d.canonical_rows(), t.canonical_rows());
    }
}
