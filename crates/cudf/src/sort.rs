//! Sort kernels: multi-key order-by producing gather indices, and top-k.

use crate::{GpuContext, Result};
use sirius_columnar::Array;
#[cfg(test)]
use sirius_columnar::Scalar;
use sirius_hw::WorkProfile;
use std::cmp::Ordering;

/// One sort key: a column plus direction. Nulls sort first on ascending
/// keys and last on descending keys (the engines' default).
pub struct SortKey<'a> {
    /// The key column.
    pub column: &'a Array,
    /// True for ascending order.
    pub ascending: bool,
}

fn compare_row(keys: &[SortKey<'_>], a: usize, b: usize) -> Ordering {
    for k in keys {
        let (va, vb) = (k.column.scalar(a), k.column.scalar(b));
        let ord = va.cmp(&vb);
        let ord = if k.ascending { ord } else { ord.reverse() };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Stable multi-key sort returning libcudf-style `i32` gather indices.
pub fn sort_indices(ctx: &GpuContext, keys: &[SortKey<'_>], num_rows: usize) -> Result<Vec<i32>> {
    let mut idx: Vec<i32> = (0..num_rows as i32).collect();
    idx.sort_by(|&a, &b| compare_row(keys, a as usize, b as usize));

    let key_bytes: u64 = keys.iter().map(|k| k.column.byte_size() as u64).sum();
    let log_n = (num_rows.max(2) as f64).log2().ceil() as u64;
    ctx.charge_named(
        "sort.comparator",
        &WorkProfile::scan(key_bytes * log_n / 2)
            .with_random((num_rows * 8) as u64)
            .with_flops(num_rows as u64 * log_n)
            .with_rows(num_rows as u64),
    );
    Ok(idx)
}

/// Top-k selection: indices of the first `k` rows in sort order, costed as
/// a single heap-select pass rather than a full sort.
pub fn top_k_indices(
    ctx: &GpuContext,
    keys: &[SortKey<'_>],
    num_rows: usize,
    k: usize,
) -> Result<Vec<i32>> {
    let mut idx: Vec<i32> = (0..num_rows as i32).collect();
    let k = k.min(num_rows);
    idx.sort_by(|&a, &b| compare_row(keys, a as usize, b as usize));
    idx.truncate(k);

    let key_bytes: u64 = keys.iter().map(|kc| kc.column.byte_size() as u64).sum();
    let log_k = (k.max(2) as f64).log2().ceil() as u64;
    ctx.charge_named(
        "sort.top_k",
        &WorkProfile::scan(key_bytes)
            .with_flops(num_rows as u64 * log_k)
            .with_rows(num_rows as u64),
    );
    Ok(idx)
}

/// Radix sort for a single non-null `Int64` key column (ascending). Used by
/// the ablation bench to contrast with comparison sort; results equal
/// [`sort_indices`] on the same input.
pub fn radix_sort_indices_i64(ctx: &GpuContext, column: &Array) -> Result<Vec<i32>> {
    let prim = column.as_i64()?;
    let n = prim.len();
    // 8 passes of 8 bits over sign-flipped keys.
    let mut idx: Vec<i32> = (0..n as i32).collect();
    let mut scratch = vec![0i32; n];
    let key = |i: i32| (prim.values()[i as usize] as u64) ^ (1u64 << 63);
    for pass in 0..8 {
        let shift = pass * 8;
        let mut counts = [0usize; 256];
        for &i in &idx {
            counts[((key(i) >> shift) & 0xFF) as usize] += 1;
        }
        let mut offsets = [0usize; 256];
        let mut acc = 0;
        for (o, c) in offsets.iter_mut().zip(counts.iter()) {
            *o = acc;
            acc += c;
        }
        for &i in &idx {
            let bucket = ((key(i) >> shift) & 0xFF) as usize;
            scratch[offsets[bucket]] = i;
            offsets[bucket] += 1;
        }
        std::mem::swap(&mut idx, &mut scratch);
    }
    ctx.charge_named(
        "sort.radix",
        &WorkProfile::scan(column.byte_size() as u64 * 8)
            .with_random((n * 4 * 8) as u64)
            .with_flops((n * 8) as u64)
            .with_launches(8)
            .with_rows(n as u64),
    );
    Ok(idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_ctx;
    use proptest::prelude::*;
    use sirius_columnar::DataType;

    #[test]
    fn single_key_ascending_descending() {
        let ctx = test_ctx();
        let c = Array::from_i64([3, 1, 2]);
        let asc = sort_indices(
            &ctx,
            &[SortKey {
                column: &c,
                ascending: true,
            }],
            3,
        )
        .unwrap();
        assert_eq!(asc, vec![1, 2, 0]);
        let desc = sort_indices(
            &ctx,
            &[SortKey {
                column: &c,
                ascending: false,
            }],
            3,
        )
        .unwrap();
        assert_eq!(desc, vec![0, 2, 1]);
    }

    #[test]
    fn multi_key_tiebreak() {
        let ctx = test_ctx();
        let k1 = Array::from_strs(["b", "a", "b", "a"]);
        let k2 = Array::from_i64([1, 2, 0, 1]);
        let idx = sort_indices(
            &ctx,
            &[
                SortKey {
                    column: &k1,
                    ascending: true,
                },
                SortKey {
                    column: &k2,
                    ascending: false,
                },
            ],
            4,
        )
        .unwrap();
        assert_eq!(idx, vec![1, 3, 0, 2]);
    }

    #[test]
    fn stability_on_equal_keys() {
        let ctx = test_ctx();
        let c = Array::from_i64([5, 5, 5]);
        let idx = sort_indices(
            &ctx,
            &[SortKey {
                column: &c,
                ascending: true,
            }],
            3,
        )
        .unwrap();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn nulls_first_ascending() {
        let ctx = test_ctx();
        let c = Array::from_scalars(
            &[Scalar::Int64(1), Scalar::Null, Scalar::Int64(0)],
            DataType::Int64,
        );
        let idx = sort_indices(
            &ctx,
            &[SortKey {
                column: &c,
                ascending: true,
            }],
            3,
        )
        .unwrap();
        assert_eq!(idx, vec![1, 2, 0]);
    }

    #[test]
    fn top_k_matches_sort_prefix() {
        let ctx = test_ctx();
        let c = Array::from_i64([9, 3, 7, 1, 5]);
        let keys = [SortKey {
            column: &c,
            ascending: true,
        }];
        let full = sort_indices(&ctx, &keys, 5).unwrap();
        let keys = [SortKey {
            column: &c,
            ascending: true,
        }];
        let top = top_k_indices(&ctx, &keys, 5, 3).unwrap();
        assert_eq!(top, full[..3]);
        let keys = [SortKey {
            column: &c,
            ascending: true,
        }];
        let over = top_k_indices(&ctx, &keys, 5, 50).unwrap();
        assert_eq!(over.len(), 5);
    }

    proptest! {
        #[test]
        fn prop_radix_matches_comparison_sort(
            values in proptest::collection::vec(any::<i64>(), 0..200)
        ) {
            let ctx = test_ctx();
            let c = Array::from_i64(values.clone());
            let radix = radix_sort_indices_i64(&ctx, &c).unwrap();
            let sorted: Vec<i64> =
                radix.iter().map(|&i| values[i as usize]).collect();
            let mut expected = values.clone();
            expected.sort_unstable();
            prop_assert_eq!(sorted, expected);
        }

        #[test]
        fn prop_sort_produces_permutation(
            values in proptest::collection::vec(any::<i64>(), 0..100)
        ) {
            let ctx = test_ctx();
            let c = Array::from_i64(values.clone());
            let idx = sort_indices(
                &ctx,
                &[SortKey { column: &c, ascending: true }],
                values.len(),
            ).unwrap();
            let mut seen = idx.clone();
            seen.sort_unstable();
            let expect: Vec<i32> = (0..values.len() as i32).collect();
            prop_assert_eq!(seen, expect);
        }
    }
}
