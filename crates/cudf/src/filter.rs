//! Selection application: keep table rows where a boolean column is true.

use crate::{GpuContext, Result};
use sirius_columnar::{Array, Table};
use sirius_hw::WorkProfile;

/// Apply a boolean selection column to a table (SQL WHERE semantics: null
/// predicate results do not select).
pub fn apply_filter(ctx: &GpuContext, table: &Table, mask: &Array) -> Result<Table> {
    let selection = mask.as_bool()?.to_selection();
    let out = table.filter(&selection);
    ctx.charge_named(
        "filter.apply",
        &WorkProfile::scan(table.byte_size() as u64)
            .with_streamed(out.byte_size() as u64)
            .with_flops(table.num_rows() as u64)
            .with_rows(table.num_rows() as u64),
    );
    Ok(out)
}

/// Gather table rows at libcudf-style `i32` indices (materialization after
/// a join or sort).
pub fn gather(ctx: &GpuContext, table: &Table, indices: &[i32]) -> Table {
    let idx: Vec<usize> = indices.iter().map(|&i| i as usize).collect();
    let out = table.gather(&idx);
    ctx.charge_named(
        "filter.gather",
        &WorkProfile::random(out.byte_size() as u64)
            .with_streamed((indices.len() * 4) as u64)
            .with_rows(indices.len() as u64),
    );
    out
}

/// Gather with null introduction (`None` index ⇒ null row), for outer joins.
pub fn gather_opt(ctx: &GpuContext, table: &Table, indices: &[Option<i32>]) -> Table {
    let idx: Vec<Option<usize>> = indices.iter().map(|o| o.map(|i| i as usize)).collect();
    let columns: Vec<Array> = table.columns().iter().map(|c| c.gather_opt(&idx)).collect();
    let mut schema = table.schema().clone();
    for f in &mut schema.fields {
        f.nullable = true;
    }
    let out = Table::new(schema, columns);
    ctx.charge_named(
        "filter.gather_opt",
        &WorkProfile::random(out.byte_size() as u64)
            .with_streamed((indices.len() * 4) as u64)
            .with_rows(indices.len() as u64),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_ctx;
    use sirius_columnar::{DataType, Field, Scalar, Schema};

    fn t() -> Table {
        Table::new(
            Schema::new(vec![
                Field::new("k", DataType::Int64),
                Field::new("s", DataType::Utf8),
            ]),
            vec![
                Array::from_i64([1, 2, 3]),
                Array::from_strs(["a", "b", "c"]),
            ],
        )
    }

    #[test]
    fn filter_drops_false_and_null() {
        let ctx = test_ctx();
        let mask = Array::from_scalars(
            &[Scalar::Bool(true), Scalar::Null, Scalar::Bool(false)],
            DataType::Bool,
        );
        let out = apply_filter(&ctx, &t(), &mask).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.column(0).i64_value(0), Some(1));
    }

    #[test]
    fn filter_requires_bool() {
        let ctx = test_ctx();
        assert!(apply_filter(&ctx, &t(), &Array::from_i64([1, 2, 3])).is_err());
    }

    #[test]
    fn gather_i32_indices() {
        let ctx = test_ctx();
        let out = gather(&ctx, &t(), &[2, 0, 2]);
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.column(1).utf8_value(0), Some("c"));
        assert_eq!(out.column(1).utf8_value(1), Some("a"));
    }

    #[test]
    fn gather_opt_nulls() {
        let ctx = test_ctx();
        let out = gather_opt(&ctx, &t(), &[Some(1), None]);
        assert_eq!(out.column(0).i64_value(0), Some(2));
        assert_eq!(out.column(0).scalar(1), Scalar::Null);
        assert!(out.schema().fields[0].nullable);
    }
}
