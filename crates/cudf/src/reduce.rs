//! Ungrouped reductions (whole-column aggregates).

use crate::groupby::AggKind;
use crate::hash::FxHashSet;
use crate::{GpuContext, Result};
use sirius_columnar::{Array, Scalar};
use sirius_hw::WorkProfile;

/// Reduce a column with one aggregate over `num_rows` input rows
/// (`num_rows` matters only for `CountStar`, whose input is absent). SQL
/// semantics over zero rows: `COUNT` variants return 0, everything else
/// returns NULL.
pub fn reduce(
    ctx: &GpuContext,
    kind: AggKind,
    input: Option<&Array>,
    num_rows: usize,
) -> Result<Scalar> {
    debug_assert!(input.map(|c| c.len() == num_rows).unwrap_or(true));
    let bytes = input.map(|c| c.byte_size() as u64).unwrap_or(0);
    ctx.charge_named(
        "reduce.scalar",
        &WorkProfile::scan(bytes)
            .with_flops(num_rows as u64)
            .with_rows(num_rows as u64),
    );

    let out_type = kind.result_type(input.map(|c| c.data_type()))?;
    let values = || {
        let c = input.expect("non-count aggregates have inputs");
        (0..c.len())
            .map(move |i| c.scalar(i))
            .filter(|s| !s.is_null())
    };
    Ok(match kind {
        AggKind::CountStar => Scalar::Int64(num_rows as i64),
        AggKind::Count => Scalar::Int64(values().count() as i64),
        AggKind::CountDistinct => {
            let set: FxHashSet<Scalar> = values().collect();
            Scalar::Int64(set.len() as i64)
        }
        AggKind::Sum => {
            let mut any = false;
            if out_type == sirius_columnar::DataType::Float64 {
                let mut s = 0.0;
                for v in values() {
                    s += v.as_f64().expect("numeric");
                    any = true;
                }
                if any {
                    Scalar::Float64(s)
                } else {
                    Scalar::Null
                }
            } else {
                let mut s = 0i64;
                for v in values() {
                    s += v.as_i64().expect("int");
                    any = true;
                }
                if any {
                    Scalar::Int64(s)
                } else {
                    Scalar::Null
                }
            }
        }
        AggKind::Min => values().min().unwrap_or(Scalar::Null),
        AggKind::Max => values().max().unwrap_or(Scalar::Null),
        AggKind::Avg => {
            let (mut s, mut n) = (0.0, 0i64);
            for v in values() {
                s += v.as_f64().expect("numeric");
                n += 1;
            }
            if n > 0 {
                Scalar::Float64(s / n as f64)
            } else {
                Scalar::Null
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_ctx;
    use sirius_columnar::DataType;

    #[test]
    fn basic_reductions() {
        let ctx = test_ctx();
        let a = Array::from_i64([3, 1, 2]);
        assert_eq!(
            reduce(&ctx, AggKind::Sum, Some(&a), a.len()).unwrap(),
            Scalar::Int64(6)
        );
        assert_eq!(
            reduce(&ctx, AggKind::Min, Some(&a), a.len()).unwrap(),
            Scalar::Int64(1)
        );
        assert_eq!(
            reduce(&ctx, AggKind::Max, Some(&a), a.len()).unwrap(),
            Scalar::Int64(3)
        );
        assert_eq!(
            reduce(&ctx, AggKind::Avg, Some(&a), a.len()).unwrap(),
            Scalar::Float64(2.0)
        );
        assert_eq!(
            reduce(&ctx, AggKind::CountStar, Some(&a), a.len()).unwrap(),
            Scalar::Int64(3)
        );
    }

    #[test]
    fn empty_input_semantics() {
        let ctx = test_ctx();
        let a = Array::from_i64([]);
        assert_eq!(
            reduce(&ctx, AggKind::Sum, Some(&a), a.len()).unwrap(),
            Scalar::Null
        );
        assert_eq!(
            reduce(&ctx, AggKind::Avg, Some(&a), a.len()).unwrap(),
            Scalar::Null
        );
        assert_eq!(
            reduce(&ctx, AggKind::Min, Some(&a), a.len()).unwrap(),
            Scalar::Null
        );
        assert_eq!(
            reduce(&ctx, AggKind::Count, Some(&a), a.len()).unwrap(),
            Scalar::Int64(0)
        );
    }

    #[test]
    fn nulls_skipped() {
        let ctx = test_ctx();
        let a = Array::from_scalars(
            &[Scalar::Int64(5), Scalar::Null, Scalar::Int64(7)],
            DataType::Int64,
        );
        assert_eq!(
            reduce(&ctx, AggKind::Sum, Some(&a), a.len()).unwrap(),
            Scalar::Int64(12)
        );
        assert_eq!(
            reduce(&ctx, AggKind::Count, Some(&a), a.len()).unwrap(),
            Scalar::Int64(2)
        );
        assert_eq!(
            reduce(&ctx, AggKind::Avg, Some(&a), a.len()).unwrap(),
            Scalar::Float64(6.0)
        );
    }

    #[test]
    fn count_distinct() {
        let ctx = test_ctx();
        let a = Array::from_strs(["x", "y", "x"]);
        assert_eq!(
            reduce(&ctx, AggKind::CountDistinct, Some(&a), a.len()).unwrap(),
            Scalar::Int64(2)
        );
    }

    #[test]
    fn float_sum() {
        let ctx = test_ctx();
        let a = Array::from_f64([0.5, 0.25]);
        assert_eq!(
            reduce(&ctx, AggKind::Sum, Some(&a), a.len()).unwrap(),
            Scalar::Float64(0.75)
        );
    }
}
