//! SQL tokenizer.

use crate::{Result, SqlError};

/// A SQL token. Keywords are lexed as `Ident` and matched
/// case-insensitively by the parser.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (original case preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Punctuation / operator.
    Symbol(Sym),
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Sym {
    LParen,
    RParen,
    Comma,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Dot,
}

impl Token {
    /// True if this token is the keyword `kw` (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize SQL text.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if chars.get(i + 1) == Some(&'-') => {
                // line comment
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => return Err(SqlError::Lex("unterminated string".into())),
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if chars.get(i) == Some(&'.')
                    && chars
                        .get(i + 1)
                        .map(|c| c.is_ascii_digit())
                        .unwrap_or(false)
                {
                    is_float = true;
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    out.push(Token::Float(
                        text.parse()
                            .map_err(|e| SqlError::Lex(format!("bad float {text}: {e}")))?,
                    ));
                } else {
                    out.push(Token::Int(
                        text.parse()
                            .map_err(|e| SqlError::Lex(format!("bad int {text}: {e}")))?,
                    ));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(chars[start..i].iter().collect()));
            }
            _ => {
                let (sym, advance) = match (c, chars.get(i + 1)) {
                    ('<', Some('=')) => (Sym::LtEq, 2),
                    ('<', Some('>')) => (Sym::NotEq, 2),
                    ('>', Some('=')) => (Sym::GtEq, 2),
                    ('!', Some('=')) => (Sym::NotEq, 2),
                    ('(', _) => (Sym::LParen, 1),
                    (')', _) => (Sym::RParen, 1),
                    (',', _) => (Sym::Comma, 1),
                    (';', _) => (Sym::Semicolon, 1),
                    ('*', _) => (Sym::Star, 1),
                    ('+', _) => (Sym::Plus, 1),
                    ('-', _) => (Sym::Minus, 1),
                    ('/', _) => (Sym::Slash, 1),
                    ('%', _) => (Sym::Percent, 1),
                    ('=', _) => (Sym::Eq, 1),
                    ('<', _) => (Sym::Lt, 1),
                    ('>', _) => (Sym::Gt, 1),
                    ('.', _) => (Sym::Dot, 1),
                    _ => return Err(SqlError::Lex(format!("unexpected character {c:?}"))),
                };
                out.push(Token::Symbol(sym));
                i += advance;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_mixed_query() {
        let toks = tokenize(
            "select l_orderkey, sum(x) -- comment\nfrom t where d >= date '1994-01-01' and p <> 'it''s'",
        )
        .unwrap();
        assert!(toks.iter().any(|t| t.is_kw("SELECT")));
        assert!(toks.contains(&Token::Str("1994-01-01".into())));
        assert!(toks.contains(&Token::Str("it's".into())));
        assert!(toks.contains(&Token::Symbol(Sym::GtEq)));
        assert!(toks.contains(&Token::Symbol(Sym::NotEq)));
    }

    #[test]
    fn numbers() {
        let toks = tokenize("1 2.5 0.05 100").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(1),
                Token::Float(2.5),
                Token::Float(0.05),
                Token::Int(100)
            ]
        );
    }

    #[test]
    fn dotted_identifiers_stay_separate_tokens() {
        let toks = tokenize("n1.n_name").unwrap();
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1], Token::Symbol(Sym::Dot));
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a # b").is_err());
    }
}
