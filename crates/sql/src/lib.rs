//! # sirius-sql — SQL frontend (parser, binder, decorrelator, optimizer)
//!
//! The "host database layer" of the paper (§3.2.1): the component stack a
//! host system like DuckDB contributes — SQL parsing, name resolution,
//! subquery decorrelation, and logical optimization — producing the
//! Substrait-style plans (`sirius-plan`) that either the host's own CPU
//! engine or the Sirius GPU engine executes.
//!
//! The dialect covers analytic SELECT queries: comma and explicit JOIN
//! syntax, WHERE/GROUP BY/HAVING/ORDER BY/LIMIT, WITH (common table
//! expressions), derived tables, scalar/EXISTS/IN subqueries with full
//! decorrelation of the TPC-H patterns, CASE, BETWEEN, LIKE, IN lists,
//! date/interval literals, EXTRACT, and SUBSTRING — everything the 22
//! TPC-H queries require.
//!
//! ```
//! use sirius_sql::{plan_sql, BinderCatalog, JoinOrderPolicy};
//! use sirius_columnar::{DataType, Field, Schema};
//!
//! let mut cat = BinderCatalog::new();
//! cat.add_table(
//!     "t",
//!     Schema::new(vec![Field::new("x", DataType::Int64)]),
//!     100,
//! );
//! let plan = plan_sql(
//!     "select x, count(*) as n from t where x > 3 group by x order by n desc limit 5",
//!     &cat,
//!     JoinOrderPolicy::Optimized,
//! )
//! .unwrap();
//! assert!(plan.explain().contains("Aggregate"));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod binder;
pub mod lexer;
pub mod optimizer;
pub mod parser;

pub use binder::{BinderCatalog, JoinOrderPolicy};
pub use optimizer::stats::{CatalogStatistics, Statistics};

use sirius_plan::Rel;

/// Errors from the SQL frontend.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Tokenizer failure.
    Lex(String),
    /// Parser failure.
    Parse(String),
    /// Binder failure (unknown names, type errors, unsupported shapes).
    Bind(String),
    /// Plan-layer error.
    Plan(sirius_plan::PlanError),
}

impl From<sirius_plan::PlanError> for SqlError {
    fn from(e: sirius_plan::PlanError) -> Self {
        SqlError::Plan(e)
    }
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Lex(m) => write!(f, "lex error: {m}"),
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::Bind(m) => write!(f, "bind error: {m}"),
            SqlError::Plan(e) => write!(f, "plan error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Result alias for the SQL frontend.
pub type Result<T> = std::result::Result<T, SqlError>;

/// Parse, bind, decorrelate, and optimize a SQL query into a plan.
pub fn plan_sql(sql: &str, catalog: &BinderCatalog, policy: JoinOrderPolicy) -> Result<Rel> {
    plan_sql_with_stats(sql, catalog, policy, &CatalogStatistics::new(catalog))
}

/// Like [`plan_sql`], but with join ordering and build-side selection
/// driven by an explicit [`Statistics`] source — the entry point for
/// adaptive re-optimization from runtime feedback.
pub fn plan_sql_with_stats(
    sql: &str,
    catalog: &BinderCatalog,
    policy: JoinOrderPolicy,
    stats: &dyn Statistics,
) -> Result<Rel> {
    let tokens = lexer::tokenize(sql)?;
    let query = parser::parse_query(&tokens)?;
    let plan = binder::bind_with_stats(&query, catalog, policy, stats)?;
    let plan = optimizer::optimize(plan)?;
    sirius_plan::validate::validate(&plan)?;
    Ok(plan)
}
