//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::lexer::{Sym, Token};
use crate::{Result, SqlError};

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

/// Parse a full query from tokens.
pub fn parse_query(tokens: &[Token]) -> Result<Query> {
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.eat_sym(Sym::Semicolon);
    if p.pos != p.tokens.len() {
        return Err(SqlError::Parse(format!(
            "trailing tokens starting at {:?}",
            p.peek()
        )));
    }
    Ok(q)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_kw(&self, kw: &str) -> bool {
        self.peek().map(|t| t.is_kw(kw)).unwrap_or(false)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn at_sym(&self, s: Sym) -> bool {
        matches!(self.peek(), Some(Token::Symbol(x)) if *x == s)
    }

    fn eat_sym(&mut self, s: Sym) -> bool {
        if self.at_sym(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: Sym) -> Result<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected {s:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s.clone()),
            other => Err(SqlError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    // -- query structure -----------------------------------------------------

    fn query(&mut self) -> Result<Query> {
        let mut ctes = Vec::new();
        if self.eat_kw("with") {
            loop {
                let name = self.ident()?;
                self.expect_kw("as")?;
                self.expect_sym(Sym::LParen)?;
                let q = self.query()?;
                self.expect_sym(Sym::RParen)?;
                ctes.push((name, q));
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let select = self.select()?;
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let ascending = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                order_by.push(OrderItem { expr, ascending });
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.next() {
                Some(Token::Int(n)) if *n >= 0 => Some(*n as usize),
                other => {
                    return Err(SqlError::Parse(format!(
                        "expected limit count, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Query {
            ctes,
            select,
            order_by,
            limit,
        })
    }

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut items = Vec::new();
        if self.eat_sym(Sym::Star) {
            // `select *` is only used inside EXISTS subqueries; represent it
            // as a constant (the binder ignores projection there).
            items.push(SelectItem {
                expr: ExprAst::Int(1),
                alias: None,
            });
        } else {
            loop {
                let expr = self.expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem { expr, alias });
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        self.expect_kw("from")?;
        let mut from = Vec::new();
        loop {
            from.push(self.from_item()?);
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
        })
    }

    // Named after the grammar production, not a conversion.
    #[allow(clippy::wrong_self_convention)]
    fn from_item(&mut self) -> Result<FromItem> {
        let base = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            let kind = if self.at_kw("join") || self.at_kw("inner") {
                self.eat_kw("inner");
                self.expect_kw("join")?;
                AstJoinKind::Inner
            } else if self.at_kw("left") {
                self.eat_kw("left");
                self.eat_kw("outer");
                self.expect_kw("join")?;
                AstJoinKind::Left
            } else {
                break;
            };
            let relation = self.table_ref()?;
            self.expect_kw("on")?;
            let on = self.expr()?;
            joins.push(ExplicitJoin { relation, kind, on });
        }
        Ok(FromItem { base, joins })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        if self.eat_sym(Sym::LParen) {
            let query = self.query()?;
            self.expect_sym(Sym::RParen)?;
            self.eat_kw("as");
            let alias = self.ident()?;
            return Ok(TableRef::Derived {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.ident()?;
        // An alias is a bare identifier that isn't a clause keyword.
        const CLAUSE_KWS: [&str; 14] = [
            "where", "group", "having", "order", "limit", "on", "join", "inner", "left", "right",
            "full", "as", "union", "cross",
        ];
        let alias = match self.peek() {
            Some(Token::Ident(s)) if !CLAUSE_KWS.iter().any(|k| s.eq_ignore_ascii_case(k)) => {
                Some(self.ident()?)
            }
            _ => {
                if self.eat_kw("as") {
                    Some(self.ident()?)
                } else {
                    None
                }
            }
        };
        Ok(TableRef::Table { name, alias })
    }

    // -- expressions (precedence climbing) -----------------------------------

    fn expr(&mut self) -> Result<ExprAst> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<ExprAst> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = ExprAst::Binary {
                op: AstBinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<ExprAst> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = ExprAst::Binary {
                op: AstBinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<ExprAst> {
        if self.at_kw("not") && !self.peek_is_not_exists() {
            self.pos += 1;
            return Ok(ExprAst::Not(Box::new(self.not_expr()?)));
        }
        self.predicate()
    }

    /// `NOT EXISTS` is handled in `predicate` (primary), not as generic NOT.
    fn peek_is_not_exists(&self) -> bool {
        self.at_kw("not")
            && self
                .tokens
                .get(self.pos + 1)
                .map(|t| t.is_kw("exists"))
                .unwrap_or(false)
    }

    fn predicate(&mut self) -> Result<ExprAst> {
        if self.peek_is_not_exists() {
            self.pos += 2;
            self.expect_sym(Sym::LParen)?;
            let q = self.query()?;
            self.expect_sym(Sym::RParen)?;
            return Ok(ExprAst::Exists {
                query: Box::new(q),
                negated: true,
            });
        }
        if self.eat_kw("exists") {
            self.expect_sym(Sym::LParen)?;
            let q = self.query()?;
            self.expect_sym(Sym::RParen)?;
            return Ok(ExprAst::Exists {
                query: Box::new(q),
                negated: false,
            });
        }

        let left = self.additive()?;

        // Postfix predicate forms.
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(ExprAst::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = {
            // `x NOT BETWEEN/LIKE/IN ...`
            if self.at_kw("not")
                && self
                    .tokens
                    .get(self.pos + 1)
                    .map(|t| t.is_kw("between") || t.is_kw("like") || t.is_kw("in"))
                    .unwrap_or(false)
            {
                self.pos += 1;
                true
            } else {
                false
            }
        };
        if self.eat_kw("between") {
            let low = self.additive()?;
            self.expect_kw("and")?;
            let high = self.additive()?;
            return Ok(ExprAst::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("like") {
            match self.next() {
                Some(Token::Str(p)) => {
                    return Ok(ExprAst::Like {
                        expr: Box::new(left),
                        pattern: p.clone(),
                        negated,
                    })
                }
                other => {
                    return Err(SqlError::Parse(format!(
                        "LIKE requires a string pattern, found {other:?}"
                    )))
                }
            }
        }
        if self.eat_kw("in") {
            self.expect_sym(Sym::LParen)?;
            if self.at_kw("select") || self.at_kw("with") {
                let q = self.query()?;
                self.expect_sym(Sym::RParen)?;
                return Ok(ExprAst::InSubquery {
                    expr: Box::new(left),
                    query: Box::new(q),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RParen)?;
            return Ok(ExprAst::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if negated {
            return Err(SqlError::Parse("dangling NOT".into()));
        }

        // Comparison operators.
        let op = match self.peek() {
            Some(Token::Symbol(Sym::Eq)) => Some(AstBinOp::Eq),
            Some(Token::Symbol(Sym::NotEq)) => Some(AstBinOp::Ne),
            Some(Token::Symbol(Sym::Lt)) => Some(AstBinOp::Lt),
            Some(Token::Symbol(Sym::LtEq)) => Some(AstBinOp::Le),
            Some(Token::Symbol(Sym::Gt)) => Some(AstBinOp::Gt),
            Some(Token::Symbol(Sym::GtEq)) => Some(AstBinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(ExprAst::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<ExprAst> {
        let mut left = self.multiplicative()?;
        loop {
            let op = if self.eat_sym(Sym::Plus) {
                AstBinOp::Add
            } else if self.eat_sym(Sym::Minus) {
                AstBinOp::Sub
            } else {
                break;
            };
            let right = self.multiplicative()?;
            left = ExprAst::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<ExprAst> {
        let mut left = self.unary()?;
        loop {
            let op = if self.eat_sym(Sym::Star) {
                AstBinOp::Mul
            } else if self.eat_sym(Sym::Slash) {
                AstBinOp::Div
            } else if self.eat_sym(Sym::Percent) {
                AstBinOp::Mod
            } else {
                break;
            };
            let right = self.unary()?;
            left = ExprAst::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<ExprAst> {
        if self.eat_sym(Sym::Minus) {
            return Ok(ExprAst::Neg(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<ExprAst> {
        match self.peek().cloned() {
            Some(Token::Int(v)) => {
                self.pos += 1;
                Ok(ExprAst::Int(v))
            }
            Some(Token::Float(v)) => {
                self.pos += 1;
                Ok(ExprAst::Float(v))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(ExprAst::Str(s))
            }
            Some(Token::Symbol(Sym::LParen)) => {
                self.pos += 1;
                if self.at_kw("select") || self.at_kw("with") {
                    let q = self.query()?;
                    self.expect_sym(Sym::RParen)?;
                    return Ok(ExprAst::ScalarSubquery(Box::new(q)));
                }
                let e = self.expr()?;
                self.expect_sym(Sym::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(id)) => {
                // keyword-led forms
                if id.eq_ignore_ascii_case("date") {
                    self.pos += 1;
                    match self.next() {
                        Some(Token::Str(s)) => return Ok(ExprAst::Date(s.clone())),
                        other => {
                            return Err(SqlError::Parse(format!(
                                "DATE requires a string literal, found {other:?}"
                            )))
                        }
                    }
                }
                if id.eq_ignore_ascii_case("interval") {
                    self.pos += 1;
                    let value = match self.next() {
                        Some(Token::Str(s)) => s
                            .trim()
                            .parse::<i64>()
                            .map_err(|e| SqlError::Parse(format!("bad interval value: {e}")))?,
                        other => {
                            return Err(SqlError::Parse(format!(
                                "INTERVAL requires a quoted count, found {other:?}"
                            )))
                        }
                    };
                    let unit_word = self.ident()?.to_ascii_lowercase();
                    let unit = match unit_word.trim_end_matches('s') {
                        "day" => IntervalUnit::Day,
                        "month" => IntervalUnit::Month,
                        "year" => IntervalUnit::Year,
                        other => {
                            return Err(SqlError::Parse(format!(
                                "unsupported interval unit {other}"
                            )))
                        }
                    };
                    return Ok(ExprAst::Interval { value, unit });
                }
                if id.eq_ignore_ascii_case("case") {
                    self.pos += 1;
                    let mut branches = Vec::new();
                    while self.eat_kw("when") {
                        let cond = self.expr()?;
                        self.expect_kw("then")?;
                        let val = self.expr()?;
                        branches.push((cond, val));
                    }
                    let otherwise = if self.eat_kw("else") {
                        Some(Box::new(self.expr()?))
                    } else {
                        None
                    };
                    self.expect_kw("end")?;
                    return Ok(ExprAst::Case {
                        branches,
                        otherwise,
                    });
                }
                if id.eq_ignore_ascii_case("extract") {
                    self.pos += 1;
                    self.expect_sym(Sym::LParen)?;
                    self.expect_kw("year")?;
                    self.expect_kw("from")?;
                    let e = self.expr()?;
                    self.expect_sym(Sym::RParen)?;
                    return Ok(ExprAst::ExtractYear(Box::new(e)));
                }
                if id.eq_ignore_ascii_case("substring") || id.eq_ignore_ascii_case("substr") {
                    self.pos += 1;
                    self.expect_sym(Sym::LParen)?;
                    let e = self.expr()?;
                    // `FROM a FOR b` or `, a, b`
                    let (start, len) = if self.eat_kw("from") {
                        let s = self.int_literal()?;
                        self.expect_kw("for")?;
                        let l = self.int_literal()?;
                        (s, l)
                    } else {
                        self.expect_sym(Sym::Comma)?;
                        let s = self.int_literal()?;
                        self.expect_sym(Sym::Comma)?;
                        let l = self.int_literal()?;
                        (s, l)
                    };
                    self.expect_sym(Sym::RParen)?;
                    return Ok(ExprAst::Substring {
                        expr: Box::new(e),
                        start: start as usize,
                        len: len as usize,
                    });
                }
                // aggregate calls
                let agg = match id.to_ascii_lowercase().as_str() {
                    "count" => Some(AstAggFunc::Count),
                    "sum" => Some(AstAggFunc::Sum),
                    "min" => Some(AstAggFunc::Min),
                    "max" => Some(AstAggFunc::Max),
                    "avg" => Some(AstAggFunc::Avg),
                    _ => None,
                };
                if let Some(func) = agg {
                    if self.tokens.get(self.pos + 1) == Some(&Token::Symbol(Sym::LParen)) {
                        self.pos += 2;
                        if self.eat_sym(Sym::Star) {
                            self.expect_sym(Sym::RParen)?;
                            return Ok(ExprAst::Agg {
                                func,
                                arg: None,
                                distinct: false,
                            });
                        }
                        let distinct = self.eat_kw("distinct");
                        let arg = self.expr()?;
                        self.expect_sym(Sym::RParen)?;
                        return Ok(ExprAst::Agg {
                            func,
                            arg: Some(Box::new(arg)),
                            distinct,
                        });
                    }
                }
                // plain (possibly qualified) identifier
                self.pos += 1;
                let mut parts = vec![id];
                while self.eat_sym(Sym::Dot) {
                    parts.push(self.ident()?);
                }
                Ok(ExprAst::Ident(parts))
            }
            other => Err(SqlError::Parse(format!("unexpected token {other:?}"))),
        }
    }

    fn int_literal(&mut self) -> Result<i64> {
        match self.next() {
            Some(Token::Int(v)) => Ok(*v),
            other => Err(SqlError::Parse(format!(
                "expected integer, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse(sql: &str) -> Query {
        parse_query(&tokenize(sql).unwrap()).unwrap()
    }

    #[test]
    fn simple_select() {
        let q = parse("select a, b as bee from t where a > 1 order by bee desc limit 5");
        assert_eq!(q.select.items.len(), 2);
        assert_eq!(q.select.items[1].alias.as_deref(), Some("bee"));
        assert!(q.select.where_clause.is_some());
        assert_eq!(q.order_by.len(), 1);
        assert!(!q.order_by[0].ascending);
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn aggregates_and_group_by() {
        let q = parse(
            "select g, sum(v), count(*), count(distinct v), avg(v) from t group by g having sum(v) > 10",
        );
        assert_eq!(q.select.group_by.len(), 1);
        assert!(q.select.having.is_some());
        assert!(matches!(
            q.select.items[3].expr,
            ExprAst::Agg {
                func: AstAggFunc::Count,
                distinct: true,
                ..
            }
        ));
    }

    #[test]
    fn comma_joins_and_aliases() {
        let q = parse("select x from nation n1, nation n2, region where n1.a = n2.a");
        assert_eq!(q.select.from.len(), 3);
        assert_eq!(q.select.from[0].base.binding_name(), "n1");
        assert_eq!(q.select.from[2].base.binding_name(), "region");
    }

    #[test]
    fn explicit_left_join() {
        let q = parse(
            "select c from customer left outer join orders on c_custkey = o_custkey and o_comment not like '%x%'",
        );
        let joins = &q.select.from[0].joins;
        assert_eq!(joins.len(), 1);
        assert_eq!(joins[0].kind, AstJoinKind::Left);
    }

    #[test]
    fn date_interval_between() {
        let q = parse(
            "select x from t where d >= date '1994-01-01' and d < date '1994-01-01' + interval '1' year and v between 0.05 and 0.07",
        );
        let w = q.select.where_clause.unwrap();
        // Just check it parsed into a conjunction of three predicates.
        let mut count = 0;
        fn conjuncts(e: &ExprAst, n: &mut usize) {
            if let ExprAst::Binary {
                op: AstBinOp::And,
                left,
                right,
            } = e
            {
                conjuncts(left, n);
                conjuncts(right, n);
            } else {
                *n += 1;
            }
        }
        conjuncts(&w, &mut count);
        assert_eq!(count, 3);
    }

    #[test]
    fn subqueries() {
        let q = parse(
            "select x from t where exists (select * from u where u.k = t.k) and y in (select z from v) and p > (select avg(p) from t)",
        );
        let w = q.select.where_clause.unwrap();
        let rendered = format!("{w:?}");
        assert!(rendered.contains("Exists"));
        assert!(rendered.contains("InSubquery"));
        assert!(rendered.contains("ScalarSubquery"));
    }

    #[test]
    fn not_exists_and_not_in() {
        let q = parse(
            "select x from t where not exists (select * from u) and c not in ('a', 'b') and s not like 'x%'",
        );
        let rendered = format!("{:?}", q.select.where_clause.unwrap());
        assert!(rendered.contains("Exists { query"));
        assert!(rendered.contains("negated: true"));
    }

    #[test]
    fn case_extract_substring() {
        let q = parse(
            "select case when a = 1 then x else y end, extract(year from d), substring(p from 1 for 2), substr(p, 3, 4) from t",
        );
        assert_eq!(q.select.items.len(), 4);
        assert!(matches!(q.select.items[1].expr, ExprAst::ExtractYear(_)));
        assert!(matches!(
            q.select.items[2].expr,
            ExprAst::Substring {
                start: 1,
                len: 2,
                ..
            }
        ));
    }

    #[test]
    fn ctes_and_derived_tables() {
        let q = parse(
            "with rev as (select k, sum(v) as total from t group by k) select * from (select k from rev) sub",
        );
        assert_eq!(q.ctes.len(), 1);
        assert!(matches!(q.select.from[0].base, TableRef::Derived { .. }));
    }

    #[test]
    fn parenthesized_or_in_where() {
        let q = parse("select x from t where (a = 1 or b = 2) and c = 3");
        assert!(q.select.where_clause.is_some());
    }

    #[test]
    fn trailing_tokens_rejected() {
        let toks = tokenize("select x from t garbage trailing").unwrap();
        // `garbage` parses as alias of t, `trailing` is left over.
        assert!(parse_query(&toks).is_err());
    }
}
