//! Name resolution, join-graph construction, aggregation planning, and
//! subquery decorrelation.
//!
//! The binder turns the parsed AST into the ordinal-based plan IR. The
//! interesting work is subquery removal, which covers every TPC-H pattern:
//!
//! * `[NOT] EXISTS (…)` with correlated equality and inequality conjuncts →
//!   Semi/Anti join with keys + residual (Q4, Q21, Q22).
//! * `expr [NOT] IN (subquery)` → Semi/Anti join on one key (Q16, Q18, Q20).
//! * Correlated scalar aggregate subqueries → group the subquery by its
//!   correlation keys and `Single`-join (Q2, Q17, Q20-inner).
//! * Uncorrelated scalar subqueries anywhere in a predicate → `Single`
//!   cross join + expression rewrite (Q11 HAVING, Q15, Q22).

use crate::ast::*;
use crate::optimizer::join_order::{JoinOrderer, JoinRelation};
use crate::optimizer::stats::{CatalogStatistics, Statistics};
use crate::{Result, SqlError};
use sirius_columnar::scalar::{date32_add_months, parse_date32};
use sirius_columnar::{Scalar, Schema};
use sirius_plan::expr::{self, factor_or_common, AggExpr, SortExpr};
use sirius_plan::{AggFunc, BinOp, Expr, JoinKind, Rel, UnOp};
use std::collections::HashMap;

/// Ordinals at or above this base refer to the outer query's columns while
/// binding a correlated subquery (`ordinal - OUTER_BASE` indexes the outer
/// schema). Stripped before any plan leaves the binder.
const OUTER_BASE: usize = 1 << 20;

/// Table metadata the binder needs: schemas for name resolution, row counts
/// for join-order heuristics.
#[derive(Debug, Clone, Default)]
pub struct BinderCatalog {
    tables: HashMap<String, (Schema, u64)>,
}

impl BinderCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table with its schema and (estimated) row count.
    pub fn add_table(&mut self, name: impl Into<String>, schema: Schema, rows: u64) {
        self.tables.insert(name.into(), (schema, rows));
    }

    /// Look up a table.
    pub fn get(&self, name: &str) -> Option<&(Schema, u64)> {
        self.tables.get(name)
    }
}

/// Join ordering policy: the DuckDB-quality optimizer orders joins by
/// estimated cardinality; the ClickHouse stand-in keeps FROM order (it
/// "is not optimized for join-heavy workloads", §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinOrderPolicy {
    /// Greedy smallest-first ordering with connectivity preference.
    Optimized,
    /// FROM order, still avoiding cross joins where possible.
    FromOrder,
}

/// Bind a parsed query into a plan using catalog estimates only.
pub fn bind(query: &Query, catalog: &BinderCatalog, policy: JoinOrderPolicy) -> Result<Rel> {
    bind_with_stats(query, catalog, policy, &CatalogStatistics::new(catalog))
}

/// Bind a parsed query into a plan, with join ordering and build-side
/// selection driven by an explicit [`Statistics`] source (e.g. a feedback
/// store serving observed cardinalities for this plan shape).
pub fn bind_with_stats(
    query: &Query,
    catalog: &BinderCatalog,
    policy: JoinOrderPolicy,
    stats: &dyn Statistics,
) -> Result<Rel> {
    let ctx = BindCtx {
        catalog,
        policy,
        stats,
        ctes: HashMap::new(),
    };
    let (plan, _) = bind_query(query, &ctx, None)?;
    Ok(plan)
}

#[derive(Clone)]
struct BindCtx<'a> {
    catalog: &'a BinderCatalog,
    policy: JoinOrderPolicy,
    stats: &'a dyn Statistics,
    ctes: HashMap<String, (Rel, u64)>,
}

/// A bound FROM unit: plan + estimated cardinality.
type Relation = JoinRelation;

fn err(msg: impl Into<String>) -> SqlError {
    SqlError::Bind(msg.into())
}

fn bind_query(query: &Query, ctx: &BindCtx<'_>, outer: Option<&Schema>) -> Result<(Rel, u64)> {
    let mut ctx = ctx.clone();
    for (name, cte) in &query.ctes {
        let (plan, rows) = bind_query(cte, &ctx, None)?;
        // Qualify the CTE's output names with its own name.
        let renamed = rename_output(plan, name)?;
        ctx.ctes.insert(name.clone(), (renamed, rows));
    }
    bind_select_query(query, &ctx, outer)
}

/// Rewrap a plan so its output fields are named `name.suffix`.
fn rename_output(plan: Rel, name: &str) -> Result<Rel> {
    let schema = plan.schema()?;
    let exprs = schema
        .fields
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let suffix = f.name.rsplit('.').next().unwrap_or(&f.name);
            (expr::col(i), format!("{name}.{suffix}"))
        })
        .collect();
    Ok(Rel::Project {
        input: Box::new(plan),
        exprs,
    })
}

fn bind_select_query(
    query: &Query,
    ctx: &BindCtx<'_>,
    outer: Option<&Schema>,
) -> Result<(Rel, u64)> {
    let select = &query.select;

    // ----- FROM: bind each item into a Relation ------------------------------
    let mut relations: Vec<Relation> = Vec::new();
    for item in &select.from {
        relations.push(bind_from_item(item, ctx, outer)?);
    }
    if relations.is_empty() {
        return Err(err("FROM clause required"));
    }

    // Original-order product schema (for classifying WHERE conjuncts).
    let mut orig_offsets = Vec::with_capacity(relations.len());
    let mut product_fields = Vec::new();
    for r in &relations {
        orig_offsets.push(product_fields.len());
        product_fields.extend(r.schema.fields.iter().cloned());
    }
    let orig_product = Schema::new(product_fields);
    let rel_of = |ordinal: usize| -> usize {
        let mut rel = 0;
        for (i, &off) in orig_offsets.iter().enumerate() {
            if ordinal >= off {
                rel = i;
            }
        }
        rel
    };

    // ----- WHERE: classify conjuncts ------------------------------------------
    let mut edge_conjuncts: Vec<(Expr, Vec<usize>)> = Vec::new(); // bound, relation set
    let mut subquery_conjuncts: Vec<&ExprAst> = Vec::new();
    if let Some(w) = &select.where_clause {
        for c in split_and(w) {
            if contains_subquery(c) {
                subquery_conjuncts.push(c);
                continue;
            }
            let bound = factor_or_common(&bind_expr(c, &orig_product, outer)?);
            // Factoring may expose several independent conjuncts (Q19's
            // OR-of-conjunctions hides its join key this way).
            for bound in split_bound_and(&bound) {
                let mut refs = Vec::new();
                bound.referenced_columns(&mut refs);
                if refs.iter().any(|&r| r >= OUTER_BASE) {
                    return Err(err("correlated predicate outside a subquery"));
                }
                let mut rels: Vec<usize> = refs.iter().map(|&r| rel_of(r)).collect();
                rels.sort_unstable();
                rels.dedup();
                match rels.len() {
                    0 | 1 => {
                        // Push into the single relation (constant predicates go
                        // to relation 0).
                        let rel = rels.first().copied().unwrap_or(0);
                        let local = bound.remap_columns(&|i| i - orig_offsets[rel]);
                        let r = &mut relations[rel];
                        r.plan = Rel::Filter {
                            input: Box::new(std::mem::replace(
                                &mut r.plan,
                                Rel::Distinct {
                                    input: Box::new(placeholder()),
                                },
                            )),
                            predicate: local,
                        };
                        r.estimate *= ctx.stats.pushdown_selectivity();
                    }
                    _ => {
                        // Derive implied per-relation filters from multi-table
                        // ORs: `(n1=A AND n2=B) OR (n1=B AND n2=A)` implies
                        // `n1 IN (A,B)` and `n2 IN (A,B)` — pushed down so the
                        // join order sees realistic cardinalities (Q7/Q19).
                        for &rel in &rels {
                            if let Some(implied) =
                                implied_single_relation_filter(&bound, rel, &orig_offsets)
                            {
                                let local = implied.remap_columns(&|i| i - orig_offsets[rel]);
                                let r = &mut relations[rel];
                                r.plan = Rel::Filter {
                                    input: Box::new(std::mem::replace(&mut r.plan, placeholder())),
                                    predicate: local,
                                };
                                r.estimate *= ctx.stats.implied_or_selectivity();
                            }
                        }
                        edge_conjuncts.push((bound, rels));
                    }
                }
            }
        }
    }

    // ----- join-order + tree construction -------------------------------------
    let (mut plan, final_map, mut plan_schema) =
        JoinOrderer::new(ctx.policy, ctx.stats).build(relations, &orig_offsets, edge_conjuncts)?;
    let _ = final_map;

    // ----- subquery conjuncts ---------------------------------------------------
    for c in subquery_conjuncts {
        let (new_plan, new_schema) = apply_subquery_conjunct(plan, plan_schema, c, ctx, outer)?;
        plan = new_plan;
        plan_schema = new_schema;
    }

    // ----- aggregation ----------------------------------------------------------
    let has_aggs = select.items.iter().any(|i| i.expr.contains_aggregate())
        || select
            .having
            .as_ref()
            .map(|h| h.contains_aggregate())
            .unwrap_or(false)
        || !select.group_by.is_empty();

    let (mut plan, out_schema, items_bound): (Rel, Schema, Vec<(Expr, String)>) = if has_aggs {
        let group_bound: Vec<Expr> = select
            .group_by
            .iter()
            .map(|g| bind_expr(g, &plan_schema, outer))
            .collect::<Result<_>>()?;

        // Collect aggregate calls from SELECT, HAVING, ORDER BY.
        let mut agg_calls: Vec<(AggFunc, Option<Expr>)> = Vec::new();
        for i in &select.items {
            collect_aggs(&i.expr, &plan_schema, outer, &mut agg_calls)?;
        }
        if let Some(h) = &select.having {
            if !contains_subquery(h) {
                collect_aggs(h, &plan_schema, outer, &mut agg_calls)?;
            } else {
                for c in split_and(h) {
                    if !contains_subquery(c) {
                        collect_aggs(c, &plan_schema, outer, &mut agg_calls)?;
                    } else {
                        collect_aggs_shallow(c, &plan_schema, outer, &mut agg_calls)?;
                    }
                }
            }
        }
        for o in &query.order_by {
            if o.expr.contains_aggregate() {
                collect_aggs(&o.expr, &plan_schema, outer, &mut agg_calls)?;
            }
        }

        let aggregates: Vec<AggExpr> = agg_calls
            .iter()
            .enumerate()
            .map(|(i, (f, arg))| AggExpr {
                func: *f,
                input: arg.clone(),
                name: format!("agg{i}"),
            })
            .collect();
        let agg_plan = Rel::Aggregate {
            input: Box::new(plan),
            group_by: group_bound.clone(),
            aggregates,
        };
        let agg_schema = agg_plan.schema()?;

        let gctx = GroupCtx {
            product: plan_schema.clone(),
            group_bound: &group_bound,
            agg_calls: &agg_calls,
            outer,
        };

        // HAVING: non-subquery conjuncts filter directly; subquery conjuncts
        // go through the scalar machinery against the aggregate output.
        let mut plan2: Rel = agg_plan;
        let mut schema2 = agg_schema;
        if let Some(h) = &select.having {
            for c in split_and(h) {
                if contains_subquery(c) {
                    let (p, s) = apply_scalar_subqueries_postagg(plan2, schema2, c, ctx, &gctx)?;
                    plan2 = p;
                    schema2 = s;
                } else {
                    let bound = gctx.rewrite(c)?;
                    plan2 = Rel::Filter {
                        input: Box::new(plan2),
                        predicate: bound,
                    };
                }
            }
        }

        // SELECT items over the aggregate output.
        let items: Vec<(Expr, String)> = select
            .items
            .iter()
            .enumerate()
            .map(|(i, it)| {
                let e = gctx.rewrite(&it.expr)?;
                Ok((e, output_name(it, i)))
            })
            .collect::<Result<_>>()?;
        let proj = Rel::Project {
            input: Box::new(plan2),
            exprs: items.clone(),
        };
        let out_schema = proj.schema()?;
        (proj, out_schema, items)
    } else {
        let items: Vec<(Expr, String)> = select
            .items
            .iter()
            .enumerate()
            .map(|(i, it)| {
                let e = bind_expr(&it.expr, &plan_schema, outer)?;
                Ok((e, output_name(it, i)))
            })
            .collect::<Result<_>>()?;
        let proj = Rel::Project {
            input: Box::new(plan),
            exprs: items.clone(),
        };
        let out_schema = proj.schema()?;
        (proj, out_schema, items)
    };

    if select.distinct {
        plan = Rel::Distinct {
            input: Box::new(plan),
        };
    }

    // ----- ORDER BY / LIMIT ------------------------------------------------------
    if !query.order_by.is_empty() {
        let keys: Vec<SortExpr> = query
            .order_by
            .iter()
            .map(|o| {
                let e = bind_order_key(&o.expr, &out_schema, &select.items, &items_bound)?;
                Ok(SortExpr {
                    expr: e,
                    ascending: o.ascending,
                })
            })
            .collect::<Result<_>>()?;
        plan = Rel::Sort {
            input: Box::new(plan),
            keys,
        };
    }
    if let Some(limit) = query.limit {
        plan = Rel::Limit {
            input: Box::new(plan),
            offset: 0,
            fetch: Some(limit),
        };
    }

    Ok((plan, 1000))
}

fn placeholder() -> Rel {
    Rel::Read {
        table: String::new(),
        schema: Schema::empty(),
        projection: None,
    }
}

fn output_name(item: &SelectItem, index: usize) -> String {
    if let Some(a) = &item.alias {
        return a.clone();
    }
    if let ExprAst::Ident(parts) = &item.expr {
        return parts
            .last()
            .cloned()
            .unwrap_or_else(|| format!("col{index}"));
    }
    format!("col{index}")
}

/// Bind one ORDER BY key against the projected output (alias/name first,
/// then structural match against the select items).
fn bind_order_key(
    ast: &ExprAst,
    out_schema: &Schema,
    items: &[SelectItem],
    items_bound: &[(Expr, String)],
) -> Result<Expr> {
    if let ExprAst::Ident(parts) = ast {
        let name = parts.join(".");
        if let Some(i) = out_schema.index_of(&name) {
            return Ok(expr::col(i));
        }
    }
    for (i, it) in items.iter().enumerate() {
        if &it.expr == ast {
            return Ok(expr::col(i));
        }
    }
    let _ = items_bound;
    Err(err(format!("ORDER BY key not found in output: {ast:?}")))
}

// ---------------------------------------------------------------------------
// FROM binding
// ---------------------------------------------------------------------------

fn bind_from_item(item: &FromItem, ctx: &BindCtx<'_>, outer: Option<&Schema>) -> Result<Relation> {
    let mut rel = bind_table_ref(&item.base, ctx)?;
    for j in &item.joins {
        let right = bind_table_ref(&j.relation, ctx)?;
        let combined = rel.schema.join(&right.schema);
        let on = bind_expr(&j.on, &combined, outer)?;
        let lw = rel.schema.len();
        let (mut lk, mut rk, mut residual) = (Vec::new(), Vec::new(), Vec::new());
        for c in split_bound_and(&on) {
            if let Expr::Binary {
                op: BinOp::Eq,
                left,
                right: r,
            } = &c
            {
                let side = |e: &Expr| -> Option<bool> {
                    let mut refs = Vec::new();
                    e.referenced_columns(&mut refs);
                    if refs.is_empty() {
                        return None;
                    }
                    if refs.iter().all(|&x| x < lw) {
                        Some(true)
                    } else if refs.iter().all(|&x| x >= lw) {
                        Some(false)
                    } else {
                        None
                    }
                };
                match (side(left), side(r)) {
                    (Some(true), Some(false)) => {
                        lk.push((**left).clone());
                        rk.push(r.remap_columns(&|i| i - lw));
                        continue;
                    }
                    (Some(false), Some(true)) => {
                        lk.push((**r).clone());
                        rk.push(left.remap_columns(&|i| i - lw));
                        continue;
                    }
                    _ => {}
                }
            }
            residual.push(c);
        }
        let kind = match j.kind {
            AstJoinKind::Inner => JoinKind::Inner,
            AstJoinKind::Left => JoinKind::Left,
        };
        if lk.is_empty() {
            return Err(err(
                "explicit JOIN requires at least one equality condition",
            ));
        }
        let estimate = rel.estimate.max(right.estimate);
        rel = Relation {
            plan: Rel::Join {
                left: Box::new(rel.plan),
                right: Box::new(right.plan),
                kind,
                left_keys: lk,
                right_keys: rk,
                residual: if residual.is_empty() {
                    None
                } else {
                    Some(expr::and_all(residual))
                },
            },
            schema: combined,
            estimate,
        };
    }
    Ok(rel)
}

fn bind_table_ref(t: &TableRef, ctx: &BindCtx<'_>) -> Result<Relation> {
    match t {
        TableRef::Table { name, alias } => {
            let binding = alias.as_deref().unwrap_or(name);
            if let Some((plan, rows)) = ctx.ctes.get(name) {
                let renamed = rename_output(plan.clone(), binding)?;
                let schema = renamed.schema()?;
                return Ok(Relation {
                    plan: renamed,
                    schema,
                    estimate: *rows as f64,
                });
            }
            let (schema, rows) = ctx
                .catalog
                .get(name)
                .ok_or_else(|| err(format!("unknown table {name}")))?;
            let qualified = Schema::new(
                schema
                    .fields
                    .iter()
                    .map(|f| f.renamed(format!("{binding}.{}", f.name)))
                    .collect(),
            );
            let estimate = ctx.stats.base_rows(name).unwrap_or(*rows as f64);
            Ok(Relation {
                plan: Rel::Read {
                    table: name.clone(),
                    schema: qualified.clone(),
                    projection: None,
                },
                schema: qualified,
                estimate,
            })
        }
        TableRef::Derived { query, alias } => {
            let (plan, rows) = bind_query(query, ctx, None)?;
            let renamed = rename_output(plan, alias)?;
            let schema = renamed.schema()?;
            Ok(Relation {
                plan: renamed,
                schema,
                estimate: rows as f64,
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Expression binding
// ---------------------------------------------------------------------------

/// If `bound` is an OR whose every disjunct contains at least one conjunct
/// referencing only `rel`, return the implied single-relation predicate
/// (the OR of those per-disjunct conjuncts). Ordinals stay in product space.
fn implied_single_relation_filter(
    bound: &Expr,
    rel: usize,
    orig_offsets: &[usize],
) -> Option<Expr> {
    let disjuncts = expr::split_disjunction(bound);
    if disjuncts.len() < 2 {
        return None;
    }
    let in_rel = |e: &Expr| {
        let mut refs = Vec::new();
        e.referenced_columns(&mut refs);
        let lo = orig_offsets[rel];
        let hi = orig_offsets.get(rel + 1).copied().unwrap_or(usize::MAX);
        !refs.is_empty() && refs.iter().all(|&r| r >= lo && r < hi)
    };
    let mut branch_filters = Vec::with_capacity(disjuncts.len());
    for d in disjuncts {
        let own: Vec<Expr> = expr::split_conjunction(d)
            .into_iter()
            .filter(|c| in_rel(c))
            .cloned()
            .collect();
        if own.is_empty() {
            return None; // one branch gives no constraint ⇒ nothing implied
        }
        branch_filters.push(expr::and_all(own));
    }
    branch_filters.into_iter().reduce(expr::or)
}

fn split_and(e: &ExprAst) -> Vec<&ExprAst> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a ExprAst, out: &mut Vec<&'a ExprAst>) {
        if let ExprAst::Binary {
            op: AstBinOp::And,
            left,
            right,
        } = e
        {
            walk(left, out);
            walk(right, out);
        } else {
            out.push(e);
        }
    }
    walk(e, &mut out);
    out
}

fn split_bound_and(e: &Expr) -> Vec<Expr> {
    expr::split_conjunction(e).into_iter().cloned().collect()
}

/// True if the AST contains any subquery node.
pub fn contains_subquery(e: &ExprAst) -> bool {
    match e {
        ExprAst::Exists { .. } | ExprAst::InSubquery { .. } | ExprAst::ScalarSubquery(_) => true,
        ExprAst::Binary { left, right, .. } => contains_subquery(left) || contains_subquery(right),
        ExprAst::Not(x) | ExprAst::Neg(x) | ExprAst::ExtractYear(x) => contains_subquery(x),
        ExprAst::IsNull { expr, .. }
        | ExprAst::Like { expr, .. }
        | ExprAst::Substring { expr, .. } => contains_subquery(expr),
        ExprAst::Between {
            expr, low, high, ..
        } => contains_subquery(expr) || contains_subquery(low) || contains_subquery(high),
        ExprAst::InList { expr, list, .. } => {
            contains_subquery(expr) || list.iter().any(contains_subquery)
        }
        ExprAst::Case {
            branches,
            otherwise,
        } => {
            branches
                .iter()
                .any(|(c, v)| contains_subquery(c) || contains_subquery(v))
                || otherwise
                    .as_ref()
                    .map(|o| contains_subquery(o))
                    .unwrap_or(false)
        }
        ExprAst::Agg { arg, .. } => arg.as_ref().map(|a| contains_subquery(a)).unwrap_or(false),
        _ => false,
    }
}

fn ast_to_literal(e: &ExprAst) -> Option<Scalar> {
    match e {
        ExprAst::Int(v) => Some(Scalar::Int64(*v)),
        ExprAst::Float(v) => Some(Scalar::Float64(*v)),
        ExprAst::Str(s) => Some(Scalar::Utf8(s.clone())),
        ExprAst::Date(s) => parse_date32(s).map(Scalar::Date32),
        ExprAst::Neg(inner) => match ast_to_literal(inner)? {
            Scalar::Int64(v) => Some(Scalar::Int64(-v)),
            Scalar::Float64(v) => Some(Scalar::Float64(-v)),
            _ => None,
        },
        _ => None,
    }
}

/// Fold `date ± interval` with literal operands.
fn fold_date_interval(op: AstBinOp, l: &ExprAst, r: &ExprAst) -> Option<Scalar> {
    let (date_ast, interval_ast, sign) = match (l, r, op) {
        (d, ExprAst::Interval { .. }, AstBinOp::Add) => (d, r, 1),
        (d, ExprAst::Interval { .. }, AstBinOp::Sub) => (d, r, -1),
        (ExprAst::Interval { .. }, d, AstBinOp::Add) => (d, l, 1),
        _ => return None,
    };
    let base = match ast_to_literal(date_ast)? {
        Scalar::Date32(d) => d,
        _ => return None,
    };
    if let ExprAst::Interval { value, unit } = interval_ast {
        let v = *value * sign;
        let out = match unit {
            IntervalUnit::Day => base + v as i32,
            IntervalUnit::Month => date32_add_months(base, v as i32),
            IntervalUnit::Year => date32_add_months(base, (v * 12) as i32),
        };
        return Some(Scalar::Date32(out));
    }
    None
}

/// Bind a subquery-free AST expression against `schema`, resolving
/// unmatched names against `outer` (marked with [`OUTER_BASE`]).
fn bind_expr(ast: &ExprAst, schema: &Schema, outer: Option<&Schema>) -> Result<Expr> {
    Ok(match ast {
        ExprAst::Ident(parts) => {
            let name = parts.join(".");
            if let Some(i) = schema.index_of(&name) {
                expr::col(i)
            } else if let Some(oi) = outer.and_then(|o| o.index_of(&name)) {
                expr::col(OUTER_BASE + oi)
            } else {
                return Err(err(format!("unknown column {name}")));
            }
        }
        ExprAst::Int(v) => expr::lit(Scalar::Int64(*v)),
        ExprAst::Float(v) => expr::lit(Scalar::Float64(*v)),
        ExprAst::Str(s) => expr::lit(Scalar::Utf8(s.clone())),
        ExprAst::Date(s) => expr::lit(Scalar::Date32(
            parse_date32(s).ok_or_else(|| err(format!("bad date literal {s}")))?,
        )),
        ExprAst::Interval { .. } => return Err(err("interval literal outside date arithmetic")),
        ExprAst::Binary { op, left, right } => {
            if let Some(folded) = fold_date_interval(*op, left, right) {
                return Ok(expr::lit(folded));
            }
            let l = bind_expr(left, schema, outer)?;
            let r = bind_expr(right, schema, outer)?;
            let op = match op {
                AstBinOp::Add => BinOp::Add,
                AstBinOp::Sub => BinOp::Sub,
                AstBinOp::Mul => BinOp::Mul,
                AstBinOp::Div => BinOp::Div,
                AstBinOp::Mod => BinOp::Mod,
                AstBinOp::Eq => BinOp::Eq,
                AstBinOp::Ne => BinOp::Ne,
                AstBinOp::Lt => BinOp::Lt,
                AstBinOp::Le => BinOp::Le,
                AstBinOp::Gt => BinOp::Gt,
                AstBinOp::Ge => BinOp::Ge,
                AstBinOp::And => BinOp::And,
                AstBinOp::Or => BinOp::Or,
            };
            Expr::Binary {
                op,
                left: Box::new(l),
                right: Box::new(r),
            }
        }
        ExprAst::Not(x) => Expr::Unary {
            op: UnOp::Not,
            input: Box::new(bind_expr(x, schema, outer)?),
        },
        ExprAst::Neg(x) => {
            if let Some(lit) = ast_to_literal(ast) {
                expr::lit(lit)
            } else {
                Expr::Unary {
                    op: UnOp::Neg,
                    input: Box::new(bind_expr(x, schema, outer)?),
                }
            }
        }
        ExprAst::IsNull { expr: x, negated } => Expr::Unary {
            op: if *negated {
                UnOp::IsNotNull
            } else {
                UnOp::IsNull
            },
            input: Box::new(bind_expr(x, schema, outer)?),
        },
        ExprAst::Between {
            expr: x,
            low,
            high,
            negated,
        } => {
            let e = bind_expr(x, schema, outer)?;
            let lo = bind_expr(low, schema, outer)?;
            let hi = bind_expr(high, schema, outer)?;
            let both = expr::and(expr::ge(e.clone(), lo), expr::le(e, hi));
            if *negated {
                Expr::Unary {
                    op: UnOp::Not,
                    input: Box::new(both),
                }
            } else {
                both
            }
        }
        ExprAst::Like {
            expr: x,
            pattern,
            negated,
        } => Expr::Like {
            input: Box::new(bind_expr(x, schema, outer)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        ExprAst::InList {
            expr: x,
            list,
            negated,
        } => {
            let scalars: Vec<Scalar> = list
                .iter()
                .map(|e| ast_to_literal(e).ok_or_else(|| err("IN list requires literal values")))
                .collect::<Result<_>>()?;
            Expr::InList {
                input: Box::new(bind_expr(x, schema, outer)?),
                list: scalars,
                negated: *negated,
            }
        }
        ExprAst::Case {
            branches,
            otherwise,
        } => Expr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| Ok((bind_expr(c, schema, outer)?, bind_expr(v, schema, outer)?)))
                .collect::<Result<_>>()?,
            otherwise: otherwise
                .as_ref()
                .map(|o| Ok::<_, SqlError>(Box::new(bind_expr(o, schema, outer)?)))
                .transpose()?,
        },
        ExprAst::ExtractYear(x) => Expr::Unary {
            op: UnOp::ExtractYear,
            input: Box::new(bind_expr(x, schema, outer)?),
        },
        ExprAst::Substring {
            expr: x,
            start,
            len,
        } => Expr::Substring {
            input: Box::new(bind_expr(x, schema, outer)?),
            start: *start,
            len: *len,
        },
        ExprAst::Agg { .. } => return Err(err("aggregate in a non-aggregate context")),
        ExprAst::Exists { .. } | ExprAst::InSubquery { .. } | ExprAst::ScalarSubquery(_) => {
            return Err(err("internal: subquery reached bind_expr"))
        }
    })
}

fn collect_aggs(
    ast: &ExprAst,
    schema: &Schema,
    outer: Option<&Schema>,
    out: &mut Vec<(AggFunc, Option<Expr>)>,
) -> Result<()> {
    match ast {
        ExprAst::Agg {
            func,
            arg,
            distinct,
        } => {
            let f = match (func, distinct) {
                (AstAggFunc::Count, false) => {
                    if arg.is_some() {
                        AggFunc::Count
                    } else {
                        AggFunc::CountStar
                    }
                }
                (AstAggFunc::Count, true) => AggFunc::CountDistinct,
                (AstAggFunc::Sum, _) => AggFunc::Sum,
                (AstAggFunc::Min, _) => AggFunc::Min,
                (AstAggFunc::Max, _) => AggFunc::Max,
                (AstAggFunc::Avg, _) => AggFunc::Avg,
            };
            let bound = arg
                .as_ref()
                .map(|a| bind_expr(a, schema, outer))
                .transpose()?;
            if !out.iter().any(|(g, b)| *g == f && *b == bound) {
                out.push((f, bound));
            }
            Ok(())
        }
        ExprAst::Binary { left, right, .. } => {
            collect_aggs(left, schema, outer, out)?;
            collect_aggs(right, schema, outer, out)
        }
        ExprAst::Not(x) | ExprAst::Neg(x) | ExprAst::ExtractYear(x) => {
            collect_aggs(x, schema, outer, out)
        }
        ExprAst::IsNull { expr, .. }
        | ExprAst::Like { expr, .. }
        | ExprAst::Substring { expr, .. } => collect_aggs(expr, schema, outer, out),
        ExprAst::Between {
            expr, low, high, ..
        } => {
            collect_aggs(expr, schema, outer, out)?;
            collect_aggs(low, schema, outer, out)?;
            collect_aggs(high, schema, outer, out)
        }
        ExprAst::InList { expr, .. } => collect_aggs(expr, schema, outer, out),
        ExprAst::Case {
            branches,
            otherwise,
        } => {
            for (c, v) in branches {
                collect_aggs(c, schema, outer, out)?;
                collect_aggs(v, schema, outer, out)?;
            }
            if let Some(o) = otherwise {
                collect_aggs(o, schema, outer, out)?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

/// Like [`collect_aggs`] but skips subquery branches (HAVING conjuncts that
/// mix aggregates with scalar subqueries, e.g. Q11).
fn collect_aggs_shallow(
    ast: &ExprAst,
    schema: &Schema,
    outer: Option<&Schema>,
    out: &mut Vec<(AggFunc, Option<Expr>)>,
) -> Result<()> {
    match ast {
        ExprAst::ScalarSubquery(_) | ExprAst::Exists { .. } | ExprAst::InSubquery { .. } => Ok(()),
        ExprAst::Binary { left, right, .. } => {
            collect_aggs_shallow(left, schema, outer, out)?;
            collect_aggs_shallow(right, schema, outer, out)
        }
        ExprAst::Not(x) | ExprAst::Neg(x) => collect_aggs_shallow(x, schema, outer, out),
        other => collect_aggs(other, schema, outer, out),
    }
}

// ---------------------------------------------------------------------------
// Post-aggregation rewriting
// ---------------------------------------------------------------------------

struct GroupCtx<'a> {
    product: Schema,
    group_bound: &'a [Expr],
    agg_calls: &'a [(AggFunc, Option<Expr>)],
    outer: Option<&'a Schema>,
}

impl GroupCtx<'_> {
    /// Rewrite a SELECT/HAVING/ORDER BY expression into an expression over
    /// the aggregate output schema (group keys, then aggregates).
    fn rewrite(&self, ast: &ExprAst) -> Result<Expr> {
        // Aggregate call → aggregate output column.
        if let ExprAst::Agg { .. } = ast {
            let mut calls = Vec::new();
            collect_aggs(ast, &self.product, self.outer, &mut calls)?;
            let (f, b) = calls.into_iter().next().ok_or_else(|| err("empty agg"))?;
            let idx = self
                .agg_calls
                .iter()
                .position(|(g, a)| *g == f && *a == b)
                .ok_or_else(|| err("aggregate not collected"))?;
            return Ok(expr::col(self.group_bound.len() + idx));
        }
        // Whole expression equals a group key → key column.
        if !ast.contains_aggregate() {
            if let Ok(bound) = bind_expr(ast, &self.product, self.outer) {
                if let Some(i) = self.group_bound.iter().position(|g| *g == bound) {
                    return Ok(expr::col(i));
                }
                if let Expr::Literal(s) = bound {
                    return Ok(expr::lit(s));
                }
            }
        }
        // Otherwise rebuild structurally.
        Ok(match ast {
            ExprAst::Binary { op, left, right } => {
                let l = self.rewrite(left)?;
                let r = self.rewrite(right)?;
                let ast2 = ExprAst::Binary {
                    op: *op,
                    left: Box::new(ExprAst::Int(0)),
                    right: Box::new(ExprAst::Int(0)),
                };
                match bind_expr(&ast2, &Schema::empty(), None)? {
                    Expr::Binary { op, .. } => Expr::Binary {
                        op,
                        left: Box::new(l),
                        right: Box::new(r),
                    },
                    _ => unreachable!("binary binds to binary"),
                }
            }
            ExprAst::Not(x) => Expr::Unary {
                op: UnOp::Not,
                input: Box::new(self.rewrite(x)?),
            },
            ExprAst::Neg(x) => Expr::Unary {
                op: UnOp::Neg,
                input: Box::new(self.rewrite(x)?),
            },
            ExprAst::Case {
                branches,
                otherwise,
            } => Expr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| Ok((self.rewrite(c)?, self.rewrite(v)?)))
                    .collect::<Result<_>>()?,
                otherwise: otherwise
                    .as_ref()
                    .map(|o| Ok::<_, SqlError>(Box::new(self.rewrite(o)?)))
                    .transpose()?,
            },
            other => {
                return Err(err(format!(
                    "expression must appear in GROUP BY or be an aggregate: {other:?}"
                )))
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Subquery decorrelation
// ---------------------------------------------------------------------------

/// Apply one WHERE conjunct containing subqueries to `plan`.
fn apply_subquery_conjunct(
    plan: Rel,
    schema: Schema,
    conjunct: &ExprAst,
    ctx: &BindCtx<'_>,
    outer: Option<&Schema>,
) -> Result<(Rel, Schema)> {
    let _ = outer; // TPC-H never nests correlation across two levels here.
    match conjunct {
        ExprAst::Exists { query, negated } => {
            let kind = if *negated {
                JoinKind::Anti
            } else {
                JoinKind::Semi
            };
            decorrelate_exists(plan, schema, query, kind, ctx)
        }
        ExprAst::InSubquery {
            expr: key,
            query,
            negated,
        } => {
            let kind = if *negated {
                JoinKind::Anti
            } else {
                JoinKind::Semi
            };
            decorrelate_in(plan, schema, key, query, kind, ctx)
        }
        other => {
            // General predicate containing scalar subqueries: join each in,
            // rewrite the predicate, filter, and project the extras away.
            let original_width = schema.len();
            let (plan2, schema2, rewritten) = inline_scalar_subqueries(plan, schema, other, ctx)?;
            let bound = bind_expr(&rewritten, &schema2, None)?;
            let filtered = Rel::Filter {
                input: Box::new(plan2),
                predicate: bound,
            };
            let keep: Vec<(Expr, String)> = (0..original_width)
                .map(|i| (expr::col(i), schema2.fields[i].name.clone()))
                .collect();
            let out = Rel::Project {
                input: Box::new(filtered),
                exprs: keep,
            };
            let out_schema = out.schema()?;
            Ok((out, out_schema))
        }
    }
}

/// Bind an EXISTS subquery body against its own FROM with `outer_schema`
/// correlation, splitting correlated conjuncts into keys/residual.
fn decorrelate_exists(
    plan: Rel,
    schema: Schema,
    sub: &Query,
    kind: JoinKind,
    ctx: &BindCtx<'_>,
) -> Result<(Rel, Schema)> {
    let select = &sub.select;
    if !select.group_by.is_empty() || select.having.is_some() {
        return Err(err("EXISTS subquery with grouping is not supported"));
    }
    // Bind the subquery FROM product.
    let mut relations = Vec::new();
    for item in &select.from {
        relations.push(bind_from_item(item, ctx, Some(&schema))?);
    }
    let mut inner_fields = Vec::new();
    for r in &relations {
        inner_fields.extend(r.schema.fields.iter().cloned());
    }
    let inner_schema = Schema::new(inner_fields);

    // Partition WHERE conjuncts.
    let mut inner_filters: Vec<ExprAst> = Vec::new();
    let mut correlated: Vec<Expr> = Vec::new();
    if let Some(w) = &select.where_clause {
        for c in split_and(w) {
            if contains_subquery(c) {
                return Err(err("nested subquery inside EXISTS is not supported"));
            }
            let bound = bind_expr(c, &inner_schema, Some(&schema))?;
            let mut refs = Vec::new();
            bound.referenced_columns(&mut refs);
            if refs.iter().any(|&r| r >= OUTER_BASE) {
                correlated.push(bound);
            } else {
                inner_filters.push(c.clone());
            }
        }
    }

    // Build the inner plan: FROM product + uncorrelated filters, reusing the
    // main machinery via a synthetic single-relation pipeline.
    let inner_query = Query {
        ctes: vec![],
        select: Select {
            distinct: false,
            items: vec![],
            from: select.from.clone(),
            where_clause: None,
            group_by: vec![],
            having: None,
        },
        order_by: vec![],
        limit: None,
    };
    let _ = inner_query;
    // Simpler: rebuild the product directly.
    let mut relations2 = Vec::new();
    for item in &select.from {
        relations2.push(bind_from_item(item, ctx, None)?);
    }
    let n2 = relations2.len();
    let mut orig_offsets = Vec::new();
    let mut acc = 0;
    for r in &relations2 {
        orig_offsets.push(acc);
        acc += r.schema.len();
    }
    // Inner local predicates + join edges from the uncorrelated conjuncts.
    let mut edges = Vec::new();
    for c in &inner_filters {
        let bound = bind_expr(c, &inner_schema, None)?;
        let mut refs = Vec::new();
        bound.referenced_columns(&mut refs);
        let mut rels: Vec<usize> = refs
            .iter()
            .map(|&r| {
                let mut rel = 0;
                for (i, &off) in orig_offsets.iter().enumerate() {
                    if r >= off {
                        rel = i;
                    }
                }
                rel
            })
            .collect();
        rels.sort_unstable();
        rels.dedup();
        if rels.len() <= 1 {
            let rel = rels.first().copied().unwrap_or(0);
            let local = bound.remap_columns(&|i| i - orig_offsets[rel]);
            let r = &mut relations2[rel];
            r.plan = Rel::Filter {
                input: Box::new(std::mem::replace(&mut r.plan, placeholder())),
                predicate: local,
            };
        } else {
            edges.push((bound, rels));
        }
    }
    let _ = n2;
    let (inner_plan, inner_map, _inner_final) =
        JoinOrderer::new(ctx.policy, ctx.stats).build(relations2, &orig_offsets, edges)?;

    // Correlated conjuncts: equality → keys; everything else → residual.
    let outer_width = schema.len();
    let mut lk = Vec::new();
    let mut rk = Vec::new();
    let mut residual = Vec::new();
    for c in correlated {
        if let Expr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } = &c
        {
            let is_outer = |e: &Expr| {
                let mut refs = Vec::new();
                e.referenced_columns(&mut refs);
                !refs.is_empty() && refs.iter().all(|&r| r >= OUTER_BASE)
            };
            let is_inner = |e: &Expr| {
                let mut refs = Vec::new();
                e.referenced_columns(&mut refs);
                !refs.is_empty() && refs.iter().all(|&r| r < OUTER_BASE)
            };
            if is_outer(left) && is_inner(right) {
                lk.push(left.remap_columns(&|i| i - OUTER_BASE));
                rk.push(right.remap_columns(&|i| inner_map[i]));
                continue;
            }
            if is_inner(left) && is_outer(right) {
                lk.push(right.remap_columns(&|i| i - OUTER_BASE));
                rk.push(left.remap_columns(&|i| inner_map[i]));
                continue;
            }
        }
        // Residual over [outer ++ inner].
        residual.push(c.remap_columns(&|i| {
            if i >= OUTER_BASE {
                i - OUTER_BASE
            } else {
                outer_width + inner_map[i]
            }
        }));
    }
    if lk.is_empty() {
        return Err(err(
            "EXISTS subquery without correlated equality is not supported",
        ));
    }
    let out = Rel::Join {
        left: Box::new(plan),
        right: Box::new(inner_plan),
        kind,
        left_keys: lk,
        right_keys: rk,
        residual: if residual.is_empty() {
            None
        } else {
            Some(expr::and_all(residual))
        },
    };
    Ok((out, schema))
}

/// `expr [NOT] IN (subquery)` → semi/anti join on one key.
fn decorrelate_in(
    plan: Rel,
    schema: Schema,
    key: &ExprAst,
    sub: &Query,
    kind: JoinKind,
    ctx: &BindCtx<'_>,
) -> Result<(Rel, Schema)> {
    let (inner_plan, _) = bind_query(sub, ctx, None)?;
    let inner_schema = inner_plan.schema()?;
    if inner_schema.len() != 1 {
        return Err(err("IN subquery must produce exactly one column"));
    }
    let left_key = bind_expr(key, &schema, None)?;
    let out = Rel::Join {
        left: Box::new(plan),
        right: Box::new(inner_plan),
        kind,
        left_keys: vec![left_key],
        right_keys: vec![expr::col(0)],
        residual: None,
    };
    Ok((out, schema))
}

/// Replace every `ScalarSubquery` in `ast` by a joined column: correlated
/// aggregate subqueries become group-by + `Single` join on the correlation
/// keys; uncorrelated ones become a keyless `Single` (cross) join.
fn inline_scalar_subqueries(
    mut plan: Rel,
    mut schema: Schema,
    ast: &ExprAst,
    ctx: &BindCtx<'_>,
) -> Result<(Rel, Schema, ExprAst)> {
    let rewritten = match ast {
        ExprAst::ScalarSubquery(q) => {
            let (p2, s2, name) = join_scalar_subquery(plan, schema, q, ctx)?;
            plan = p2;
            schema = s2;
            ExprAst::Ident(vec![name])
        }
        ExprAst::Binary { op, left, right } => {
            let (p2, s2, l) = inline_scalar_subqueries(plan, schema, left, ctx)?;
            let (p3, s3, r) = inline_scalar_subqueries(p2, s2, right, ctx)?;
            plan = p3;
            schema = s3;
            ExprAst::Binary {
                op: *op,
                left: Box::new(l),
                right: Box::new(r),
            }
        }
        ExprAst::Not(x) => {
            let (p2, s2, inner) = inline_scalar_subqueries(plan, schema, x, ctx)?;
            plan = p2;
            schema = s2;
            ExprAst::Not(Box::new(inner))
        }
        other => other.clone(),
    };
    Ok((plan, schema, rewritten))
}

/// Join one scalar subquery into the plan; returns the new plan/schema and
/// the name of the column holding the scalar value.
fn join_scalar_subquery(
    plan: Rel,
    schema: Schema,
    sub: &Query,
    ctx: &BindCtx<'_>,
) -> Result<(Rel, Schema, String)> {
    let select = &sub.select;
    let sub_name = format!("__scalar{}", schema.len());

    // Detect correlation: bind the subquery's WHERE conjuncts with the
    // outer schema visible.
    let mut relations = Vec::new();
    for item in &select.from {
        relations.push(bind_from_item(item, ctx, Some(&schema))?);
    }
    let mut inner_fields = Vec::new();
    let mut orig_offsets = Vec::new();
    for r in &relations {
        orig_offsets.push(inner_fields.len());
        inner_fields.extend(r.schema.fields.iter().cloned());
    }
    let inner_schema = Schema::new(inner_fields);

    let mut correlated_eq: Vec<(Expr, Expr)> = Vec::new(); // (outer, inner-bound)
    let mut inner_conjuncts: Vec<&ExprAst> = Vec::new();
    if let Some(w) = &select.where_clause {
        for c in split_and(w) {
            if contains_subquery(c) {
                // Q20's inner subquery nests one more level; handle by
                // treating it as part of the inner query's own binding.
                inner_conjuncts.push(c);
                continue;
            }
            let bound = bind_expr(c, &inner_schema, Some(&schema))?;
            let mut refs = Vec::new();
            bound.referenced_columns(&mut refs);
            if refs.iter().any(|&r| r >= OUTER_BASE) {
                if let Expr::Binary {
                    op: BinOp::Eq,
                    left,
                    right,
                } = &bound
                {
                    let is_outer = |e: &Expr| {
                        let mut v = Vec::new();
                        e.referenced_columns(&mut v);
                        !v.is_empty() && v.iter().all(|&r| r >= OUTER_BASE)
                    };
                    let is_inner = |e: &Expr| {
                        let mut v = Vec::new();
                        e.referenced_columns(&mut v);
                        !v.is_empty() && v.iter().all(|&r| r < OUTER_BASE)
                    };
                    if is_outer(left) && is_inner(right) {
                        correlated_eq
                            .push((left.remap_columns(&|i| i - OUTER_BASE), (**right).clone()));
                        continue;
                    }
                    if is_inner(left) && is_outer(right) {
                        correlated_eq
                            .push((right.remap_columns(&|i| i - OUTER_BASE), (**left).clone()));
                        continue;
                    }
                }
                return Err(err(
                    "only equality correlation is supported in scalar subqueries",
                ));
            }
            inner_conjuncts.push(c);
        }
    }

    // The single output item must be an aggregate expression (TPC-H shape)
    // or, uncorrelated, any single-column query.
    if correlated_eq.is_empty() {
        // Uncorrelated: bind the whole subquery normally and cross-join.
        let (inner_plan, _) = bind_query(sub, ctx, None)?;
        let inner_out = inner_plan.schema()?;
        if inner_out.len() != 1 {
            return Err(err("scalar subquery must produce one column"));
        }
        let renamed = Rel::Project {
            input: Box::new(inner_plan),
            exprs: vec![(expr::col(0), sub_name.clone())],
        };
        let joined = Rel::Join {
            left: Box::new(plan),
            right: Box::new(renamed),
            kind: JoinKind::Single,
            left_keys: vec![],
            right_keys: vec![],
            residual: None,
        };
        let out_schema = joined.schema()?;
        return Ok((joined, out_schema, sub_name));
    }

    // Correlated aggregate: rebuild the subquery with the correlation keys
    // as GROUP BY columns.
    if select.items.len() != 1 || !select.items[0].expr.contains_aggregate() {
        return Err(err("correlated scalar subquery must be a single aggregate"));
    }
    let rewritten_where = conjoin_asts(&inner_conjuncts);
    let inner_key_asts: Vec<ExprAst> = Vec::new();
    let _ = inner_key_asts;
    let grouped_query = Query {
        ctes: vec![],
        select: Select {
            distinct: false,
            items: select.items.clone(),
            from: select.from.clone(),
            where_clause: rewritten_where,
            group_by: vec![],
            having: None,
        },
        order_by: vec![],
        limit: None,
    };
    // Bind the grouped query manually: product + filters, then aggregate
    // grouped by the inner correlation expressions.
    let (mut inner_plan, inner_map, inner_final) = {
        let mut relations2 = Vec::new();
        for item in &grouped_query.select.from {
            relations2.push(bind_from_item(item, ctx, None)?);
        }
        let mut offs = Vec::new();
        let mut acc = 0;
        for r in &relations2 {
            offs.push(acc);
            acc += r.schema.len();
        }
        let mut edges = Vec::new();
        if let Some(w) = &grouped_query.select.where_clause {
            for c in split_and(w) {
                if contains_subquery(c) {
                    return Err(err(
                        "nested subqueries under correlated scalar subqueries are not supported",
                    ));
                }
                let bound = bind_expr(c, &inner_schema, None)?;
                let mut refs = Vec::new();
                bound.referenced_columns(&mut refs);
                let mut rels: Vec<usize> = refs
                    .iter()
                    .map(|&r| {
                        let mut rel = 0;
                        for (i, &off) in offs.iter().enumerate() {
                            if r >= off {
                                rel = i;
                            }
                        }
                        rel
                    })
                    .collect();
                rels.sort_unstable();
                rels.dedup();
                if rels.len() <= 1 {
                    let rel = rels.first().copied().unwrap_or(0);
                    let local = bound.remap_columns(&|i| i - offs[rel]);
                    let r = &mut relations2[rel];
                    r.plan = Rel::Filter {
                        input: Box::new(std::mem::replace(&mut r.plan, placeholder())),
                        predicate: local,
                    };
                } else {
                    edges.push((bound, rels));
                }
            }
        }
        JoinOrderer::new(ctx.policy, ctx.stats).build(relations2, &offs, edges)?
    };
    let _ = inner_final;

    // Group keys: the inner sides of the correlated equalities.
    let group_keys: Vec<Expr> = correlated_eq
        .iter()
        .map(|(_, inner)| inner.remap_columns(&|i| inner_map[i]))
        .collect();
    let mut aggs = Vec::new();
    collect_aggs(&select.items[0].expr, &inner_schema, None, &mut aggs)?;
    let agg_exprs: Vec<AggExpr> = aggs
        .iter()
        .enumerate()
        .map(|(i, (f, arg))| AggExpr {
            func: *f,
            input: arg.as_ref().map(|a| a.remap_columns(&|i| inner_map[i])),
            name: format!("agg{i}"),
        })
        .collect();
    inner_plan = Rel::Aggregate {
        input: Box::new(inner_plan),
        group_by: group_keys.clone(),
        aggregates: agg_exprs,
    };
    // Apply the SELECT item expression on top (e.g. `0.5 * sum(...)`).
    let gctx = GroupCtx {
        product: inner_schema.clone(),
        group_bound: &correlated_eq
            .iter()
            .map(|(_, i)| i.clone())
            .collect::<Vec<_>>(),
        agg_calls: &aggs,
        outer: None,
    };
    let value_expr = gctx.rewrite(&select.items[0].expr)?;
    let mut proj: Vec<(Expr, String)> = (0..group_keys.len())
        .map(|i| (expr::col(i), format!("__key{i}")))
        .collect();
    proj.push((value_expr, sub_name.clone()));
    inner_plan = Rel::Project {
        input: Box::new(inner_plan),
        exprs: proj,
    };

    // Single-join outer × grouped subquery on the correlation keys.
    let left_keys: Vec<Expr> = correlated_eq.iter().map(|(o, _)| o.clone()).collect();
    let right_keys: Vec<Expr> = (0..correlated_eq.len()).map(expr::col).collect();
    let joined = Rel::Join {
        left: Box::new(plan),
        right: Box::new(inner_plan),
        kind: JoinKind::Single,
        left_keys,
        right_keys,
        residual: None,
    };
    let out_schema = joined.schema()?;
    Ok((joined, out_schema, sub_name))
}

fn conjoin_asts(conjuncts: &[&ExprAst]) -> Option<ExprAst> {
    conjuncts
        .iter()
        .map(|c| (*c).clone())
        .reduce(|a, b| ExprAst::Binary {
            op: AstBinOp::And,
            left: Box::new(a),
            right: Box::new(b),
        })
}

/// Apply a HAVING conjunct containing scalar subqueries after aggregation.
fn apply_scalar_subqueries_postagg(
    plan: Rel,
    schema: Schema,
    conjunct: &ExprAst,
    ctx: &BindCtx<'_>,
    gctx: &GroupCtx<'_>,
) -> Result<(Rel, Schema)> {
    let original_width = schema.len();
    let (plan2, schema2, rewritten) = inline_scalar_subqueries(plan, schema, conjunct, ctx)?;
    // Bind: aggregate-bearing parts go through the group context, the
    // joined scalar columns resolve by name against the extended schema.
    let bound = bind_having_mixed(&rewritten, &schema2, gctx)?;
    let filtered = Rel::Filter {
        input: Box::new(plan2),
        predicate: bound,
    };
    let keep: Vec<(Expr, String)> = (0..original_width)
        .map(|i| (expr::col(i), schema2.fields[i].name.clone()))
        .collect();
    let out = Rel::Project {
        input: Box::new(filtered),
        exprs: keep,
    };
    let out_schema = out.schema()?;
    Ok((out, out_schema))
}

/// Bind a post-aggregation predicate that may mix aggregate calls (resolved
/// through the group context) with plain columns of the extended schema
/// (the joined scalar-subquery values).
fn bind_having_mixed(ast: &ExprAst, schema: &Schema, gctx: &GroupCtx<'_>) -> Result<Expr> {
    match ast {
        ExprAst::Agg { .. } => gctx.rewrite(ast),
        ExprAst::Ident(parts) => {
            let name = parts.join(".");
            schema
                .index_of(&name)
                .map(expr::col)
                .ok_or_else(|| err(format!("unknown column {name}")))
        }
        ExprAst::Binary { op, left, right } => {
            let l = bind_having_mixed(left, schema, gctx)?;
            let r = bind_having_mixed(right, schema, gctx)?;
            let tmp = bind_expr(
                &ExprAst::Binary {
                    op: *op,
                    left: Box::new(ExprAst::Int(0)),
                    right: Box::new(ExprAst::Int(0)),
                },
                &Schema::empty(),
                None,
            )?;
            match tmp {
                Expr::Binary { op, .. } => Ok(Expr::Binary {
                    op,
                    left: Box::new(l),
                    right: Box::new(r),
                }),
                _ => unreachable!(),
            }
        }
        ExprAst::Not(x) => Ok(Expr::Unary {
            op: UnOp::Not,
            input: Box::new(bind_having_mixed(x, schema, gctx)?),
        }),
        other => bind_expr(other, schema, None),
    }
}
