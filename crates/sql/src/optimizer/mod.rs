//! Logical optimization passes.
//!
//! The optimizer owns the planning decisions that used to be hard-wired
//! into `bind`:
//!
//! - [`join_order`] — greedy join enumeration and build-side selection,
//!   driven by the [`stats::Statistics`] trait so runtime feedback
//!   (actual cardinalities from a previous run of the same plan shape)
//!   can override catalog estimates.
//! - [`stats`] — the statistics abstraction: catalog row counts +
//!   selectivity constants by default, observed actuals when a feedback
//!   store has seen the shape before.
//!
//! The pass in this module is **projection pruning**: computing the
//! columns each operator actually needs and pushing column selections
//! into `Read` nodes. This is what keeps simulated scan traffic honest —
//! TPC-H tables are wide, and the paper's filter-vs-join time split
//! (Figure 5) depends on engines reading only the referenced columns.

pub mod join_order;
pub mod stats;

use crate::{Result, SqlError};
use sirius_plan::expr::{self, SortExpr};
use sirius_plan::{ExchangeKind, JoinKind, Rel};
use std::collections::{BTreeSet, HashMap};

/// Run all optimization passes.
pub fn optimize(plan: Rel) -> Result<Rel> {
    let width = plan.schema().map_err(SqlError::Plan)?.len();
    let required: BTreeSet<usize> = (0..width).collect();
    let (pruned, mapping) = prune(plan, &required)?;
    // The contract allows the pruned tree to expose extra columns; restore
    // the exact original output if anything moved.
    let identity = (0..width).all(|i| mapping.get(&i) == Some(&i));
    let out_width = pruned.schema().map_err(SqlError::Plan)?.len();
    if identity && out_width == width {
        Ok(pruned)
    } else {
        let schema = pruned.schema().map_err(SqlError::Plan)?;
        let exprs = (0..width)
            .map(|i| {
                let ni = *mapping.get(&i).expect("required column mapped");
                (expr::col(ni), schema.fields[ni].name.clone())
            })
            .collect();
        Ok(Rel::Project {
            input: Box::new(pruned),
            exprs,
        })
    }
}

type Mapping = HashMap<usize, usize>;

fn refs_of(e: &sirius_plan::Expr) -> Vec<usize> {
    let mut v = Vec::new();
    e.referenced_columns(&mut v);
    v
}

/// Prune `rel` so that at least the columns in `required` survive. Returns
/// the new relation and a mapping old-ordinal → new-ordinal covering (at
/// least) every required column.
fn prune(rel: Rel, required: &BTreeSet<usize>) -> Result<(Rel, Mapping)> {
    match rel {
        Rel::Read {
            table,
            schema,
            projection,
        } => {
            // Binder emits projection=None; compose defensively regardless.
            let base: Vec<usize> = match &projection {
                Some(p) => p.clone(),
                None => (0..schema.len()).collect(),
            };
            let keep: Vec<usize> = required.iter().map(|&r| base[r]).collect();
            let mapping: Mapping = required
                .iter()
                .enumerate()
                .map(|(new, &old)| (old, new))
                .collect();
            Ok((
                Rel::Read {
                    table,
                    schema,
                    projection: Some(keep),
                },
                mapping,
            ))
        }
        Rel::Filter { input, predicate } => {
            let mut child_req = required.clone();
            child_req.extend(refs_of(&predicate));
            let (child, map) = prune(*input, &child_req)?;
            let predicate = predicate.remap_columns(&|i| map[&i]);
            Ok((
                Rel::Filter {
                    input: Box::new(child),
                    predicate,
                },
                map,
            ))
        }
        Rel::Project { input, exprs } => {
            let kept: Vec<usize> = required.iter().copied().collect();
            let mut child_req = BTreeSet::new();
            for &i in &kept {
                child_req.extend(refs_of(&exprs[i].0));
            }
            let (child, cmap) = prune(*input, &child_req)?;
            let new_exprs: Vec<_> = kept
                .iter()
                .map(|&i| (exprs[i].0.remap_columns(&|c| cmap[&c]), exprs[i].1.clone()))
                .collect();
            let mapping: Mapping = kept
                .iter()
                .enumerate()
                .map(|(new, &old)| (old, new))
                .collect();
            Ok((
                Rel::Project {
                    input: Box::new(child),
                    exprs: new_exprs,
                },
                mapping,
            ))
        }
        Rel::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            let mut child_req = BTreeSet::new();
            for g in &group_by {
                child_req.extend(refs_of(g));
            }
            for a in &aggregates {
                if let Some(e) = &a.input {
                    child_req.extend(refs_of(e));
                }
            }
            let (child, cmap) = prune(*input, &child_req)?;
            let group_by: Vec<_> = group_by
                .iter()
                .map(|g| g.remap_columns(&|c| cmap[&c]))
                .collect();
            let aggregates: Vec<_> = aggregates
                .iter()
                .map(|a| sirius_plan::AggExpr {
                    func: a.func,
                    input: a.input.as_ref().map(|e| e.remap_columns(&|c| cmap[&c])),
                    name: a.name.clone(),
                })
                .collect();
            // Aggregate output (keys + aggs) is kept whole.
            let width = group_by.len() + aggregates.len();
            let mapping: Mapping = (0..width).map(|i| (i, i)).collect();
            Ok((
                Rel::Aggregate {
                    input: Box::new(child),
                    group_by,
                    aggregates,
                },
                mapping,
            ))
        }
        Rel::Join {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            residual,
        } => {
            let lw = left.schema().map_err(SqlError::Plan)?.len();
            let mut lreq = BTreeSet::new();
            let mut rreq = BTreeSet::new();
            for &r in required {
                if r < lw {
                    lreq.insert(r);
                } else {
                    rreq.insert(r - lw);
                }
            }
            for k in &left_keys {
                lreq.extend(refs_of(k));
            }
            for k in &right_keys {
                rreq.extend(refs_of(k));
            }
            if let Some(res) = &residual {
                for r in refs_of(res) {
                    if r < lw {
                        lreq.insert(r);
                    } else {
                        rreq.insert(r - lw);
                    }
                }
            }
            let (lchild, lmap) = prune(*left, &lreq)?;
            let (rchild, rmap) = prune(*right, &rreq)?;
            let new_lw = lchild.schema().map_err(SqlError::Plan)?.len();
            let left_keys: Vec<_> = left_keys
                .iter()
                .map(|k| k.remap_columns(&|c| lmap[&c]))
                .collect();
            let right_keys: Vec<_> = right_keys
                .iter()
                .map(|k| k.remap_columns(&|c| rmap[&c]))
                .collect();
            let residual = residual.map(|res| {
                res.remap_columns(&|c| {
                    if c < lw {
                        lmap[&c]
                    } else {
                        new_lw + rmap[&(c - lw)]
                    }
                })
            });
            let mut mapping: Mapping = Mapping::new();
            for (&old, &new) in &lmap {
                mapping.insert(old, new);
            }
            if !matches!(kind, JoinKind::Semi | JoinKind::Anti) {
                for (&old, &new) in &rmap {
                    mapping.insert(lw + old, new_lw + new);
                }
            }
            Ok((
                Rel::Join {
                    left: Box::new(lchild),
                    right: Box::new(rchild),
                    kind,
                    left_keys,
                    right_keys,
                    residual,
                },
                mapping,
            ))
        }
        Rel::Sort { input, keys } => {
            let mut child_req = required.clone();
            for k in &keys {
                child_req.extend(refs_of(&k.expr));
            }
            let (child, map) = prune(*input, &child_req)?;
            let keys: Vec<_> = keys
                .iter()
                .map(|k| SortExpr {
                    expr: k.expr.remap_columns(&|c| map[&c]),
                    ascending: k.ascending,
                })
                .collect();
            Ok((
                Rel::Sort {
                    input: Box::new(child),
                    keys,
                },
                map,
            ))
        }
        Rel::Limit {
            input,
            offset,
            fetch,
        } => {
            let (child, map) = prune(*input, required)?;
            Ok((
                Rel::Limit {
                    input: Box::new(child),
                    offset,
                    fetch,
                },
                map,
            ))
        }
        Rel::Distinct { input } => {
            // Distinct semantics depend on every column: no pruning through.
            let width = input.schema().map_err(SqlError::Plan)?.len();
            let all: BTreeSet<usize> = (0..width).collect();
            let (child, map) = prune(*input, &all)?;
            Ok((
                Rel::Distinct {
                    input: Box::new(child),
                },
                map,
            ))
        }
        Rel::Exchange { input, kind } => {
            let mut child_req = required.clone();
            if let ExchangeKind::Shuffle { keys } = &kind {
                for k in keys {
                    child_req.extend(refs_of(k));
                }
            }
            let (child, map) = prune(*input, &child_req)?;
            let kind = match kind {
                ExchangeKind::Shuffle { keys } => ExchangeKind::Shuffle {
                    keys: keys.iter().map(|k| k.remap_columns(&|c| map[&c])).collect(),
                },
                other => other,
            };
            Ok((
                Rel::Exchange {
                    input: Box::new(child),
                    kind,
                },
                map,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirius_columnar::{DataType, Field, Schema};
    use sirius_plan::builder::PlanBuilder;
    use sirius_plan::expr::{col, gt, lit_i64};

    fn wide_scan() -> PlanBuilder {
        PlanBuilder::scan(
            "t",
            Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Int64),
                Field::new("c", DataType::Int64),
                Field::new("d", DataType::Int64),
            ]),
        )
    }

    fn find_read_projection(rel: &Rel) -> Option<Vec<usize>> {
        match rel {
            Rel::Read { projection, .. } => projection.clone(),
            _ => rel.children().iter().find_map(|c| find_read_projection(c)),
        }
    }

    #[test]
    fn prunes_unused_scan_columns() {
        let plan = wide_scan()
            .filter(gt(col(1), lit_i64(0)))
            .project(vec![(col(3), "d".into())])
            .build();
        let opt = optimize(plan.clone()).unwrap();
        // Only b (filter) and d (projection) should be read.
        assert_eq!(find_read_projection(&opt), Some(vec![1, 3]));
        // Output schema is preserved.
        assert_eq!(opt.schema().unwrap(), plan.schema().unwrap());
        sirius_plan::validate::validate(&opt).unwrap();
    }

    #[test]
    fn join_prunes_both_sides() {
        let plan = wide_scan()
            .join(
                wide_scan(),
                JoinKind::Inner,
                vec![col(0)],
                vec![col(2)],
                None,
            )
            .project(vec![(col(1), "b".into()), (col(7), "d2".into())])
            .build();
        let opt = optimize(plan.clone()).unwrap();
        sirius_plan::validate::validate(&opt).unwrap();
        assert_eq!(opt.schema().unwrap(), plan.schema().unwrap());
        // Left side reads a (key) and b; right side reads c (key) and d.
        fn reads(rel: &Rel, out: &mut Vec<Vec<usize>>) {
            if let Rel::Read {
                projection: Some(p),
                ..
            } = rel
            {
                out.push(p.clone());
            }
            for c in rel.children() {
                reads(c, out);
            }
        }
        let mut r = Vec::new();
        reads(&opt, &mut r);
        assert_eq!(r, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn distinct_blocks_pruning() {
        let plan = wide_scan().distinct().build();
        let opt = optimize(plan).unwrap();
        assert_eq!(
            find_read_projection(&opt),
            Some(vec![0, 1, 2, 3]),
            "distinct needs all columns"
        );
    }

    #[test]
    fn aggregate_children_pruned() {
        let plan = wide_scan()
            .aggregate(
                vec![col(2)],
                vec![sirius_plan::AggExpr {
                    func: sirius_plan::AggFunc::Sum,
                    input: Some(col(0)),
                    name: "s".into(),
                }],
            )
            .build();
        let opt = optimize(plan).unwrap();
        assert_eq!(find_read_projection(&opt), Some(vec![0, 2]));
        sirius_plan::validate::validate(&opt).unwrap();
    }
}
