//! Join enumeration and build-side selection.
//!
//! Extracted from `bind` so planning decisions live in the optimizer
//! layer: the greedy left-deep enumerator is unchanged from the binder
//! era and remains **bit-for-bit identical** when driven by estimate-only
//! [`Statistics`] (the default). What the extraction adds is the feedback
//! path: when `Statistics::actual_rows` has observed cardinalities for a
//! subtree's base-table set (recorded from `operator_stats` on a previous
//! run of the same plan shape), those actuals replace the estimates in
//! the greedy choice, and — where both sides of an inner join have been
//! observed — the *build side* flips onto the genuinely smaller input.
//!
//! The build-side flip is where Q3-class wins come from: estimates put
//! lineitem's filtered cardinality far below its actual, so the default
//! plan materializes a huge build table while streaming the small side.
//! With actuals the orderer swaps the join inputs (and restores the
//! original column order with a projection so downstream ordinals never
//! move), turning the large side into the streamed probe input.
//! Estimate-only plans are never swapped — adaptivity requires evidence.

use crate::binder::JoinOrderPolicy;
use crate::optimizer::stats::Statistics;
use crate::Result;
use sirius_columnar::Schema;
use sirius_plan::expr::{self};
use sirius_plan::{BinOp, Expr, JoinKind, Rel};
use std::collections::{BTreeSet, HashMap};

/// A bound FROM unit handed to the orderer: plan + estimated cardinality.
pub struct JoinRelation {
    /// Bound plan for this FROM item (filters already pushed).
    pub plan: Rel,
    /// Output schema of `plan`.
    pub schema: Schema,
    /// Estimated output cardinality.
    pub estimate: f64,
}

/// Greedy left-deep join orderer over a [`Statistics`] source.
pub struct JoinOrderer<'a> {
    policy: JoinOrderPolicy,
    stats: &'a dyn Statistics,
}

impl<'a> JoinOrderer<'a> {
    /// An orderer for `policy` driven by `stats`.
    pub fn new(policy: JoinOrderPolicy, stats: &'a dyn Statistics) -> Self {
        JoinOrderer { policy, stats }
    }

    /// Build the join tree. Returns the plan, the map from
    /// original-product ordinals to final ordinals, and the final schema.
    ///
    /// `orig_offsets[i]` is the offset of relation `i`'s columns in the
    /// original FROM-order product; each edge is a bound conjunct over
    /// that product plus the set of relations it references.
    pub fn build(
        &self,
        mut relations: Vec<JoinRelation>,
        orig_offsets: &[usize],
        mut edges: Vec<(Expr, Vec<usize>)>,
    ) -> Result<(Rel, Vec<usize>, Schema)> {
        let n = relations.len();
        let widths: Vec<usize> = relations.iter().map(|r| r.schema.len()).collect();
        let total: usize = widths.iter().sum();
        let mut final_map = vec![usize::MAX; total];

        // Base-table sets per relation, the key under which feedback
        // records actuals. A table appearing more than once in the query
        // (self-join) makes the set ambiguous — those relations opt out
        // of feedback and keep their estimates.
        let mut occurrences: HashMap<&str, usize> = HashMap::new();
        let tables_per_rel: Vec<Vec<String>> = relations.iter().map(|r| r.plan.tables()).collect();
        for ts in &tables_per_rel {
            for t in ts {
                *occurrences.entry(t.as_str()).or_insert(0) += 1;
            }
        }
        let sets: Vec<Option<BTreeSet<String>>> = tables_per_rel
            .iter()
            .map(|ts| {
                if ts.is_empty() || ts.iter().any(|t| occurrences[t.as_str()] > 1) {
                    None
                } else {
                    Some(ts.iter().cloned().collect())
                }
            })
            .collect();
        // Cardinality: observed actual when feedback has this subtree,
        // estimate otherwise. With estimate-only statistics this is the
        // historical greedy input, unchanged.
        let card = |i: usize, relations: &[JoinRelation]| -> f64 {
            sets[i]
                .as_ref()
                .and_then(|s| self.stats.actual_rows(s))
                .unwrap_or(relations[i].estimate)
        };

        let connected = |edges: &[(Expr, Vec<usize>)], joined: &[usize], cand: usize| {
            edges.iter().any(|(_, rels)| {
                rels.contains(&cand) && rels.iter().all(|r| *r == cand || joined.contains(r))
            })
        };

        // Pick the starting relation.
        let mut remaining: Vec<usize> = (0..n).collect();
        let start = match self.policy {
            JoinOrderPolicy::Optimized => remaining
                .iter()
                .copied()
                .min_by(|&a, &b| card(a, &relations).total_cmp(&card(b, &relations)))
                .expect("non-empty FROM"),
            JoinOrderPolicy::FromOrder => 0,
        };
        remaining.retain(|&r| r != start);
        let mut joined = vec![start];
        let mut plan = std::mem::replace(&mut relations[start].plan, placeholder());
        let mut schema = relations[start].schema.clone();
        for c in 0..widths[start] {
            final_map[orig_offsets[start] + c] = c;
        }
        // The joined subtree's base-table set (None once any ambiguous
        // or table-free relation joins in).
        let mut joined_set = sets[start].clone();

        while !remaining.is_empty() {
            // Choose the next relation.
            let next = match self.policy {
                JoinOrderPolicy::Optimized => {
                    let conn: Vec<usize> = remaining
                        .iter()
                        .copied()
                        .filter(|&r| connected(&edges, &joined, r))
                        .collect();
                    let pool = if conn.is_empty() {
                        remaining.clone()
                    } else {
                        conn
                    };
                    pool.into_iter()
                        .min_by(|&a, &b| card(a, &relations).total_cmp(&card(b, &relations)))
                        .expect("pool non-empty")
                }
                JoinOrderPolicy::FromOrder => remaining
                    .iter()
                    .copied()
                    .find(|&r| connected(&edges, &joined, r))
                    .unwrap_or(remaining[0]),
            };
            remaining.retain(|&r| r != next);

            let left_width = schema.len();
            // Assign final ordinals for `next`.
            for c in 0..widths[next] {
                final_map[orig_offsets[next] + c] = left_width + c;
            }

            // Partition applicable edges into keys and residuals.
            let mut lk = Vec::new();
            let mut rk = Vec::new();
            let mut residual = Vec::new();
            let mut rest = Vec::new();
            for (e, rels) in edges {
                let applicable =
                    rels.contains(&next) && rels.iter().all(|r| *r == next || joined.contains(r));
                if !applicable {
                    rest.push((e, rels));
                    continue;
                }
                let in_next = |x: &Expr| {
                    let mut refs = Vec::new();
                    x.referenced_columns(&mut refs);
                    !refs.is_empty()
                        && refs.iter().all(|&r| {
                            r >= orig_offsets[next] && r < orig_offsets[next] + widths[next]
                        })
                };
                let in_joined = |x: &Expr| {
                    let mut refs = Vec::new();
                    x.referenced_columns(&mut refs);
                    !refs.is_empty() && refs.iter().all(|&r| final_map[r] < left_width)
                };
                if let Expr::Binary {
                    op: BinOp::Eq,
                    left,
                    right,
                } = &e
                {
                    if in_joined(left) && in_next(right) {
                        lk.push(left.remap_columns(&|i| final_map[i]));
                        rk.push(right.remap_columns(&|i| i - orig_offsets[next]));
                        continue;
                    }
                    if in_next(left) && in_joined(right) {
                        lk.push(right.remap_columns(&|i| final_map[i]));
                        rk.push(left.remap_columns(&|i| i - orig_offsets[next]));
                        continue;
                    }
                }
                residual.push(e.remap_columns(&|i| final_map[i]));
            }
            edges = rest;

            let next_schema = relations[next].schema.clone();
            let right_plan = std::mem::replace(&mut relations[next].plan, placeholder());
            plan = if lk.is_empty() {
                Rel::Join {
                    left: Box::new(plan),
                    right: Box::new(right_plan),
                    kind: JoinKind::Cross,
                    left_keys: vec![],
                    right_keys: vec![],
                    residual: if residual.is_empty() {
                        None
                    } else {
                        Some(expr::and_all(residual))
                    },
                }
            } else if residual.is_empty() && self.should_swap(&joined_set, &sets[next]) {
                // Build-side flip: the probe pipeline streams while the
                // build pipeline materializes its whole input, so with
                // observed actuals on both sides the smaller one belongs
                // on the build (right) side. A restoring projection keeps
                // the output column order identical to the unswapped
                // join, so downstream ordinals and `final_map` stay
                // valid untouched.
                let swapped = Rel::Join {
                    left: Box::new(right_plan),
                    right: Box::new(plan),
                    kind: JoinKind::Inner,
                    left_keys: rk,
                    right_keys: lk,
                    residual: None,
                };
                let w_next = next_schema.len();
                let mut exprs = Vec::with_capacity(left_width + w_next);
                for (i, f) in schema.fields.iter().enumerate() {
                    exprs.push((expr::col(w_next + i), f.name.clone()));
                }
                for (j, f) in next_schema.fields.iter().enumerate() {
                    exprs.push((expr::col(j), f.name.clone()));
                }
                Rel::Project {
                    input: Box::new(swapped),
                    exprs,
                }
            } else {
                Rel::Join {
                    left: Box::new(plan),
                    right: Box::new(right_plan),
                    kind: JoinKind::Inner,
                    left_keys: lk,
                    right_keys: rk,
                    residual: if residual.is_empty() {
                        None
                    } else {
                        Some(expr::and_all(residual))
                    },
                }
            };
            schema = schema.join(&next_schema);
            joined.push(next);
            joined_set = match (joined_set, &sets[next]) {
                (Some(mut a), Some(b)) => {
                    a.extend(b.iter().cloned());
                    Some(a)
                }
                _ => None,
            };
        }

        // Any edges never consumed (e.g. three-relation predicates)
        // become a final filter.
        if !edges.is_empty() {
            let conj: Vec<Expr> = edges
                .into_iter()
                .map(|(e, _)| e.remap_columns(&|i| final_map[i]))
                .collect();
            plan = Rel::Filter {
                input: Box::new(plan),
                predicate: expr::and_all(conj),
            };
        }

        Ok((plan, final_map, schema))
    }

    /// Flip the build side only on evidence: both sides observed, and the
    /// joined subtree (the default build input) actually smaller than the
    /// incoming relation. Estimate-only statistics never observe, so the
    /// default plan is untouched.
    fn should_swap(
        &self,
        joined_set: &Option<BTreeSet<String>>,
        next_set: &Option<BTreeSet<String>>,
    ) -> bool {
        if self.policy != JoinOrderPolicy::Optimized {
            return false;
        }
        let (Some(joined), Some(next)) = (joined_set, next_set) else {
            return false;
        };
        match (self.stats.actual_rows(joined), self.stats.actual_rows(next)) {
            (Some(j), Some(n)) => j < n,
            _ => false,
        }
    }
}

fn placeholder() -> Rel {
    Rel::Read {
        table: String::new(),
        schema: Schema::empty(),
        projection: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::stats::CatalogStatistics;
    use crate::BinderCatalog;
    use sirius_columnar::{DataType, Field};

    struct Feedback {
        catalog_rows: HashMap<String, f64>,
        actuals: HashMap<BTreeSet<String>, f64>,
    }

    impl Statistics for Feedback {
        fn base_rows(&self, table: &str) -> Option<f64> {
            self.catalog_rows.get(table).copied()
        }
        fn actual_rows(&self, tables: &BTreeSet<String>) -> Option<f64> {
            self.actuals.get(tables).copied()
        }
    }

    fn table(name: &str, rows: f64) -> JoinRelation {
        let schema = Schema::new(vec![Field::new(format!("{name}.k"), DataType::Int64)]);
        JoinRelation {
            plan: Rel::Read {
                table: name.to_string(),
                schema: schema.clone(),
                projection: None,
            },
            schema,
            estimate: rows,
        }
    }

    fn eq_edge(l: usize, r: usize) -> (Expr, Vec<usize>) {
        (
            expr::eq(expr::col(l), expr::col(r)),
            vec![l.min(r), l.max(r)],
        )
    }

    fn join_structure(rel: &Rel) -> String {
        match rel {
            Rel::Read { table, .. } => table.clone(),
            Rel::Join { left, right, .. } => {
                format!("({} ⋈ {})", join_structure(left), join_structure(right))
            }
            Rel::Project { input, .. } => format!("π{}", join_structure(input)),
            Rel::Filter { input, .. } => join_structure(input),
            other => format!("{other:?}"),
        }
    }

    #[test]
    fn estimate_only_never_swaps() {
        let cat = BinderCatalog::new();
        let stats = CatalogStatistics::new(&cat);
        let orderer = JoinOrderer::new(JoinOrderPolicy::Optimized, &stats);
        let rels = vec![table("small", 10.0), table("big", 1000.0)];
        let (plan, _, _) = orderer.build(rels, &[0, 1], vec![eq_edge(0, 1)]).unwrap();
        assert_eq!(join_structure(&plan), "(small ⋈ big)");
    }

    #[test]
    fn actuals_flip_build_side_with_restoring_projection() {
        // Estimates say `small` is tiny, so it starts and `big` becomes
        // the build side. Actuals reveal the opposite: the joined side
        // (small, 5 rows observed) is smaller than big's observed 50000,
        // so the join flips and a projection restores column order.
        let stats = Feedback {
            catalog_rows: HashMap::new(),
            actuals: HashMap::from([
                (BTreeSet::from(["small".to_string()]), 5.0),
                (BTreeSet::from(["big".to_string()]), 50_000.0),
            ]),
        };
        let orderer = JoinOrderer::new(JoinOrderPolicy::Optimized, &stats);
        let rels = vec![table("small", 10.0), table("big", 1000.0)];
        let (plan, _, schema) = orderer.build(rels, &[0, 1], vec![eq_edge(0, 1)]).unwrap();
        assert_eq!(join_structure(&plan), "π(big ⋈ small)");
        // The restoring projection preserves the unswapped output order.
        assert_eq!(schema.fields[0].name, "small.k");
        assert_eq!(schema.fields[1].name, "big.k");
        let Rel::Project { input, exprs } = &plan else {
            panic!("expected restoring projection");
        };
        assert_eq!(exprs[0].0, expr::col(1));
        assert_eq!(exprs[1].0, expr::col(0));
        let Rel::Join {
            left_keys,
            right_keys,
            ..
        } = &**input
        else {
            panic!("expected join under projection");
        };
        assert_eq!(left_keys.len(), 1);
        assert_eq!(right_keys.len(), 1);
    }

    #[test]
    fn self_join_tables_opt_out_of_feedback() {
        // Both relations read the same table: actuals are ambiguous, so
        // even wildly inverted observations must not flip anything.
        let stats = Feedback {
            catalog_rows: HashMap::new(),
            actuals: HashMap::from([(BTreeSet::from(["t".to_string()]), 1.0)]),
        };
        let orderer = JoinOrderer::new(JoinOrderPolicy::Optimized, &stats);
        let rels = vec![table("t", 10.0), table("t", 1000.0)];
        let (plan, _, _) = orderer.build(rels, &[0, 1], vec![eq_edge(0, 1)]).unwrap();
        assert_eq!(join_structure(&plan), "(t ⋈ t)");
    }

    #[test]
    fn from_order_policy_ignores_actuals() {
        let stats = Feedback {
            catalog_rows: HashMap::new(),
            actuals: HashMap::from([
                (BTreeSet::from(["a".to_string()]), 5.0),
                (BTreeSet::from(["b".to_string()]), 50_000.0),
            ]),
        };
        let orderer = JoinOrderer::new(JoinOrderPolicy::FromOrder, &stats);
        let rels = vec![table("a", 10.0), table("b", 1000.0)];
        let (plan, _, _) = orderer.build(rels, &[0, 1], vec![eq_edge(0, 1)]).unwrap();
        assert_eq!(join_structure(&plan), "(a ⋈ b)");
    }
}
