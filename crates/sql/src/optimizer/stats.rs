//! The statistics abstraction behind join ordering.
//!
//! The binder used to read row counts straight off [`BinderCatalog`] and
//! bake selectivity constants into `bind`. [`Statistics`] lifts both
//! behind a trait so the same greedy orderer can run from catalog
//! estimates (the default, [`CatalogStatistics`] — bit-for-bit the old
//! behavior) or from *observed actuals* recorded by a feedback store
//! after a prior execution of the same plan shape (adaptive
//! re-optimization, the serving layer's plan-cache payoff).

use crate::binder::BinderCatalog;
use std::collections::BTreeSet;

/// Cardinality and selectivity source for the optimizer.
///
/// `actual_rows` keys on the *set of base tables* under a join subtree:
/// that identity is stable under join reordering, so observations made
/// on one plan of a shape transfer to any re-enumeration of the same
/// shape. Implementations return `None` whenever they have nothing
/// better than the estimate — the orderer then falls back to
/// `base_rows`-seeded estimates and its decisions stay exactly the
/// estimate-only ones.
pub trait Statistics {
    /// Base-table row count, `None` if the table is unknown.
    fn base_rows(&self, table: &str) -> Option<f64>;

    /// Selectivity applied per single-relation WHERE conjunct pushed
    /// into a scan.
    fn pushdown_selectivity(&self) -> f64 {
        0.35
    }

    /// Selectivity applied per implied filter derived from a
    /// multi-relation OR (the Q7/Q19 pattern).
    fn implied_or_selectivity(&self) -> f64 {
        0.5
    }

    /// Observed output cardinality of the join subtree covering exactly
    /// `tables`, from a previous run of the same plan shape. The default
    /// has no feedback.
    fn actual_rows(&self, tables: &BTreeSet<String>) -> Option<f64> {
        let _ = tables;
        None
    }
}

/// Estimate-only statistics straight off the binder catalog — the
/// default source, reproducing the historical planner behavior exactly.
#[derive(Debug, Clone, Copy)]
pub struct CatalogStatistics<'a> {
    catalog: &'a BinderCatalog,
}

impl<'a> CatalogStatistics<'a> {
    /// Statistics over `catalog` row counts.
    pub fn new(catalog: &'a BinderCatalog) -> Self {
        CatalogStatistics { catalog }
    }
}

impl Statistics for CatalogStatistics<'_> {
    fn base_rows(&self, table: &str) -> Option<f64> {
        self.catalog.get(table).map(|(_, rows)| *rows as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirius_columnar::{DataType, Field, Schema};

    #[test]
    fn catalog_statistics_serve_row_counts() {
        let mut cat = BinderCatalog::new();
        cat.add_table(
            "t",
            Schema::new(vec![Field::new("x", DataType::Int64)]),
            123,
        );
        let stats = CatalogStatistics::new(&cat);
        assert_eq!(stats.base_rows("t"), Some(123.0));
        assert_eq!(stats.base_rows("missing"), None);
        assert_eq!(stats.actual_rows(&BTreeSet::from(["t".to_string()])), None);
        assert_eq!(stats.pushdown_selectivity(), 0.35);
        assert_eq!(stats.implied_or_selectivity(), 0.5);
    }
}
