//! Abstract syntax tree for the supported SQL dialect.

/// A full query: optional CTEs, a SELECT body, ordering, and limit.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `WITH name AS (query)` items, in order (later CTEs may use earlier).
    pub ctes: Vec<(String, Query)>,
    /// The SELECT body.
    pub select: Select,
    /// ORDER BY items.
    pub order_by: Vec<OrderItem>,
    /// LIMIT n.
    pub limit: Option<usize>,
}

/// The SELECT body.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// SELECT DISTINCT.
    pub distinct: bool,
    /// Output items.
    pub items: Vec<SelectItem>,
    /// FROM items (comma-joined); each may carry explicit JOINs.
    pub from: Vec<FromItem>,
    /// WHERE predicate.
    pub where_clause: Option<ExprAst>,
    /// GROUP BY expressions.
    pub group_by: Vec<ExprAst>,
    /// HAVING predicate.
    pub having: Option<ExprAst>,
}

/// One SELECT output.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The expression.
    pub expr: ExprAst,
    /// Optional `AS alias`.
    pub alias: Option<String>,
}

/// A FROM item: a base relation possibly followed by explicit JOIN clauses.
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    /// The leading relation.
    pub base: TableRef,
    /// Explicit `JOIN ... ON ...` chain applied to `base`.
    pub joins: Vec<ExplicitJoin>,
}

/// An explicit JOIN clause.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplicitJoin {
    /// Joined relation.
    pub relation: TableRef,
    /// Join kind.
    pub kind: AstJoinKind,
    /// ON condition.
    pub on: ExprAst,
}

/// Explicit join kinds supported by the dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstJoinKind {
    /// INNER JOIN.
    Inner,
    /// LEFT \[OUTER\] JOIN.
    Left,
}

/// A base relation in FROM.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Base table (or CTE) with optional alias.
    Table {
        /// Table or CTE name.
        name: String,
        /// Alias (`nation n1`).
        alias: Option<String>,
    },
    /// Parenthesized subquery with mandatory alias.
    Derived {
        /// The subquery.
        query: Box<Query>,
        /// Alias.
        alias: String,
    },
}

impl TableRef {
    /// The name this relation binds in scope.
    pub fn binding_name(&self) -> &str {
        match self {
            TableRef::Table { name, alias } => alias.as_deref().unwrap_or(name),
            TableRef::Derived { alias, .. } => alias,
        }
    }
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Key expression (usually an output column or alias).
    pub expr: ExprAst,
    /// Ascending (default) or descending.
    pub ascending: bool,
}

/// Binary operators at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AstBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// Aggregate function names recognized by the binder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AstAggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

/// Date interval units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum IntervalUnit {
    Day,
    Month,
    Year,
}

/// Scalar expressions at the AST level.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprAst {
    /// Possibly-qualified identifier (`l_orderkey`, `n1.n_name`).
    Ident(Vec<String>),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `DATE 'yyyy-mm-dd'`.
    Date(String),
    /// `INTERVAL 'n' unit`.
    Interval {
        /// Count of units.
        value: i64,
        /// Unit.
        unit: IntervalUnit,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: AstBinOp,
        /// Left operand.
        left: Box<ExprAst>,
        /// Right operand.
        right: Box<ExprAst>,
    },
    /// Logical NOT.
    Not(Box<ExprAst>),
    /// Unary minus.
    Neg(Box<ExprAst>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<ExprAst>,
        /// `IS NOT NULL` when true.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<ExprAst>,
        /// Lower bound (inclusive).
        low: Box<ExprAst>,
        /// Upper bound (inclusive).
        high: Box<ExprAst>,
        /// NOT BETWEEN when true.
        negated: bool,
    },
    /// `expr [NOT] LIKE 'pattern'`.
    Like {
        /// Tested string expression.
        expr: Box<ExprAst>,
        /// Pattern literal.
        pattern: String,
        /// NOT LIKE when true.
        negated: bool,
    },
    /// `expr [NOT] IN (literal, ...)`.
    InList {
        /// Tested expression.
        expr: Box<ExprAst>,
        /// Literal list.
        list: Vec<ExprAst>,
        /// NOT IN when true.
        negated: bool,
    },
    /// `expr [NOT] IN (subquery)`.
    InSubquery {
        /// Tested expression.
        expr: Box<ExprAst>,
        /// The subquery.
        query: Box<Query>,
        /// NOT IN when true.
        negated: bool,
    },
    /// `[NOT] EXISTS (subquery)`.
    Exists {
        /// The subquery.
        query: Box<Query>,
        /// NOT EXISTS when true.
        negated: bool,
    },
    /// `(subquery)` used as a scalar value.
    ScalarSubquery(Box<Query>),
    /// Aggregate call.
    Agg {
        /// Function.
        func: AstAggFunc,
        /// Argument (`None` for `COUNT(*)`).
        arg: Option<Box<ExprAst>>,
        /// `DISTINCT` argument.
        distinct: bool,
    },
    /// Searched CASE.
    Case {
        /// `(WHEN cond, THEN value)` branches.
        branches: Vec<(ExprAst, ExprAst)>,
        /// ELSE value.
        otherwise: Option<Box<ExprAst>>,
    },
    /// `EXTRACT(YEAR FROM expr)`.
    ExtractYear(Box<ExprAst>),
    /// `SUBSTRING(expr FROM start FOR len)` (also comma form).
    Substring {
        /// String operand.
        expr: Box<ExprAst>,
        /// 1-based start.
        start: usize,
        /// Length.
        len: usize,
    },
}

impl ExprAst {
    /// True if any aggregate call appears in this expression.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            ExprAst::Agg { .. } => true,
            ExprAst::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            ExprAst::Not(e) | ExprAst::Neg(e) | ExprAst::ExtractYear(e) => e.contains_aggregate(),
            ExprAst::IsNull { expr, .. }
            | ExprAst::Like { expr, .. }
            | ExprAst::Substring { expr, .. } => expr.contains_aggregate(),
            ExprAst::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            ExprAst::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(|e| e.contains_aggregate())
            }
            ExprAst::InSubquery { expr, .. } => expr.contains_aggregate(),
            ExprAst::Case {
                branches,
                otherwise,
            } => {
                branches
                    .iter()
                    .any(|(c, v)| c.contains_aggregate() || v.contains_aggregate())
                    || otherwise
                        .as_ref()
                        .map(|o| o.contains_aggregate())
                        .unwrap_or(false)
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_aggregate_walks_tree() {
        let agg = ExprAst::Agg {
            func: AstAggFunc::Sum,
            arg: Some(Box::new(ExprAst::Ident(vec!["x".into()]))),
            distinct: false,
        };
        let e = ExprAst::Binary {
            op: AstBinOp::Gt,
            left: Box::new(agg),
            right: Box::new(ExprAst::Int(1)),
        };
        assert!(e.contains_aggregate());
        assert!(!ExprAst::Int(1).contains_aggregate());
    }

    #[test]
    fn binding_names() {
        let t = TableRef::Table {
            name: "nation".into(),
            alias: Some("n1".into()),
        };
        assert_eq!(t.binding_name(), "n1");
        let t2 = TableRef::Table {
            name: "nation".into(),
            alias: None,
        };
        assert_eq!(t2.binding_name(), "nation");
    }
}
