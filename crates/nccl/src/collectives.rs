//! The collective operations backing the exchange service (§3.2.4).

use crate::cluster::Communicator;
use crate::Result;
use sirius_columnar::Table;
use std::time::Duration;

impl Communicator {
    /// Broadcast: `root` replicates `table` to every rank. Every rank
    /// passes `Some(table)` at the root and `None` elsewhere; every rank
    /// returns the table plus its simulated wire time.
    pub fn broadcast(&mut self, root: usize, table: Option<Table>) -> Result<(Table, Duration)> {
        let seq = self.next_seq();
        if self.rank() == root {
            let table = table.expect("root must provide the broadcast table");
            let mut wire = Duration::ZERO;
            for peer in 0..self.world() {
                if peer != root {
                    wire += self.send(peer, seq, table.clone())?;
                }
            }
            Ok((table, wire))
        } else {
            let t = self.recv(root, seq)?;
            Ok((t, Duration::ZERO))
        }
    }

    /// Shuffle (all-to-all): `partitions[j]` goes to rank `j`; returns the
    /// concatenation of what every rank sent to us, in rank order, plus the
    /// wire time spent sending (the dominant direction in the model).
    pub fn shuffle(&mut self, partitions: Vec<Table>) -> Result<(Table, Duration)> {
        assert_eq!(partitions.len(), self.world(), "one partition per rank");
        let seq = self.next_seq();
        let mut wire = Duration::ZERO;
        for (peer, part) in partitions.into_iter().enumerate() {
            wire += self.send(peer, seq, part)?;
        }
        let mut received = Vec::with_capacity(self.world());
        for peer in 0..self.world() {
            received.push(self.recv(peer, seq)?);
        }
        let refs: Vec<&Table> = received.iter().collect();
        Ok((Table::concat(&refs), wire))
    }

    /// Merge (gather): every rank contributes `table`; `root` receives the
    /// concatenation in rank order, other ranks receive an empty table of
    /// the same schema.
    pub fn merge(&mut self, root: usize, table: Table) -> Result<(Table, Duration)> {
        let seq = self.next_seq();
        let schema = table.schema().clone();
        if self.rank() == root {
            // Own contribution plus everyone else's.
            let mut parts: Vec<Table> = Vec::with_capacity(self.world());
            for peer in 0..self.world() {
                if peer == root {
                    parts.push(table.clone());
                } else {
                    parts.push(self.recv(peer, seq)?);
                }
            }
            let refs: Vec<&Table> = parts.iter().collect();
            Ok((Table::concat(&refs), Duration::ZERO))
        } else {
            let wire = self.send(root, seq, table)?;
            Ok((Table::empty(schema), wire))
        }
    }

    /// Multi-cast: the sender pushes `table` to an explicit target set.
    /// Ranks in `targets` (other than the sender) receive it; everyone else
    /// gets an empty table. All ranks must agree on `sender` and `targets`.
    pub fn multicast(
        &mut self,
        sender: usize,
        targets: &[usize],
        table: Option<Table>,
    ) -> Result<(Option<Table>, Duration)> {
        let seq = self.next_seq();
        if self.rank() == sender {
            let table = table.expect("sender must provide the multicast table");
            let mut wire = Duration::ZERO;
            for &peer in targets {
                if peer != sender {
                    wire += self.send(peer, seq, table.clone())?;
                }
            }
            let keep = targets.contains(&sender).then_some(table);
            Ok((keep, wire))
        } else if targets.contains(&self.rank()) {
            Ok((Some(self.recv(sender, seq)?), Duration::ZERO))
        } else {
            Ok((None, Duration::ZERO))
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::NcclCluster;
    use sirius_columnar::{Array, DataType, Field, Schema, Table};
    use sirius_hw::catalog;
    use std::collections::HashSet;

    fn t(values: Vec<i64>) -> Table {
        Table::new(
            Schema::new(vec![Field::new("x", DataType::Int64)]),
            vec![Array::from_i64(values)],
        )
    }

    fn run_cluster<F, R>(world: usize, f: F) -> Vec<R>
    where
        F: Fn(crate::Communicator) -> R + Send + Sync + Clone + 'static,
        R: Send + 'static,
    {
        let comms = NcclCluster::new(world, catalog::infiniband_4xndr());
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let f = f.clone();
                std::thread::spawn(move || f(c))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn broadcast_replicates() {
        let results = run_cluster(4, |mut c| {
            let payload = (c.rank() == 1).then(|| t(vec![10, 20]));
            let (got, wire) = c.broadcast(1, payload).unwrap();
            (c.rank(), got.num_rows(), wire)
        });
        for (rank, rows, wire) in results {
            assert_eq!(rows, 2);
            if rank == 1 {
                assert!(wire.as_nanos() > 0, "root pays the wire time");
            }
        }
    }

    #[test]
    fn shuffle_conserves_rows_and_routes_by_rank() {
        // Rank r sends value 100*r + j to rank j.
        let results = run_cluster(3, |mut c| {
            let r = c.rank() as i64;
            let parts = (0..3).map(|j| t(vec![100 * r + j])).collect();
            let (got, _) = c.shuffle(parts).unwrap();
            let vals: HashSet<i64> = (0..got.num_rows())
                .map(|i| got.column(0).i64_value(i).unwrap())
                .collect();
            (c.rank() as i64, vals)
        });
        for (rank, vals) in results {
            let expect: HashSet<i64> = (0..3).map(|src| 100 * src + rank).collect();
            assert_eq!(vals, expect, "rank {rank}");
        }
    }

    #[test]
    fn merge_gathers_to_root() {
        let results = run_cluster(4, |mut c| {
            let (got, _) = c.merge(0, t(vec![c.rank() as i64])).unwrap();
            (c.rank(), got.num_rows())
        });
        for (rank, rows) in results {
            assert_eq!(rows, if rank == 0 { 4 } else { 0 });
        }
    }

    #[test]
    fn multicast_targets_only() {
        let results = run_cluster(4, |mut c| {
            let payload = (c.rank() == 0).then(|| t(vec![7]));
            let (got, _) = c.multicast(0, &[1, 3], payload).unwrap();
            (c.rank(), got.map(|t| t.num_rows()))
        });
        for (rank, rows) in results {
            match rank {
                1 | 3 => assert_eq!(rows, Some(1)),
                _ => assert_eq!(rows, None),
            }
        }
    }

    #[test]
    fn collectives_compose_in_order() {
        // A broadcast followed by a shuffle on the same communicators must
        // not cross-match (sequence isolation).
        let results = run_cluster(2, |mut c| {
            let payload = (c.rank() == 0).then(|| t(vec![1]));
            let (b, _) = c.broadcast(0, payload).unwrap();
            let parts = (0..2).map(|j| t(vec![j as i64 + 10])).collect();
            let (s, _) = c.shuffle(parts).unwrap();
            (b.num_rows(), s.num_rows())
        });
        for (b, s) in results {
            assert_eq!(b, 1);
            assert_eq!(s, 2);
        }
    }
}
