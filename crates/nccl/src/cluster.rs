//! Communicator construction and point-to-point transport.

use crate::{NcclError, Result};
use crossbeam::channel::{unbounded, Receiver, Sender};
use sirius_columnar::Table;
use sirius_hw::{Link, LinkSpec};
use std::collections::HashMap;
use std::time::Duration;

/// Receive timeout: generous enough for debug-mode tests, small enough to
/// turn deadlocks into diagnosable errors.
const RECV_TIMEOUT: Duration = Duration::from_secs(30);

pub(crate) struct Message {
    pub src: usize,
    pub seq: u64,
    pub table: Table,
}

/// A per-rank handle into the cluster. Each rank is owned by one thread.
pub struct Communicator {
    rank: usize,
    world: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    /// Out-of-order messages buffered until requested.
    pending: HashMap<(usize, u64), Table>,
    /// Collective sequence counter (must advance identically on all ranks).
    seq: u64,
    link: Link,
}

/// Factory for a set of connected communicators.
pub struct NcclCluster;

impl NcclCluster {
    /// Create `world` communicators joined by an interconnect of `spec`.
    /// The returned vector is indexed by rank; hand each element to its
    /// node's thread.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(world: usize, spec: LinkSpec) -> Vec<Communicator> {
        let link = Link::new(spec);
        let (senders, receivers): (Vec<_>, Vec<_>) =
            (0..world).map(|_| unbounded::<Message>()).unzip();
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| Communicator {
                rank,
                world,
                senders: senders.clone(),
                receiver,
                pending: HashMap::new(),
                seq: 0,
                link: link.clone(),
            })
            .collect()
    }
}

impl Communicator {
    /// This communicator's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster.
    pub fn world(&self) -> usize {
        self.world
    }

    /// The shared interconnect (traffic counters).
    pub fn link(&self) -> &Link {
        &self.link
    }

    /// Advance and return the collective sequence number.
    pub(crate) fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Send `table` to `peer` under sequence `seq`; returns simulated wire
    /// time (zero for self-sends — device-local data never hits the wire).
    pub(crate) fn send(&self, peer: usize, seq: u64, table: Table) -> Result<Duration> {
        if peer >= self.world {
            return Err(NcclError::InvalidRank(peer));
        }
        let bytes = table.byte_size() as u64;
        self.senders[peer]
            .send(Message {
                src: self.rank,
                seq,
                table,
            })
            .map_err(|_| NcclError::Disconnected { peer })?;
        Ok(if peer == self.rank {
            Duration::ZERO
        } else {
            self.link.transfer(bytes)
        })
    }

    /// Receive the message from `peer` with sequence `seq`, buffering any
    /// other traffic that arrives first.
    pub(crate) fn recv(&mut self, peer: usize, seq: u64) -> Result<Table> {
        if let Some(t) = self.pending.remove(&(peer, seq)) {
            return Ok(t);
        }
        loop {
            let msg = self
                .receiver
                .recv_timeout(RECV_TIMEOUT)
                .map_err(|_| NcclError::Timeout { peer, seq })?;
            if msg.src == peer && msg.seq == seq {
                return Ok(msg.table);
            }
            self.pending.insert((msg.src, msg.seq), msg.table);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirius_columnar::{Array, DataType, Field, Schema};
    use sirius_hw::catalog;

    fn t(v: i64) -> Table {
        Table::new(
            Schema::new(vec![Field::new("x", DataType::Int64)]),
            vec![Array::from_i64([v])],
        )
    }

    #[test]
    fn point_to_point() {
        let mut comms = NcclCluster::new(2, catalog::infiniband_4xndr());
        let c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let h = std::thread::spawn(move || {
            c1.send(0, 1, t(42)).unwrap();
        });
        let got = c0.recv(1, 1).unwrap();
        assert_eq!(got.column(0).i64_value(0), Some(42));
        h.join().unwrap();
    }

    #[test]
    fn out_of_order_buffering() {
        let mut comms = NcclCluster::new(2, catalog::infiniband_4xndr());
        let c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let h = std::thread::spawn(move || {
            c1.send(0, 2, t(2)).unwrap();
            c1.send(0, 1, t(1)).unwrap();
        });
        h.join().unwrap();
        // Ask for seq 1 first even though seq 2 arrived first.
        assert_eq!(c0.recv(1, 1).unwrap().column(0).i64_value(0), Some(1));
        assert_eq!(c0.recv(1, 2).unwrap().column(0).i64_value(0), Some(2));
    }

    #[test]
    fn self_send_is_free() {
        let mut comms = NcclCluster::new(1, catalog::infiniband_4xndr());
        let mut c = comms.pop().unwrap();
        let d = c.send(0, 1, t(7)).unwrap();
        assert_eq!(d, Duration::ZERO);
        assert_eq!(c.recv(0, 1).unwrap().column(0).i64_value(0), Some(7));
        assert_eq!(c.link().bytes_moved(), 0);
    }

    #[test]
    fn invalid_rank() {
        let mut comms = NcclCluster::new(1, catalog::infiniband_4xndr());
        let c = comms.pop().unwrap();
        assert!(matches!(c.send(5, 1, t(0)), Err(NcclError::InvalidRank(5))));
    }
}
