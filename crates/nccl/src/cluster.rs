//! Communicator construction and point-to-point transport.

use crate::{NcclError, Result};
use crossbeam::channel::{unbounded, Receiver, Sender};
use sirius_columnar::{Array, StringArray, Table};
use sirius_hw::{FaultAction, FaultInjector, FaultSite, Link, LinkSpec};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Receive timeout: generous enough for debug-mode tests, small enough to
/// turn deadlocks into diagnosable errors.
const RECV_TIMEOUT: Duration = Duration::from_secs(30);

/// Granularity at which a blocked `recv` re-checks the cancel token. A dead
/// peer never sends, so without this a surviving rank would sit out the full
/// receive timeout before noticing the query was aborted.
const CANCEL_POLL: Duration = Duration::from_millis(10);

/// Cluster-wide cancellation flag. Cloning shares the flag; the coordinator
/// cancels it when any fragment fails, and every blocked collective wakes
/// with [`NcclError::Cancelled`] within one poll interval.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation of all in-flight collectives sharing this token.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }

    /// Re-arm the token for the next dispatch attempt.
    pub fn reset(&self) {
        self.0.store(false, Ordering::SeqCst);
    }
}

pub(crate) struct Message {
    pub src: usize,
    pub seq: u64,
    pub table: Table,
}

/// `(src, dst)` stable-id pair → (bytes, messages).
type TrafficMap = HashMap<(usize, usize), (u64, u64)>;

/// Per-link traffic counters, keyed by `(src, dst)` *stable* node ids.
/// Shared by every communicator in a cluster; cloning shares the counters.
/// The exchange layer has no absolute clock (wire time is charged to each
/// node's ledger), so the link telemetry is cumulative bytes/messages
/// rather than timestamped events.
#[derive(Clone, Default)]
pub struct LinkTraffic {
    inner: Arc<parking_lot::Mutex<TrafficMap>>,
}

impl LinkTraffic {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        Self::default()
    }

    fn note(&self, src: usize, dst: usize, bytes: u64) {
        let mut m = self.inner.lock();
        let e = m.entry((src, dst)).or_insert((0, 0));
        e.0 += bytes;
        e.1 += 1;
    }

    /// Snapshot of `((src, dst), bytes, messages)` per link, sorted by pair.
    pub fn snapshot(&self) -> Vec<((usize, usize), u64, u64)> {
        let mut out: Vec<_> = self
            .inner
            .lock()
            .iter()
            .map(|(&k, &(b, n))| (k, b, n))
            .collect();
        out.sort_by_key(|(k, _, _)| *k);
        out
    }

    /// Total bytes across all links.
    pub fn total_bytes(&self) -> u64 {
        self.inner.lock().values().map(|(b, _)| *b).sum()
    }

    /// Total messages across all links.
    pub fn total_messages(&self) -> u64 {
        self.inner.lock().values().map(|(_, n)| *n).sum()
    }

    /// Reset all counters to zero.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }
}

/// A per-rank handle into the cluster. Each rank is owned by one thread.
pub struct Communicator {
    rank: usize,
    world: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    /// Out-of-order messages buffered until requested.
    pending: HashMap<(usize, u64), Table>,
    /// Collective sequence counter (must advance identically on all ranks).
    seq: u64,
    link: Link,
    cancel: CancelToken,
    fault: FaultInjector,
    /// Current rank → stable node id, for fault matching across world
    /// shrinks. Identity unless overridden via `set_fault_injector`.
    ids: Vec<usize>,
    /// Shared per-link traffic counters (stable-id keyed).
    traffic: LinkTraffic,
    /// Dictionaries already shipped per `(stable peer id, dictionary)`
    /// link: the serialized form of an encoded column is its codes plus
    /// the dictionary *once* — later batches reusing the same dictionary
    /// ship codes only. Holding the `Arc` pins the identity so a freed
    /// allocation can never alias a shipped dictionary.
    shipped_dicts: parking_lot::Mutex<HashMap<(usize, usize), Arc<StringArray>>>,
}

/// Factory for a set of connected communicators.
pub struct NcclCluster;

impl NcclCluster {
    /// Create `world` communicators joined by an interconnect of `spec`.
    /// The returned vector is indexed by rank; hand each element to its
    /// node's thread. All communicators share one [`CancelToken`].
    #[allow(clippy::new_ret_no_self)]
    pub fn new(world: usize, spec: LinkSpec) -> Vec<Communicator> {
        let link = Link::new(spec);
        let cancel = CancelToken::new();
        let traffic = LinkTraffic::new();
        let (senders, receivers): (Vec<_>, Vec<_>) =
            (0..world).map(|_| unbounded::<Message>()).unzip();
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| Communicator {
                rank,
                world,
                senders: senders.clone(),
                receiver,
                pending: HashMap::new(),
                seq: 0,
                link: link.clone(),
                cancel: cancel.clone(),
                fault: FaultInjector::disabled(),
                ids: (0..world).collect(),
                traffic: traffic.clone(),
                shipped_dicts: parking_lot::Mutex::new(HashMap::new()),
            })
            .collect()
    }
}

impl Communicator {
    /// This communicator's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster.
    pub fn world(&self) -> usize {
        self.world
    }

    /// The shared interconnect (traffic counters).
    pub fn link(&self) -> &Link {
        &self.link
    }

    /// Shared per-link traffic counters, keyed by stable node id pairs.
    pub fn traffic(&self) -> &LinkTraffic {
        &self.traffic
    }

    /// The cancellation token shared by every communicator in this cluster.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Attach a fault injector. `ids` maps current rank → stable node id
    /// (identity for a full-size cluster; the survivor assignment after a
    /// world shrink), so link faults keep targeting the same physical nodes.
    pub fn set_fault_injector(&mut self, fault: FaultInjector, ids: Vec<usize>) {
        debug_assert_eq!(ids.len(), self.world);
        self.fault = fault;
        self.ids = ids;
    }

    /// Start collective epoch `epoch`: rebase the sequence counter and drop
    /// any traffic left over from an aborted attempt. The coordinator calls
    /// this on every rank *between* dispatch attempts (all node threads
    /// joined), which is what makes draining the channel safe.
    pub fn begin_epoch(&mut self, epoch: u64) {
        self.seq = epoch << 32;
        self.pending.clear();
        while self.receiver.try_recv().is_ok() {}
    }

    /// Advance and return the collective sequence number.
    pub(crate) fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Send `table` to `peer` under sequence `seq`; returns simulated wire
    /// time (zero for self-sends — device-local data never hits the wire).
    pub(crate) fn send(&self, peer: usize, seq: u64, table: Table) -> Result<Duration> {
        if peer >= self.world {
            return Err(NcclError::InvalidRank(peer));
        }
        let mut injected_delay = Duration::ZERO;
        if peer != self.rank {
            let site = FaultSite::ExchangeSend {
                src: self.ids[self.rank],
                dst: self.ids[peer],
            };
            match self.fault.fire(site) {
                Some(FaultAction::Fail) => {
                    return Err(NcclError::LinkFault {
                        src: self.ids[self.rank],
                        dst: self.ids[peer],
                    });
                }
                Some(FaultAction::Delay(d)) => injected_delay = d,
                None => {}
            }
        }
        // Serialized size: what actually ships. `byte_size()` of an encoded
        // column is already its codes; add each dictionary's payload only
        // the first time it crosses this link.
        let mut bytes = table.byte_size() as u64;
        if peer != self.rank {
            let mut shipped = self.shipped_dicts.lock();
            for c in table.columns() {
                if let Array::Dict(d) = c {
                    shipped
                        .entry((self.ids[peer], d.dict_ptr()))
                        .or_insert_with(|| {
                            bytes += d.dict_byte_size() as u64;
                            Arc::clone(d.values())
                        });
                }
            }
        }
        self.senders[peer]
            .send(Message {
                src: self.rank,
                seq,
                table,
            })
            .map_err(|_| NcclError::Disconnected { peer })?;
        Ok(if peer == self.rank {
            Duration::ZERO
        } else {
            self.traffic
                .note(self.ids[self.rank], self.ids[peer], bytes);
            self.link.transfer(bytes) + injected_delay
        })
    }

    /// Receive the message from `peer` with sequence `seq`, buffering any
    /// other traffic that arrives first. Wakes with [`NcclError::Cancelled`]
    /// if the cluster's cancel token trips while blocked.
    pub(crate) fn recv(&mut self, peer: usize, seq: u64) -> Result<Table> {
        if let Some(t) = self.pending.remove(&(peer, seq)) {
            return Ok(t);
        }
        let deadline = std::time::Instant::now() + RECV_TIMEOUT;
        loop {
            if self.cancel.is_cancelled() {
                return Err(NcclError::Cancelled);
            }
            let msg = match self.receiver.recv_timeout(CANCEL_POLL) {
                Ok(m) => m,
                Err(_) if std::time::Instant::now() >= deadline => {
                    return Err(NcclError::Timeout { peer, seq });
                }
                Err(_) => continue,
            };
            if msg.src == peer && msg.seq == seq {
                return Ok(msg.table);
            }
            self.pending.insert((msg.src, msg.seq), msg.table);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirius_columnar::{Array, DataType, Field, Schema};
    use sirius_hw::catalog;

    fn t(v: i64) -> Table {
        Table::new(
            Schema::new(vec![Field::new("x", DataType::Int64)]),
            vec![Array::from_i64([v])],
        )
    }

    #[test]
    fn point_to_point() {
        let mut comms = NcclCluster::new(2, catalog::infiniband_4xndr());
        let c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let h = std::thread::spawn(move || {
            c1.send(0, 1, t(42)).unwrap();
        });
        let got = c0.recv(1, 1).unwrap();
        assert_eq!(got.column(0).i64_value(0), Some(42));
        h.join().unwrap();
    }

    #[test]
    fn out_of_order_buffering() {
        let mut comms = NcclCluster::new(2, catalog::infiniband_4xndr());
        let c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let h = std::thread::spawn(move || {
            c1.send(0, 2, t(2)).unwrap();
            c1.send(0, 1, t(1)).unwrap();
        });
        h.join().unwrap();
        // Ask for seq 1 first even though seq 2 arrived first.
        assert_eq!(c0.recv(1, 1).unwrap().column(0).i64_value(0), Some(1));
        assert_eq!(c0.recv(1, 2).unwrap().column(0).i64_value(0), Some(2));
    }

    #[test]
    fn self_send_is_free() {
        let mut comms = NcclCluster::new(1, catalog::infiniband_4xndr());
        let mut c = comms.pop().unwrap();
        let d = c.send(0, 1, t(7)).unwrap();
        assert_eq!(d, Duration::ZERO);
        assert_eq!(c.recv(0, 1).unwrap().column(0).i64_value(0), Some(7));
        assert_eq!(c.link().bytes_moved(), 0);
    }

    #[test]
    fn invalid_rank() {
        let mut comms = NcclCluster::new(1, catalog::infiniband_4xndr());
        let c = comms.pop().unwrap();
        assert!(matches!(c.send(5, 1, t(0)), Err(NcclError::InvalidRank(5))));
    }

    #[test]
    fn cancel_wakes_blocked_recv() {
        let comms = NcclCluster::new(2, catalog::infiniband_4xndr());
        let token = comms[0].cancel_token();
        let mut c0 = comms.into_iter().next().unwrap();
        let h = std::thread::spawn(move || c0.recv(1, 1));
        std::thread::sleep(Duration::from_millis(30));
        token.cancel();
        let got = h.join().unwrap();
        assert_eq!(got.unwrap_err(), NcclError::Cancelled);
    }

    #[test]
    fn injected_drop_surfaces_as_link_fault() {
        use sirius_hw::{FaultInjector, FaultPlan};
        let mut comms = NcclCluster::new(2, catalog::infiniband_4xndr());
        let inj = FaultInjector::new(FaultPlan::new(0).drop_link(0, 1, 0, 1));
        comms[0].set_fault_injector(inj, vec![0, 1]);
        let c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        assert_eq!(
            c0.send(1, 1, t(9)).unwrap_err(),
            NcclError::LinkFault { src: 0, dst: 1 }
        );
        // Budget spent: the retry goes through.
        let h = std::thread::spawn(move || c0.send(1, 2, t(9)).unwrap());
        let mut c1 = c1;
        assert_eq!(c1.recv(0, 2).unwrap().column(0).i64_value(0), Some(9));
        h.join().unwrap();
    }

    #[test]
    fn injected_delay_inflates_wire_time() {
        use sirius_hw::{FaultInjector, FaultPlan};
        let mut comms = NcclCluster::new(2, catalog::infiniband_4xndr());
        let extra = Duration::from_millis(25);
        let inj = FaultInjector::new(FaultPlan::new(0).delay_link(0, 1, extra, 0, 1));
        comms[0].set_fault_injector(inj, vec![0, 1]);
        let c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        let slow = c0.send(1, 1, t(1)).unwrap();
        let fast = c0.send(1, 2, t(1)).unwrap();
        assert!(slow >= fast + extra, "slow {slow:?} vs fast {fast:?}");
        drop(c1);
    }

    #[test]
    fn traffic_counters_track_per_link_bytes() {
        let mut comms = NcclCluster::new(2, catalog::infiniband_4xndr());
        // Stable ids differ from ranks (post-shrink survivor assignment).
        comms[0].set_fault_injector(FaultInjector::disabled(), vec![4, 7]);
        comms[1].set_fault_injector(FaultInjector::disabled(), vec![4, 7]);
        let c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let payload = t(1);
        let bytes = payload.byte_size() as u64;
        let h = std::thread::spawn(move || {
            c1.send(0, 1, t(1)).unwrap();
            c1.send(0, 2, t(1)).unwrap();
            // Self-send stays off the wire and off the counters.
            c1.send(1, 3, t(1)).unwrap();
            c1 // keep the rank-1 channel open for c0's send below
        });
        c0.recv(1, 1).unwrap();
        c0.recv(1, 2).unwrap();
        let c1 = h.join().unwrap();
        c0.send(1, 4, payload).unwrap();
        drop(c1);
        let traffic = c0.traffic();
        assert_eq!(
            traffic.snapshot(),
            vec![((4, 7), bytes, 1), ((7, 4), 2 * bytes, 2)]
        );
        assert_eq!(traffic.total_bytes(), 3 * bytes);
        assert_eq!(traffic.total_messages(), 3);
        traffic.clear();
        assert_eq!(traffic.total_bytes(), 0);
    }

    #[test]
    fn dictionary_ships_once_per_link() {
        let mut comms = NcclCluster::new(3, catalog::infiniband_4xndr());
        let c2 = comms.pop().unwrap();
        let c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        let enc = Table::new(
            Schema::new(vec![Field::new("s", DataType::Utf8)]),
            vec![Array::from_strs(["alpha", "beta", "alpha"]).dict_encode()],
        );
        let codes = enc.byte_size() as u64;
        let dict = enc.column(0).dict_byte_size() as u64;
        assert!(dict > 0);
        let (r1, r2) = (
            std::thread::spawn({
                let mut c1 = c1;
                move || {
                    c1.recv(0, 1).unwrap();
                    c1.recv(0, 2).unwrap();
                }
            }),
            std::thread::spawn({
                let mut c2 = c2;
                move || {
                    c2.recv(0, 3).unwrap();
                }
            }),
        );
        // Two batches to rank 1 (same dictionary), one to rank 2.
        c0.send(1, 1, enc.clone()).unwrap();
        c0.send(1, 2, enc.clone()).unwrap();
        c0.send(2, 3, enc.clone()).unwrap();
        r1.join().unwrap();
        r2.join().unwrap();
        assert_eq!(
            c0.traffic().snapshot(),
            vec![((0, 1), codes + dict + codes, 2), ((0, 2), codes + dict, 1),],
            "dictionary bytes count once per link, codes per batch"
        );
    }

    #[test]
    fn begin_epoch_discards_stale_traffic() {
        let mut comms = NcclCluster::new(2, catalog::infiniband_4xndr());
        let c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        // Leftovers from an aborted attempt: one buffered, one in-channel.
        c1.send(0, 3, t(3)).unwrap();
        c1.send(0, 4, t(4)).unwrap();
        assert_eq!(c0.recv(1, 4).unwrap().num_rows(), 1); // buffers seq 3
        c0.begin_epoch(1);
        c1.send(0, (1 << 32) + 1, t(7)).unwrap();
        assert_eq!(
            c0.recv(1, (1 << 32) + 1).unwrap().column(0).i64_value(0),
            Some(7)
        );
    }
}
