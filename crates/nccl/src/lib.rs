//! # sirius-nccl — simulated GPU collective communication (NCCL-equivalent)
//!
//! §3.2.4: "Sirius supports common exchange patterns — broadcast, shuffle,
//! merge, and multi-cast — all implemented using NCCL primitives." This
//! crate is that layer without real GPUs or a real network: a cluster of
//! per-rank communicators connected by crossbeam channels, moving real
//! `Table` payloads (zero-copy `Arc` handoff in-process), while modeling
//! wire time against a shared interconnect [`sirius_hw::Link`].
//!
//! Each collective returns the simulated wall time its caller's rank spent
//! on the wire; the exchange service charges that to the node's device
//! ledger under `CostCategory::Exchange`, which is how Table 2's exchange
//! column is produced.
//!
//! Collectives are matched by an internal per-communicator sequence number,
//! so every rank must invoke the same collectives in the same order (the
//! standard NCCL contract).

#![warn(missing_docs)]

pub mod cluster;
pub mod collectives;

pub use cluster::{CancelToken, Communicator, LinkTraffic, NcclCluster};

/// Errors from the communication layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NcclError {
    /// A peer hung up (channel disconnected).
    Disconnected {
        /// The peer whose channel closed.
        peer: usize,
    },
    /// Timed out waiting for a matching message.
    Timeout {
        /// The peer we were waiting on.
        peer: usize,
        /// The sequence number expected.
        seq: u64,
    },
    /// Rank argument out of range.
    InvalidRank(usize),
    /// An injected link fault dropped the send (modeled as a NIC-level
    /// transmit error, surfaced to the sender so tests need not wait out
    /// the receive timeout).
    LinkFault {
        /// Sending node (original id).
        src: usize,
        /// Receiving node (original id).
        dst: usize,
    },
    /// The operation was aborted by cluster-wide cancellation.
    Cancelled,
}

impl std::fmt::Display for NcclError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NcclError::Disconnected { peer } => write!(f, "peer {peer} disconnected"),
            NcclError::Timeout { peer, seq } => {
                write!(f, "timeout waiting for peer {peer} (seq {seq})")
            }
            NcclError::InvalidRank(r) => write!(f, "invalid rank {r}"),
            NcclError::LinkFault { src, dst } => {
                write!(f, "link fault on {src} -> {dst} (send dropped)")
            }
            NcclError::Cancelled => write!(f, "collective cancelled"),
        }
    }
}

impl std::error::Error for NcclError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, NcclError>;
